//! Link-level interconnect modeling: α–β link specs and a step-by-step
//! collective oracle over an explicit link graph.
//!
//! The flat model in [`crate::collective`] prices a collective from a single
//! per-device bandwidth number. Real multi-GPU platforms are *graphs*:
//! NVLink meshes, PCIe trees that funnel peer traffic through switches and
//! a root complex, and multi-node clusters whose node uplinks are shared by
//! every GPU in the node. This module provides
//!
//! * [`LinkSpec`] — one physical link as an (α, β) pair: per-hop latency
//!   and per-direction bandwidth;
//! * [`LinkGraph`] — an explicit undirected link graph over GPU endpoints
//!   plus internal switch nodes, with canonical constructors for the three
//!   platform shapes (full mesh, PCIe tree, hierarchical multi-node);
//! * [`LinkGraph::simulate`] — the **oracle**: it schedules the standard
//!   collective algorithms step by step, routes every transfer over the
//!   graph, charges each link's per-direction congestion, and sums the
//!   per-step critical path.
//!
//! The oracle is deliberately *not* closed-form. The α–β model in
//! `dlperf-distrib` approximates it analytically, and the differential test
//! layer (`tests/comms.rs`) pins the approximation error per collective and
//! topology family — the same discipline `tests/accuracy.rs` applies to
//! kernel models against the kernel simulator.

use serde::{Deserialize, Serialize};

use crate::collective::{CollectiveKind, CollectiveSpec};
use crate::device::DeviceSpec;

/// α–β parameters of one physical link: `α` = per-hop latency (µs),
/// `β` = per-direction bandwidth (GB/s).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Per-direction link bandwidth in GB/s.
    pub bw_gbs: f64,
    /// Per-hop latency in microseconds.
    pub latency_us: f64,
}

impl LinkSpec {
    /// The GPU-to-GPU link a device ships with (NVLink for the Teslas,
    /// PCIe peer-to-peer for TITAN Xp / T4).
    pub fn of(device: &DeviceSpec) -> Self {
        LinkSpec {
            bw_gbs: device.interconnect_bw_gbs,
            latency_us: device.interconnect_latency_us,
        }
    }

    /// An InfiniBand HDR-class node uplink: 25 GB/s per direction, ~2 µs
    /// per hop (NIC + switch traversal).
    pub fn ib_hdr() -> Self {
        LinkSpec { bw_gbs: 25.0, latency_us: 2.0 }
    }

    /// Bandwidth in bytes/µs.
    pub fn bytes_per_us(&self) -> f64 {
        self.bw_gbs * 1e3
    }

    /// This link with bandwidth scaled by `factor` (latency unchanged).
    ///
    /// # Panics
    /// Panics if `factor` is not positive and finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "bandwidth factor must be positive");
        LinkSpec { bw_gbs: self.bw_gbs * factor, latency_us: self.latency_us }
    }

    /// The slower of two links: min bandwidth, max latency. This is the
    /// effective wire between heterogeneous endpoints.
    pub fn bottleneck(&self, other: &LinkSpec) -> Self {
        LinkSpec {
            bw_gbs: self.bw_gbs.min(other.bw_gbs),
            latency_us: self.latency_us.max(other.latency_us),
        }
    }
}

/// One undirected link between two graph nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// First endpoint (node index).
    pub a: usize,
    /// Second endpoint (node index).
    pub b: usize,
    /// The link's α–β parameters.
    pub spec: LinkSpec,
}

/// An explicit interconnect graph: GPU endpoints `0..world` plus internal
/// switch/bridge nodes, joined by α–β links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkGraph {
    /// Total node count (GPUs first, then switches).
    nodes: usize,
    /// GPU endpoint count; endpoints are node ids `0..world`.
    world: usize,
    /// Undirected links.
    links: Vec<Link>,
}

impl LinkGraph {
    /// A fully connected mesh of `world` GPUs (the NVLink shape: every
    /// pair has a direct link).
    ///
    /// # Panics
    /// Panics if `world` is zero.
    pub fn full_mesh(world: usize, link: LinkSpec) -> Self {
        assert!(world > 0, "link graph needs at least one GPU");
        let mut links = Vec::new();
        for a in 0..world {
            for b in (a + 1)..world {
                links.push(Link { a, b, spec: link });
            }
        }
        LinkGraph { nodes: world, world, links }
    }

    /// A fully connected mesh over heterogeneous endpoints: the link
    /// between two GPUs is the [`LinkSpec::bottleneck`] of their specs.
    ///
    /// # Panics
    /// Panics if `links` is empty.
    pub fn heterogeneous_mesh(links: &[LinkSpec]) -> Self {
        assert!(!links.is_empty(), "link graph needs at least one GPU");
        let world = links.len();
        let mut out = Vec::new();
        for a in 0..world {
            for b in (a + 1)..world {
                out.push(Link { a, b, spec: links[a].bottleneck(&links[b]) });
            }
        }
        LinkGraph { nodes: world, world, links: out }
    }

    /// A PCIe tree: GPUs pair up under leaf switches, leaf switches hang
    /// off the root complex. Peer traffic between GPUs under one switch
    /// stays local; everything else funnels through the root and congests.
    ///
    /// # Panics
    /// Panics if `world` is zero.
    pub fn pcie_tree(world: usize, link: LinkSpec) -> Self {
        assert!(world > 0, "link graph needs at least one GPU");
        let switches = world.div_ceil(2);
        let root = world + switches;
        let mut links = Vec::new();
        for g in 0..world {
            links.push(Link { a: g, b: world + g / 2, spec: link });
        }
        for s in 0..switches {
            links.push(Link { a: world + s, b: root, spec: link });
        }
        LinkGraph { nodes: root + 1, world, links }
    }

    /// A multi-node hierarchy: each node's GPUs share an intra-node switch
    /// (NVLink-class), each node switch uplinks to one core switch over
    /// `inter` (InfiniBand-class). Inter-node traffic from all GPUs of a
    /// node shares that node's single uplink.
    ///
    /// # Panics
    /// Panics if `nodes` or `gpus_per_node` is zero.
    pub fn hierarchical(nodes: usize, gpus_per_node: usize, intra: LinkSpec, inter: LinkSpec) -> Self {
        assert!(nodes > 0 && gpus_per_node > 0, "hierarchy needs nodes and GPUs");
        let world = nodes * gpus_per_node;
        let core = world + nodes;
        let mut links = Vec::new();
        for g in 0..world {
            links.push(Link { a: g, b: world + g / gpus_per_node, spec: intra });
        }
        for n in 0..nodes {
            links.push(Link { a: world + n, b: core, spec: inter });
        }
        LinkGraph { nodes: core + 1, world, links }
    }

    /// Like [`LinkGraph::hierarchical`], with per-GPU intra-node links —
    /// the heterogeneous-fleet shape (e.g. one NVLink node, one PCIe node).
    ///
    /// # Panics
    /// Panics if `intra.len()` is not a positive multiple of
    /// `gpus_per_node`.
    pub fn hierarchical_heterogeneous(
        intra: &[LinkSpec],
        gpus_per_node: usize,
        inter: LinkSpec,
    ) -> Self {
        assert!(
            gpus_per_node > 0 && !intra.is_empty() && intra.len().is_multiple_of(gpus_per_node),
            "per-GPU links must fill whole nodes"
        );
        let world = intra.len();
        let nodes = world / gpus_per_node;
        let core = world + nodes;
        let mut links = Vec::new();
        for (g, spec) in intra.iter().enumerate() {
            links.push(Link { a: g, b: world + g / gpus_per_node, spec: *spec });
        }
        for n in 0..nodes {
            links.push(Link { a: world + n, b: core, spec: inter });
        }
        LinkGraph { nodes: core + 1, world, links }
    }

    /// GPU endpoint count.
    pub fn world(&self) -> usize {
        self.world
    }

    /// The links of the graph.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Returns the graph with every link's bandwidth scaled by `factor`.
    ///
    /// # Panics
    /// Panics if `factor` is not positive and finite.
    pub fn scaled_bandwidth(&self, factor: f64) -> Self {
        let mut g = self.clone();
        for l in &mut g.links {
            l.spec = l.spec.scaled(factor);
        }
        g
    }

    /// Shortest path from `src` to `dst` as a sequence of link indices
    /// (BFS, deterministic tie-break by node index). `None` when the
    /// endpoints are disconnected.
    fn route(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        if src == dst {
            return Some(Vec::new());
        }
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.nodes];
        for (i, l) in self.links.iter().enumerate() {
            adj[l.a].push((l.b, i));
            adj[l.b].push((l.a, i));
        }
        for nbrs in &mut adj {
            nbrs.sort_unstable();
        }
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; self.nodes];
        let mut queue = std::collections::VecDeque::from([src]);
        let mut seen = vec![false; self.nodes];
        seen[src] = true;
        while let Some(u) = queue.pop_front() {
            if u == dst {
                break;
            }
            for &(v, li) in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    prev[v] = Some((u, li));
                    queue.push_back(v);
                }
            }
        }
        if !seen[dst] {
            return None;
        }
        let mut path = Vec::new();
        let mut at = dst;
        while at != src {
            let (p, li) = prev[at].expect("walked from src");
            path.push(li);
            at = p;
        }
        path.reverse();
        Some(path)
    }

    /// Wall time (µs) of one *step*: a set of simultaneous point-to-point
    /// transfers `(src, dst, bytes)`. Each transfer is routed over the
    /// graph; a link crossed by `k` same-direction transfers gives each of
    /// them `β / k`; a transfer's rate is its worst crossed link; the step
    /// takes as long as its slowest transfer (lockstep, as NCCL schedules
    /// rounds). Unroutable transfers are skipped — the caller decides what
    /// degraded means.
    fn step_time(&self, transfers: &[(usize, usize, f64)]) -> f64 {
        // Directed load per link: (link index, a->b?) -> count.
        let mut load = vec![[0u32; 2]; self.links.len()];
        let mut routed: Vec<(Vec<usize>, f64, usize)> = Vec::new();
        for &(src, dst, bytes) in transfers {
            if src == dst || bytes <= 0.0 {
                continue;
            }
            let Some(path) = self.route(src, dst) else { continue };
            let mut at = src;
            for &li in &path {
                let l = &self.links[li];
                let fwd = l.a == at;
                load[li][usize::from(!fwd)] += 1;
                at = if fwd { l.b } else { l.a };
            }
            routed.push((path, bytes, src));
        }
        let mut worst = 0.0f64;
        for (path, bytes, src) in &routed {
            let mut at = *src;
            let mut latency = 0.0;
            let mut rate = f64::INFINITY;
            for &li in path {
                let l = &self.links[li];
                let fwd = l.a == at;
                let shares = f64::from(load[li][usize::from(!fwd)].max(1));
                latency += l.spec.latency_us;
                rate = rate.min(l.spec.bytes_per_us() / shares);
                at = if fwd { l.b } else { l.a };
            }
            worst = worst.max(latency + bytes / rate.max(1e-9));
        }
        worst
    }

    /// The oracle: simulated wire time (µs) of `spec` over this graph,
    /// scheduling the standard algorithms step by step.
    ///
    /// * `AllReduce` — ring reduce-scatter + ring all-gather over the GPU
    ///   endpoints in index order: `2(w−1)` steps of `bytes/w` chunks.
    /// * `AllGather` — the ring all-gather half alone: `w−1` steps.
    /// * `AllToAll` — `w−1` rounds; in round `r` rank `i` sends its
    ///   `bytes/w` slice to rank `(i+r) mod w`.
    ///
    /// Pure wire time: launch overhead is a per-platform constant the
    /// layers above add symmetrically.
    ///
    /// # Panics
    /// Panics if `spec.world` is zero or does not match the graph.
    pub fn simulate(&self, spec: &CollectiveSpec) -> f64 {
        self.simulate_algo(spec, CollectiveAlgo::Ring)
    }

    /// Like [`LinkGraph::simulate`], scheduling the requested all-reduce
    /// variant. The variant applies to `AllReduce` only: all-to-all is
    /// always pairwise rounds and all-gather always a ring, so for those
    /// kinds every variant prices identically. A hierarchical request
    /// whose group size does not divide the world falls back to the ring
    /// schedule (degraded, not wrong).
    ///
    /// # Panics
    /// Panics if `spec.world` is zero or does not match the graph.
    pub fn simulate_algo(&self, spec: &CollectiveSpec, algo: CollectiveAlgo) -> f64 {
        assert!(spec.world > 0, "collective needs at least one rank");
        assert_eq!(spec.world as usize, self.world, "collective world must match the graph");
        let w = self.world;
        if w == 1 {
            return 0.0;
        }
        let bytes = spec.bytes_per_rank as f64;
        let chunk = bytes / w as f64;
        let ring: Vec<(usize, usize, f64)> =
            (0..w).map(|i| (i, (i + 1) % w, chunk)).collect();
        match spec.kind {
            CollectiveKind::AllReduce => match algo {
                CollectiveAlgo::Ring => 2.0 * (w - 1) as f64 * self.step_time(&ring),
                CollectiveAlgo::Tree => self.tree_allreduce(bytes),
                CollectiveAlgo::Hierarchical { groups }
                    if groups > 0 && groups < w && w.is_multiple_of(groups) =>
                {
                    self.hierarchical_allreduce(bytes, groups)
                }
                CollectiveAlgo::Hierarchical { .. } => {
                    2.0 * (w - 1) as f64 * self.step_time(&ring)
                }
            },
            CollectiveKind::AllGather => (w - 1) as f64 * self.step_time(&ring),
            CollectiveKind::AllToAll => (1..w)
                .map(|r| {
                    let round: Vec<(usize, usize, f64)> =
                        (0..w).map(|i| (i, (i + r) % w, chunk)).collect();
                    self.step_time(&round)
                })
                .sum(),
        }
    }

    /// Binomial-tree all-reduce: reduce up the tree (`⌈log₂ w⌉` levels of
    /// full-payload transfers), then broadcast back down (mirror levels,
    /// same per-level times by link symmetry).
    fn tree_allreduce(&self, bytes: f64) -> f64 {
        let w = self.world;
        let mut total = 0.0;
        let mut span = 1usize;
        while span < w {
            let level: Vec<(usize, usize, f64)> = (0..w)
                .step_by(span * 2)
                .filter(|&i| i + span < w)
                .map(|i| (i + span, i, bytes))
                .collect();
            total += self.step_time(&level);
            span *= 2;
        }
        2.0 * total
    }

    /// Hierarchical all-reduce over `groups`-sized nodes: ring
    /// reduce-scatter inside each node, ring all-reduce over the node
    /// leaders (rank `n·g`), ring all-gather back inside each node.
    fn hierarchical_allreduce(&self, bytes: f64, g: usize) -> f64 {
        let w = self.world;
        let m = w / g;
        let mut total = 0.0;
        if g > 1 {
            let intra: Vec<(usize, usize, f64)> = (0..w)
                .map(|i| {
                    let (n, j) = (i / g, i % g);
                    (i, n * g + (j + 1) % g, bytes / g as f64)
                })
                .collect();
            // Reduce-scatter + final all-gather: 2(g−1) intra steps.
            total += 2.0 * (g - 1) as f64 * self.step_time(&intra);
        }
        if m > 1 {
            let leaders: Vec<(usize, usize, f64)> = (0..m)
                .map(|n| (n * g, ((n + 1) % m) * g, bytes / (g * m) as f64))
                .collect();
            total += 2.0 * (m - 1) as f64 * self.step_time(&leaders);
        }
        total
    }
}

/// Which all-reduce schedule to run (see [`LinkGraph::simulate_algo`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveAlgo {
    /// Ring reduce-scatter + all-gather (bandwidth-optimal).
    Ring,
    /// Binomial tree (latency-optimal for small payloads).
    Tree,
    /// Per-node rings with a leader ring across nodes (uplink-friendly).
    Hierarchical {
        /// GPUs per node.
        groups: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: CollectiveKind, bytes: u64, world: u32) -> CollectiveSpec {
        CollectiveSpec { kind, bytes_per_rank: bytes, world }
    }

    #[test]
    fn mesh_ring_matches_alpha_beta_exactly() {
        // On a full mesh every ring transfer has its own link: the oracle
        // must equal the closed form 2(w−1)(α + bytes/(wβ)) exactly.
        let link = LinkSpec { bw_gbs: 100.0, latency_us: 2.0 };
        let g = LinkGraph::full_mesh(4, link);
        let bytes = 64u64 << 20;
        let t = g.simulate(&spec(CollectiveKind::AllReduce, bytes, 4));
        let closed = 2.0 * 3.0 * (2.0 + (bytes as f64 / 4.0) / link.bytes_per_us());
        assert!((t - closed).abs() < 1e-6, "{t} vs {closed}");
    }

    #[test]
    fn pcie_tree_congests_all_to_all() {
        let link = LinkSpec { bw_gbs: 11.0, latency_us: 9.0 };
        let mesh = LinkGraph::full_mesh(8, link);
        let tree = LinkGraph::pcie_tree(8, link);
        let s = spec(CollectiveKind::AllToAll, 32 << 20, 8);
        let tm = mesh.simulate(&s);
        let tt = tree.simulate(&s);
        assert!(tt > 1.5 * tm, "tree {tt} should congest well past mesh {tm}");
    }

    #[test]
    fn hierarchy_bottlenecks_on_the_uplink() {
        let intra = LinkSpec { bw_gbs: 130.0, latency_us: 5.0 };
        let g = LinkGraph::hierarchical(2, 4, intra, LinkSpec::ib_hdr());
        let one_node = LinkGraph::full_mesh(8, intra);
        let s = spec(CollectiveKind::AllReduce, 64 << 20, 8);
        assert!(g.simulate(&s) > one_node.simulate(&s));
    }

    #[test]
    fn monotone_in_bytes_and_bandwidth() {
        let g = LinkGraph::pcie_tree(4, LinkSpec { bw_gbs: 11.0, latency_us: 9.0 });
        let t1 = g.simulate(&spec(CollectiveKind::AllReduce, 1 << 20, 4));
        let t2 = g.simulate(&spec(CollectiveKind::AllReduce, 1 << 24, 4));
        assert!(t2 > t1);
        let faster = g.scaled_bandwidth(2.0);
        let t3 = faster.simulate(&spec(CollectiveKind::AllReduce, 1 << 24, 4));
        assert!(t3 < t2);
    }

    #[test]
    fn single_rank_is_free() {
        let g = LinkGraph::full_mesh(1, LinkSpec { bw_gbs: 100.0, latency_us: 1.0 });
        assert_eq!(g.simulate(&spec(CollectiveKind::AllReduce, 1 << 20, 1)), 0.0);
    }

    #[test]
    fn heterogeneous_mesh_uses_bottleneck_links() {
        let fast = LinkSpec { bw_gbs: 130.0, latency_us: 5.0 };
        let slow = LinkSpec { bw_gbs: 11.0, latency_us: 9.0 };
        let hetero = LinkGraph::heterogeneous_mesh(&[fast, fast, slow, slow]);
        let all_fast = LinkGraph::full_mesh(4, fast);
        let s = spec(CollectiveKind::AllReduce, 32 << 20, 4);
        assert!(hetero.simulate(&s) > all_fast.simulate(&s));
    }

    #[test]
    #[should_panic(expected = "must match the graph")]
    fn world_mismatch_panics() {
        let g = LinkGraph::full_mesh(4, LinkSpec { bw_gbs: 100.0, latency_us: 1.0 });
        g.simulate(&spec(CollectiveKind::AllReduce, 1, 8));
    }
}
