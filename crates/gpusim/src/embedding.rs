//! Batched embedding-lookup kernel timing with an L2 reuse model.
//!
//! The ground truth here models two locality effects the paper's *plain*
//! heuristic model ignores (and its *enhanced* model approximates):
//!
//! 1. **Residency**: small tables stay resident in L2 across the batch, so
//!    most weight-row reads hit.
//! 2. **Within-batch reuse**: with `B·L` lookups into `E` rows, the expected
//!    number of distinct rows is `E·(1 − e^(−B·L/E))`; repeated touches hit
//!    if the distinct working set fits in L2.
//!
//! The plain model therefore overestimates small-table kernels by a large
//! factor (Table IV: EL-F GMAE ≈ 11% overall but ≈ 7% restricted to tables
//! with more than 100 k rows), which is exactly the shape this simulator
//! reproduces.

use crate::device::DeviceSpec;
use crate::kernel::KernelSpec;

/// Memory sector size: global-memory transactions round up to 32 bytes.
pub const SECTOR_BYTES: u64 = 32;

/// Rounds a byte count up to whole 32-byte sectors.
pub fn sectors(bytes: u64) -> u64 {
    bytes.div_ceil(SECTOR_BYTES) * SECTOR_BYTES
}

/// Fraction of L2 effectively usable by embedding rows (the rest holds
/// offsets, indices, and other streams).
const L2_USABLE: f64 = 0.8;

/// Ground-truth L2 hit probability for weight-row reads.
pub fn hit_rate(device: &DeviceSpec, b: u64, e: u64, t: u64, l: u64, d: u64) -> f64 {
    let row_bytes = (d * 4) as f64;
    let l2 = L2_USABLE * device.l2_size_bytes as f64;

    // Residency of the whole working set (all tables) in L2.
    let total_bytes = (t * e) as f64 * row_bytes;
    let p_resident = (l2 / total_bytes).min(1.0);

    // Within-batch temporal reuse.
    let accesses = (b * l) as f64;
    let lam = accesses / e as f64;
    let distinct = e as f64 * (1.0 - (-lam).exp());
    let reuse_frac = (1.0 - distinct / accesses).max(0.0);
    // Reused rows only hit if the distinct set (per concurrent table slice)
    // fits; tables are processed together so charge all T of them.
    let fit = (l2 / (distinct * row_bytes * t as f64)).min(1.0);

    (p_resident + (1.0 - p_resident) * reuse_frac * fit).clamp(0.0, 0.98)
}

/// Simulates the forward or backward batched embedding-lookup kernel.
pub fn simulate(device: &DeviceSpec, kernel: &KernelSpec) -> f64 {
    let (b, e, t, l, d, backward) = match *kernel {
        KernelSpec::EmbeddingForward { b, e, t, l, d, .. } => (b, e, t, l, d, false),
        KernelSpec::EmbeddingBackward { b, e, t, l, d, .. } => (b, e, t, l, d, true),
        _ => panic!("embedding::simulate called with {kernel:?}"),
    };
    assert!(b > 0 && e > 0 && t > 0 && l > 0 && d > 0, "embedding dims must be positive");

    let warps = (b * t) as f64;
    let row = sectors(4 * d) as f64;

    // Per-warp traffic (physical accounting; unlike the paper's predictor,
    // the weight term carries the L factor in both directions).
    let tr_offsets = (32 + 64) as f64;
    let tr_indices = sectors(4 * l) as f64;
    let tr_weights = if backward { 2.0 * l as f64 * row } else { l as f64 * row };
    let tr_outputs = if backward {
        // Backward reads the incoming gradient row instead of writing output.
        row
    } else {
        row
    };

    let p = hit_rate(device, b, e, t, l, d);

    let l2_bytes = warps * (tr_offsets + p * tr_weights);
    let dram_bytes = warps * (tr_indices + tr_outputs + (1.0 - p) * tr_weights);

    // Atomic-update contention in the backward pass when many lookups
    // collide on few rows.
    let contention = if backward {
        1.0 + 0.35 * ((b * l) as f64 / e as f64).min(64.0) / 64.0
    } else {
        1.0
    };

    let mem_us = dram_bytes / device.dram_bytes_per_us() + l2_bytes / device.l2_bytes_per_us();

    // Warp-issue floor: each warp needs a minimum number of issue slots even
    // when all data hits in cache (subordinate to the L2 bandwidth bound).
    let issue_us = warps * l as f64 * 2.5e-5 / device.sm_count as f64 * 80.0;

    mem_us.max(issue_us) * contention + device.kernel_start_us
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> DeviceSpec {
        DeviceSpec::v100()
    }

    #[test]
    fn sector_rounding() {
        assert_eq!(sectors(1), 32);
        assert_eq!(sectors(32), 32);
        assert_eq!(sectors(33), 64);
        assert_eq!(sectors(256), 256);
    }

    #[test]
    fn small_tables_hit_in_l2() {
        let p = hit_rate(&v100(), 2048, 1_000, 8, 10, 64);
        assert!(p > 0.9, "small tables should be L2 resident, p = {p}");
    }

    #[test]
    fn huge_tables_miss() {
        let p = hit_rate(&v100(), 2048, 10_000_000, 8, 10, 64);
        assert!(p < 0.15, "10M-row tables should mostly miss, p = {p}");
    }

    #[test]
    fn hit_rate_monotone_decreasing_in_table_size() {
        let d = v100();
        let mut prev = f64::INFINITY;
        for e in [1_000u64, 10_000, 100_000, 1_000_000, 10_000_000] {
            let p = hit_rate(&d, 1024, e, 8, 10, 64);
            assert!(p <= prev + 1e-12, "hit rate should not increase with E");
            prev = p;
        }
    }

    #[test]
    fn backward_slower_than_forward() {
        let d = v100();
        let f = simulate(&d, &KernelSpec::embedding_forward(2048, 1_000_000, 8, 10, 64));
        let b = simulate(&d, &KernelSpec::embedding_backward(2048, 1_000_000, 8, 10, 64));
        assert!(b > f);
    }

    #[test]
    fn big_table_time_close_to_dram_bound() {
        // For E = 10M the paper's plain DRAM-only model should be close to
        // the simulator: verify the simulator agrees within ~25%.
        let d = v100();
        let (b, e, t, l, dim) = (2048u64, 10_000_000u64, 8u64, 10u64, 64u64);
        let sim = simulate(&d, &KernelSpec::embedding_forward(b, e, t, l, dim));
        let per_warp = (32 + 64 + sectors(4 * l) + sectors(4 * dim)) as f64
            + l as f64 * sectors(4 * dim) as f64;
        let plain = (b * t) as f64 * per_warp / d.dram_bytes_per_us() + d.kernel_start_us;
        let rel = (sim - plain).abs() / plain;
        assert!(rel < 0.25, "sim {sim} vs plain-physical {plain}, rel {rel}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_batch_panics() {
        simulate(&v100(), &KernelSpec::embedding_forward(0, 10, 1, 1, 4));
    }
}
