//! GEMM kernel timing with tile and wave quantization.
//!
//! cuBLAS selects a tiling for each problem shape; the runtime then executes
//! `ceil(tiles / SMs)` *waves* of thread blocks. Both effects produce the
//! staircase-shaped performance surface the paper cites as the reason
//! closed-form models fail for proprietary GEMM libraries (NVIDIA's own
//! documentation on tile/wave quantization is reference \[20\] of the paper).
//!
//! This module reproduces those mechanics: a small catalog of tile shapes
//! with size-dependent efficiencies, greedy tile selection by predicted
//! time, and wave-quantized execution. The resulting surface is smooth
//! enough for an MLP to learn (≈5–9% GMAE, Table IV) but has genuine cliffs
//! that defeat naive analytic prediction.

use crate::device::DeviceSpec;
use crate::kernel::KernelSpec;

/// A candidate thread-block tile: output footprint `m × n`, with the
/// fraction of peak FP32 throughput the kernel sustains when compute-bound.
#[derive(Debug, Clone, Copy)]
pub struct Tile {
    pub m: u64,
    pub n: u64,
    /// Fraction of device peak FLOP/s one wave of this tile achieves.
    pub efficiency: f64,
}

/// The tile catalog, mirroring the common cuBLAS SGEMM tile set.
pub const TILES: &[Tile] = &[
    Tile { m: 256, n: 128, efficiency: 0.88 },
    Tile { m: 128, n: 256, efficiency: 0.88 },
    Tile { m: 128, n: 128, efficiency: 0.82 },
    Tile { m: 128, n: 64, efficiency: 0.72 },
    Tile { m: 64, n: 128, efficiency: 0.72 },
    Tile { m: 64, n: 64, efficiency: 0.58 },
    Tile { m: 32, n: 64, efficiency: 0.42 },
    Tile { m: 32, n: 32, efficiency: 0.28 },
];

/// The K-dimension is processed in slices of this many elements; partial
/// slices still pay for a full one (K quantization).
const K_QUANTUM: u64 = 32;

/// Time for one problem executed with one specific tile, in microseconds.
fn time_with_tile(device: &DeviceSpec, m: u64, n: u64, k: u64, batch: u64, tile: &Tile) -> f64 {
    let tiles_m = m.div_ceil(tile.m);
    let tiles_n = n.div_ceil(tile.n);
    let total_tiles = tiles_m * tiles_n * batch;
    let waves = total_tiles.div_ceil(device.sm_count as u64) as f64;

    let k_eff = k.div_ceil(K_QUANTUM) * K_QUANTUM;

    // Compute time of one wave: every SM runs one tile of 2*tm*tn*k flops.
    let flops_per_tile = 2.0 * (tile.m * tile.n * k_eff) as f64;
    let per_sm_flop_us = device.flop_per_us() / device.sm_count as f64 * tile.efficiency;
    let wave_compute_us = flops_per_tile / per_sm_flop_us;

    // Memory time of one wave: each tile streams its A and B panels. Panels
    // shared between tiles in a wave hit in L2; approximate by charging DRAM
    // for the unique A/B panels a wave touches and L2 for the rest.
    let active_tiles_per_wave = (total_tiles as f64 / waves).min(device.sm_count as f64);
    let panel_bytes_per_tile = 4.0 * ((tile.m + tile.n) * k_eff) as f64;
    let wave_mem_us =
        active_tiles_per_wave * panel_bytes_per_tile * 0.6 / device.dram_bytes_per_us();

    let epilogue_us = 4.0 * (m * n * batch) as f64 / device.dram_bytes_per_us();

    waves * wave_compute_us.max(wave_mem_us) + epilogue_us + device.kernel_start_us
}

/// Picks the tile cuBLAS-style (fastest predicted) and returns its time.
pub fn simulate(device: &DeviceSpec, kernel: &KernelSpec) -> f64 {
    let KernelSpec::Gemm { m, n, k, batch } = *kernel else {
        panic!("gemm::simulate called with non-GEMM kernel {kernel:?}");
    };
    assert!(m > 0 && n > 0 && k > 0 && batch > 0, "GEMM dims must be positive");
    TILES
        .iter()
        .map(|t| time_with_tile(device, m, n, k, batch, t))
        .fold(f64::INFINITY, f64::min)
}

/// The tile the simulator would select for a problem (exposed for tests and
/// for the wave-quantization ablation bench).
pub fn selected_tile(device: &DeviceSpec, m: u64, n: u64, k: u64, batch: u64) -> Tile {
    *TILES
        .iter()
        .min_by(|a, b| {
            time_with_tile(device, m, n, k, batch, a)
                .total_cmp(&time_with_tile(device, m, n, k, batch, b))
        })
        .expect("tile catalog is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_k() {
        let d = DeviceSpec::v100();
        let t1 = simulate(&d, &KernelSpec::gemm(1024, 1024, 256));
        let t2 = simulate(&d, &KernelSpec::gemm(1024, 1024, 1024));
        assert!(t2 > t1);
    }

    #[test]
    fn wave_quantization_cliff_exists() {
        // Crossing a wave boundary should cost visibly more than staying
        // inside one: compare a shape that exactly fills waves with one that
        // spills a single extra tile row.
        let d = DeviceSpec::v100();
        let tile = selected_tile(&d, 128 * 80, 128, 4096, 1);
        let full = simulate(&d, &KernelSpec::gemm(tile.m * 80, 128, 4096));
        let spill = simulate(&d, &KernelSpec::gemm(tile.m * 80 + 1, 128, 4096));
        let ratio = spill / full;
        assert!(ratio > 1.05, "expected a wave cliff, got ratio {ratio}");
    }

    #[test]
    fn large_gemm_approaches_peak() {
        // A 4096^3 GEMM should run at a plausible fraction of peak.
        let d = DeviceSpec::v100();
        let t = simulate(&d, &KernelSpec::gemm(4096, 4096, 4096));
        let achieved_gflops = 2.0 * 4096f64.powi(3) / t / 1e3;
        assert!(
            achieved_gflops > 0.6 * d.fp32_gflops && achieved_gflops < d.fp32_gflops,
            "achieved {achieved_gflops} GFLOP/s vs peak {}",
            d.fp32_gflops
        );
    }

    #[test]
    fn small_gemm_dominated_by_launch() {
        let d = DeviceSpec::v100();
        let t = simulate(&d, &KernelSpec::gemm(8, 8, 8));
        assert!(t < 4.0 * d.kernel_start_us, "tiny GEMM should be launch-bound, got {t}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_panics() {
        simulate(&DeviceSpec::v100(), &KernelSpec::gemm(0, 8, 8));
    }
}
