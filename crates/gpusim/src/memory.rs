//! Memory-movement kernels: `memcpy` (H2D / D2H / D2D) and `concat`.
//!
//! Achieved bandwidth ramps with transfer size: small copies are dominated
//! by launch latency and cannot saturate DRAM or PCIe. The ramp is the
//! classic saturating curve `bw(s) = peak · s / (s + s_half)`, which matches
//! the measured bandwidth-vs-size behaviour of real devices well enough that
//! the paper's roofline predictor (using the *corrected* peak) lands within
//! a few percent on large sizes and worse on small ones.

use crate::device::DeviceSpec;
use crate::kernel::{KernelSpec, MemcpyKind};

/// Transfer size at which DRAM copies reach half of peak bandwidth.
const DRAM_HALF_SAT_BYTES: f64 = 512.0 * 1024.0;
/// Transfer size at which PCIe copies reach half of peak bandwidth.
const PCIE_HALF_SAT_BYTES: f64 = 256.0 * 1024.0;
/// Extra host-side latency of a PCIe transfer (driver + DMA setup), in us.
const PCIE_LATENCY_US: f64 = 6.0;

/// Achieved bandwidth in bytes/us for a transfer of `bytes` with the given
/// peak (bytes/us) and half-saturation size.
pub fn ramped_bandwidth(peak_bytes_per_us: f64, bytes: f64, half_sat: f64) -> f64 {
    peak_bytes_per_us * bytes / (bytes + half_sat)
}

/// Simulates `memcpy` and `concat` kernels.
pub fn simulate(device: &DeviceSpec, kernel: &KernelSpec) -> f64 {
    match *kernel {
        KernelSpec::Memcpy { bytes, kind } => {
            let bytes = bytes as f64;
            match kind {
                MemcpyKind::HostToDevice | MemcpyKind::DeviceToHost => {
                    let bw = ramped_bandwidth(device.pcie_bytes_per_us(), bytes, PCIE_HALF_SAT_BYTES);
                    bytes / bw.max(1e-9) + PCIE_LATENCY_US
                }
                MemcpyKind::DeviceToDevice => {
                    // Read + write both traverse DRAM.
                    let traffic = 2.0 * bytes;
                    let bw =
                        ramped_bandwidth(device.dram_bytes_per_us(), traffic, DRAM_HALF_SAT_BYTES);
                    traffic / bw.max(1e-9) + device.kernel_start_us
                }
            }
        }
        KernelSpec::Concat { bytes } => {
            // Concat reads every source element and writes it once; slightly
            // less efficient than a flat copy because of uncoalesced edges.
            let traffic = 2.0 * bytes as f64;
            let bw = 0.92
                * ramped_bandwidth(device.dram_bytes_per_us(), traffic, DRAM_HALF_SAT_BYTES);
            traffic / bw.max(1e-9) + device.kernel_start_us
        }
        _ => panic!("memory::simulate called with {kernel:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_saturates() {
        let peak = 1000.0;
        let small = ramped_bandwidth(peak, 1024.0, DRAM_HALF_SAT_BYTES);
        let large = ramped_bandwidth(peak, 1e9, DRAM_HALF_SAT_BYTES);
        assert!(small < 0.01 * peak);
        assert!(large > 0.99 * peak);
    }

    #[test]
    fn h2d_slower_than_d2d() {
        let d = DeviceSpec::v100();
        let h2d = simulate(&d, &KernelSpec::memcpy_h2d(16 << 20));
        let d2d = simulate(&d, &KernelSpec::memcpy_d2d(16 << 20));
        assert!(h2d > d2d, "PCIe copy should be slower: {h2d} vs {d2d}");
    }

    #[test]
    fn large_d2d_achieves_near_peak() {
        let d = DeviceSpec::v100();
        let bytes = 256u64 << 20;
        let t = simulate(&d, &KernelSpec::memcpy_d2d(bytes));
        let achieved = 2.0 * bytes as f64 / t; // bytes/us
        assert!(achieved > 0.9 * d.dram_bytes_per_us());
    }

    #[test]
    fn concat_slightly_slower_than_copy() {
        let d = DeviceSpec::p100();
        let c = simulate(&d, &KernelSpec::Concat { bytes: 8 << 20 });
        let m = simulate(&d, &KernelSpec::memcpy_d2d(8 << 20));
        assert!(c > m);
        assert!(c < 1.3 * m);
    }
}
