//! Kernel invocation descriptions and the simulation dispatcher.
//!
//! [`KernelSpec`] is the shared vocabulary between the simulator (which
//! *measures* a kernel), the execution graph (whose ops *lower* to kernels),
//! and the kernel performance models (which *predict* a kernel). It mirrors
//! the seven dominating kernel families the paper identifies in DLRM
//! training, plus convolution and batch normalization used for the CV-model
//! experiments (Fig. 10).

use serde::{Deserialize, Serialize};

use crate::device::DeviceSpec;
use crate::{conv, elementwise, embedding, gemm, memory, transpose};

/// Direction of a `memcpy` kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemcpyKind {
    /// Host to device over PCIe.
    HostToDevice,
    /// Device to host over PCIe.
    DeviceToHost,
    /// Device to device through DRAM.
    DeviceToDevice,
}

/// A single GPU kernel invocation with all the parameters that determine its
/// execution time.
///
/// Sizes are element counts unless a field is explicitly named `bytes`.
/// All tensors are FP32 (4 bytes/element), as in the paper's benchmarks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KernelSpec {
    /// A cuBLAS-style GEMM: `C[m×n] += A[m×k] × B[k×n]`, repeated `batch`
    /// times (batch > 1 models `bmm`).
    Gemm { m: u64, n: u64, k: u64, batch: u64 },
    /// Batched embedding-table lookup, forward pass.
    ///
    /// Parameters follow the paper's notation: `b` batch size, `e` rows per
    /// table, `t` number of tables, `l` lookups per output vector, `d`
    /// embedding dimension. `rows_per_block` is the kernel launch argument
    /// controlling how many output rows one CTA computes.
    EmbeddingForward { b: u64, e: u64, t: u64, l: u64, d: u64, rows_per_block: u64 },
    /// Batched embedding-table lookup backward + fused SGD update.
    EmbeddingBackward { b: u64, e: u64, t: u64, l: u64, d: u64, rows_per_block: u64 },
    /// Concatenation of tensors along a dimension; cost is dominated by the
    /// total payload moved.
    Concat { bytes: u64 },
    /// A memory copy of `bytes` bytes.
    Memcpy { bytes: u64, kind: MemcpyKind },
    /// Batched matrix transpose: permutes the last two axes of a
    /// `batch × rows × cols` FP32 tensor (the only permutation DLRM uses).
    Transpose { batch: u64, rows: u64, cols: u64 },
    /// Lower-triangular extraction + flatten of a `batch × n × n` tensor
    /// (the feature-interaction `Index` forward op).
    TrilForward { batch: u64, n: u64 },
    /// Scatter of the flattened lower-triangular gradient back into a
    /// `batch × n × n` tensor (`IndexBackward`).
    TrilBackward { batch: u64, n: u64 },
    /// A generic element-wise kernel (relu, sigmoid, MSE loss, optimizer
    /// updates, batch-norm, ...): `elems` elements, `flops_per_elem`
    /// arithmetic ops each, and `bytes_per_elem` of memory traffic each.
    Elementwise { elems: u64, flops_per_elem: f64, bytes_per_elem: f64 },
    /// A 2-D convolution (for the CV-model experiments), lowered internally
    /// to an implicit GEMM as cuDNN does.
    Conv2d {
        batch: u64,
        c_in: u64,
        h: u64,
        w: u64,
        c_out: u64,
        kh: u64,
        kw: u64,
        stride: u64,
        pad: u64,
    },
}

/// Families of kernels that share one performance model.
///
/// This grouping is the paper's key cost-saving observation: ops such as
/// `addmm`, `bmm`, `linear` and their backwards all call cuBLAS GEMM kernels
/// and can share a single microbenchmark + model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum KernelFamily {
    Gemm,
    EmbeddingForward,
    EmbeddingBackward,
    Concat,
    Memcpy,
    Transpose,
    TrilForward,
    TrilBackward,
    Elementwise,
    Conv2d,
}

impl KernelFamily {
    /// Every family, in declaration order.
    pub const ALL: [KernelFamily; 10] = [
        KernelFamily::Gemm,
        KernelFamily::EmbeddingForward,
        KernelFamily::EmbeddingBackward,
        KernelFamily::Concat,
        KernelFamily::Memcpy,
        KernelFamily::Transpose,
        KernelFamily::TrilForward,
        KernelFamily::TrilBackward,
        KernelFamily::Elementwise,
        KernelFamily::Conv2d,
    ];

    /// Inverse of the `Display` label — the round-trip trace ingestion
    /// relies on to attribute kernel events (named `<label>_kernel` by
    /// the engine) back to a family. Unknown labels return `None`; trace
    /// corpora may contain kernels this repo has no model for.
    pub fn parse_label(label: &str) -> Option<KernelFamily> {
        KernelFamily::ALL.into_iter().find(|f| f.to_string() == label)
    }
}

impl std::fmt::Display for KernelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            KernelFamily::Gemm => "GEMM",
            KernelFamily::EmbeddingForward => "EL-F",
            KernelFamily::EmbeddingBackward => "EL-B",
            KernelFamily::Concat => "concat",
            KernelFamily::Memcpy => "memcpy",
            KernelFamily::Transpose => "transpose",
            KernelFamily::TrilForward => "tril-F",
            KernelFamily::TrilBackward => "tril-B",
            KernelFamily::Elementwise => "elementwise",
            KernelFamily::Conv2d => "conv2d",
        };
        f.write_str(s)
    }
}

impl KernelSpec {
    /// Convenience constructor for an unbatched GEMM.
    pub fn gemm(m: u64, n: u64, k: u64) -> Self {
        KernelSpec::Gemm { m, n, k, batch: 1 }
    }

    /// Convenience constructor for a batched GEMM (`bmm`).
    pub fn bmm(batch: u64, m: u64, n: u64, k: u64) -> Self {
        KernelSpec::Gemm { m, n, k, batch }
    }

    /// Convenience constructor for a device-to-device copy.
    pub fn memcpy_d2d(bytes: u64) -> Self {
        KernelSpec::Memcpy { bytes, kind: MemcpyKind::DeviceToDevice }
    }

    /// Convenience constructor for a host-to-device copy.
    pub fn memcpy_h2d(bytes: u64) -> Self {
        KernelSpec::Memcpy { bytes, kind: MemcpyKind::HostToDevice }
    }

    /// Embedding-lookup forward with the default `rows_per_block` of 32.
    pub fn embedding_forward(b: u64, e: u64, t: u64, l: u64, d: u64) -> Self {
        KernelSpec::EmbeddingForward { b, e, t, l, d, rows_per_block: 32 }
    }

    /// Embedding-lookup backward (fused SGD) with `rows_per_block` of 32.
    pub fn embedding_backward(b: u64, e: u64, t: u64, l: u64, d: u64) -> Self {
        KernelSpec::EmbeddingBackward { b, e, t, l, d, rows_per_block: 32 }
    }

    /// The family this kernel belongs to (determines which perf model and
    /// which microbenchmark dataset applies).
    pub fn family(&self) -> KernelFamily {
        match self {
            KernelSpec::Gemm { .. } => KernelFamily::Gemm,
            KernelSpec::EmbeddingForward { .. } => KernelFamily::EmbeddingForward,
            KernelSpec::EmbeddingBackward { .. } => KernelFamily::EmbeddingBackward,
            KernelSpec::Concat { .. } => KernelFamily::Concat,
            KernelSpec::Memcpy { .. } => KernelFamily::Memcpy,
            KernelSpec::Transpose { .. } => KernelFamily::Transpose,
            KernelSpec::TrilForward { .. } => KernelFamily::TrilForward,
            KernelSpec::TrilBackward { .. } => KernelFamily::TrilBackward,
            KernelSpec::Elementwise { .. } => KernelFamily::Elementwise,
            KernelSpec::Conv2d { .. } => KernelFamily::Conv2d,
        }
    }

    /// Floating-point operation count of this kernel (FMA counted as 2).
    pub fn flops(&self) -> f64 {
        match *self {
            KernelSpec::Gemm { m, n, k, batch } => 2.0 * (m * n * k * batch) as f64,
            KernelSpec::EmbeddingForward { b, t, l, d, .. } => (b * t * l * d) as f64,
            KernelSpec::EmbeddingBackward { b, t, l, d, .. } => 2.0 * (b * t * l * d) as f64,
            KernelSpec::Concat { .. } | KernelSpec::Memcpy { .. } | KernelSpec::Transpose { .. } => 0.0,
            KernelSpec::TrilForward { batch, n } | KernelSpec::TrilBackward { batch, n } => {
                (batch * n * (n - 1) / 2) as f64
            }
            KernelSpec::Elementwise { elems, flops_per_elem, .. } => elems as f64 * flops_per_elem,
            KernelSpec::Conv2d { .. } => {
                let (m, n, k, batch) = conv::implicit_gemm_shape(self);
                2.0 * (m * n * k * batch) as f64
            }
        }
    }

    /// Total memory traffic of this kernel in bytes (reads + writes, before
    /// any cache-hit discount).
    pub fn bytes(&self) -> f64 {
        match *self {
            KernelSpec::Gemm { m, n, k, batch } => 4.0 * (batch * (m * k + k * n + 2 * m * n)) as f64,
            KernelSpec::EmbeddingForward { b, t, l, d, .. } => (4 * b * t * (l + l * d + d)) as f64,
            KernelSpec::EmbeddingBackward { b, t, l, d, .. } => (4 * b * t * (l + 2 * l * d + d)) as f64,
            KernelSpec::Concat { bytes } => 2.0 * bytes as f64,
            KernelSpec::Memcpy { bytes, .. } => 2.0 * bytes as f64,
            KernelSpec::Transpose { batch, rows, cols } => 8.0 * (batch * rows * cols) as f64,
            KernelSpec::TrilForward { batch, n } => {
                4.0 * (batch * (n * n + n * (n - 1) / 2)) as f64
            }
            KernelSpec::TrilBackward { batch, n } => {
                4.0 * (batch * (n * n + n * (n - 1) / 2)) as f64
            }
            KernelSpec::Elementwise { elems, bytes_per_elem, .. } => elems as f64 * bytes_per_elem,
            KernelSpec::Conv2d { .. } => {
                let (m, n, k, batch) = conv::implicit_gemm_shape(self);
                4.0 * (batch * (m * k + k * n + 2 * m * n)) as f64
            }
        }
    }
}

/// Simulates the execution time of `kernel` on `device`, in microseconds.
///
/// This is the noiseless analytic ground truth; [`crate::Gpu`] layers
/// measurement noise on top.
pub fn simulate(device: &DeviceSpec, kernel: &KernelSpec) -> f64 {
    match kernel {
        KernelSpec::Gemm { .. } => gemm::simulate(device, kernel),
        KernelSpec::EmbeddingForward { .. } | KernelSpec::EmbeddingBackward { .. } => {
            embedding::simulate(device, kernel)
        }
        KernelSpec::Concat { .. } | KernelSpec::Memcpy { .. } => memory::simulate(device, kernel),
        KernelSpec::Transpose { .. } => transpose::simulate_transpose(device, kernel),
        KernelSpec::TrilForward { .. } | KernelSpec::TrilBackward { .. } => {
            transpose::simulate_tril(device, kernel)
        }
        KernelSpec::Elementwise { .. } => elementwise::simulate(device, kernel),
        KernelSpec::Conv2d { .. } => conv::simulate(device, kernel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_distinct_per_variant() {
        let specs = [
            KernelSpec::gemm(8, 8, 8),
            KernelSpec::embedding_forward(8, 100, 2, 4, 16),
            KernelSpec::embedding_backward(8, 100, 2, 4, 16),
            KernelSpec::Concat { bytes: 64 },
            KernelSpec::memcpy_d2d(64),
            KernelSpec::Transpose { batch: 2, rows: 4, cols: 4 },
            KernelSpec::TrilForward { batch: 2, n: 4 },
            KernelSpec::TrilBackward { batch: 2, n: 4 },
            KernelSpec::Elementwise { elems: 10, flops_per_elem: 1.0, bytes_per_elem: 8.0 },
        ];
        let mut fams: Vec<_> = specs.iter().map(|s| s.family()).collect();
        fams.sort();
        fams.dedup();
        assert_eq!(fams.len(), specs.len());
    }

    #[test]
    fn gemm_flops_formula() {
        let k = KernelSpec::gemm(2, 3, 4);
        assert_eq!(k.flops(), 2.0 * 2.0 * 3.0 * 4.0);
        let b = KernelSpec::bmm(5, 2, 3, 4);
        assert_eq!(b.flops(), 5.0 * 2.0 * 3.0 * 4.0 * 2.0);
    }

    #[test]
    fn all_kernels_have_positive_time_on_all_devices() {
        let specs = [
            KernelSpec::gemm(256, 256, 256),
            KernelSpec::embedding_forward(128, 10_000, 8, 10, 64),
            KernelSpec::embedding_backward(128, 10_000, 8, 10, 64),
            KernelSpec::Concat { bytes: 1 << 20 },
            KernelSpec::memcpy_h2d(1 << 20),
            KernelSpec::Transpose { batch: 64, rows: 128, cols: 128 },
            KernelSpec::TrilForward { batch: 64, n: 27 },
            KernelSpec::TrilBackward { batch: 64, n: 27 },
            KernelSpec::Elementwise { elems: 1 << 16, flops_per_elem: 1.0, bytes_per_elem: 8.0 },
            KernelSpec::Conv2d {
                batch: 32, c_in: 64, h: 56, w: 56, c_out: 64, kh: 3, kw: 3, stride: 1, pad: 1,
            },
        ];
        for dev in DeviceSpec::paper_devices() {
            for k in &specs {
                let t = simulate(&dev, k);
                assert!(t.is_finite() && t > 0.0, "{k:?} on {} gave {t}", dev.name);
            }
        }
    }

    #[test]
    fn faster_device_is_faster_on_big_gemm() {
        let k = KernelSpec::gemm(4096, 4096, 4096);
        let v100 = simulate(&DeviceSpec::v100(), &k);
        let p100 = simulate(&DeviceSpec::p100(), &k);
        assert!(v100 < p100);
    }
}
