//! Element-wise kernels (`relu`, `sigmoid`, losses, optimizer updates, ...).
//!
//! These follow the roofline: the kernel is memory-bound unless the per-
//! element arithmetic intensity is very high. On top of the roofline the
//! simulator applies the same size-dependent bandwidth ramp as plain copies
//! plus a fixed launch floor — the two effects that make the paper treat
//! trivial ops as non-negligible (≈5% of E2E time in aggregate).

use crate::device::DeviceSpec;
use crate::kernel::KernelSpec;
use crate::memory::ramped_bandwidth;

/// Half-saturation size for element-wise kernels; slightly larger than flat
/// copies because addressing logic eats into bandwidth at small sizes.
const HALF_SAT_BYTES: f64 = 640.0 * 1024.0;

/// Fraction of peak FP32 throughput element-wise kernels sustain (no FMA
/// dual-issue, transcendental units for sigmoid, ...).
const COMPUTE_EFFICIENCY: f64 = 0.45;

/// Simulates a generic element-wise kernel.
pub fn simulate(device: &DeviceSpec, kernel: &KernelSpec) -> f64 {
    let KernelSpec::Elementwise { elems, flops_per_elem, bytes_per_elem } = *kernel else {
        panic!("elementwise::simulate called with {kernel:?}");
    };
    assert!(elems > 0, "element-wise kernel needs at least one element");
    let bytes = elems as f64 * bytes_per_elem;
    let flops = elems as f64 * flops_per_elem;

    let bw = ramped_bandwidth(device.dram_bytes_per_us(), bytes, HALF_SAT_BYTES);
    let t_mem = bytes / bw.max(1e-9);
    let t_compute = flops / (device.flop_per_us() * COMPUTE_EFFICIENCY);

    t_mem.max(t_compute) + device.kernel_start_us
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relu(elems: u64) -> KernelSpec {
        KernelSpec::Elementwise { elems, flops_per_elem: 1.0, bytes_per_elem: 8.0 }
    }

    #[test]
    fn memory_bound_for_low_intensity() {
        let d = DeviceSpec::v100();
        // 64 MB of traffic, 1 flop/elem: memory must dominate.
        let k = relu(8 << 20);
        let t = simulate(&d, &k);
        let t_mem_ideal = (8 << 20) as f64 * 8.0 / d.dram_bytes_per_us();
        assert!(t > t_mem_ideal);
        assert!(t < 1.5 * t_mem_ideal + d.kernel_start_us * 2.0);
    }

    #[test]
    fn compute_bound_for_high_intensity() {
        let d = DeviceSpec::v100();
        let k = KernelSpec::Elementwise { elems: 1 << 20, flops_per_elem: 5000.0, bytes_per_elem: 8.0 };
        let t = simulate(&d, &k);
        let t_compute = (1u64 << 20) as f64 * 5000.0 / (d.flop_per_us() * COMPUTE_EFFICIENCY);
        assert!((t - t_compute - d.kernel_start_us).abs() / t < 0.05);
    }

    #[test]
    fn launch_floor_dominates_tiny_kernels() {
        let d = DeviceSpec::titan_xp();
        let t = simulate(&d, &relu(16));
        assert!(t >= d.kernel_start_us);
        assert!(t < 2.0 * d.kernel_start_us);
    }

    #[test]
    fn monotone_in_elems() {
        let d = DeviceSpec::p100();
        let mut prev = 0.0;
        for shift in 10..24 {
            let t = simulate(&d, &relu(1 << shift));
            assert!(t >= prev);
            prev = t;
        }
    }
}
