//! Communication-collective timing (the multi-GPU extension of §V-B).
//!
//! The paper names kernel performance models for `all_to_all` and
//! `all_reduce` as the missing piece for distributed-training prediction.
//! The simulator here provides the ground truth: bandwidth-latency models
//! of the standard algorithms (ring all-reduce, pairwise all-to-all, ring
//! all-gather) with a message-size efficiency ramp — small messages are
//! latency-bound, large ones approach the link bandwidth.

use serde::{Deserialize, Serialize};

use crate::device::DeviceSpec;

/// Which collective operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Ring all-reduce (gradient synchronization in data parallelism).
    AllReduce,
    /// Pairwise all-to-all (embedding-output exchange in model parallelism).
    AllToAll,
    /// Ring all-gather.
    AllGather,
}

impl std::fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CollectiveKind::AllReduce => "all_reduce",
            CollectiveKind::AllToAll => "all_to_all",
            CollectiveKind::AllGather => "all_gather",
        };
        f.write_str(s)
    }
}

/// One collective invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectiveSpec {
    /// Operation.
    pub kind: CollectiveKind,
    /// Payload bytes held by each rank before the collective.
    pub bytes_per_rank: u64,
    /// Number of participating GPUs.
    pub world: u32,
}

/// Message size at which a link reaches half its peak bandwidth.
const LINK_HALF_SAT_BYTES: f64 = 256.0 * 1024.0;

/// Simulated execution time of a collective in microseconds.
///
/// # Panics
/// Panics if `world` is zero.
pub fn simulate(device: &DeviceSpec, spec: &CollectiveSpec) -> f64 {
    assert!(spec.world > 0, "collective needs at least one rank");
    let w = spec.world as f64;
    if spec.world == 1 {
        return 0.0; // degenerate: nothing to exchange
    }
    let link = device.interconnect_bytes_per_us();
    let lat = device.interconnect_latency_us;
    let bytes = spec.bytes_per_rank as f64;

    let (wire_bytes, steps) = match spec.kind {
        // Ring all-reduce moves 2(w-1)/w of the payload in 2(w-1) steps.
        CollectiveKind::AllReduce => (2.0 * (w - 1.0) / w * bytes, 2.0 * (w - 1.0)),
        // Pairwise all-to-all sends (w-1)/w of the payload in w-1 steps.
        CollectiveKind::AllToAll => ((w - 1.0) / w * bytes, w - 1.0),
        // Ring all-gather moves (w-1)/w of the *gathered* payload.
        CollectiveKind::AllGather => ((w - 1.0) / w * bytes, w - 1.0),
    };
    let per_step = wire_bytes / steps;
    let eff = per_step / (per_step + LINK_HALF_SAT_BYTES);
    wire_bytes / (link * eff).max(1e-9) + steps * lat + device.kernel_start_us
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: CollectiveKind, bytes: u64, world: u32) -> CollectiveSpec {
        CollectiveSpec { kind, bytes_per_rank: bytes, world }
    }

    #[test]
    fn single_rank_is_free() {
        let d = DeviceSpec::v100();
        assert_eq!(simulate(&d, &spec(CollectiveKind::AllReduce, 1 << 20, 1)), 0.0);
    }

    #[test]
    fn allreduce_moves_twice_alltoall() {
        // For the same payload and world, ring all-reduce moves ~2x the
        // bytes of an all-to-all.
        let d = DeviceSpec::v100();
        let big = 256u64 << 20;
        let ar = simulate(&d, &spec(CollectiveKind::AllReduce, big, 8));
        let aa = simulate(&d, &spec(CollectiveKind::AllToAll, big, 8));
        let ratio = ar / aa;
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn bandwidth_bound_for_large_payloads() {
        let d = DeviceSpec::v100();
        let bytes = 1u64 << 30;
        let t = simulate(&d, &spec(CollectiveKind::AllReduce, bytes, 4));
        let ideal = 2.0 * 3.0 / 4.0 * bytes as f64 / d.interconnect_bytes_per_us();
        assert!(t < 1.3 * ideal, "t {t} vs ideal {ideal}");
    }

    #[test]
    fn latency_bound_for_tiny_payloads() {
        let d = DeviceSpec::v100();
        let t = simulate(&d, &spec(CollectiveKind::AllReduce, 1024, 8));
        // 14 hops x 5 us dominates.
        assert!(t > 14.0 * d.interconnect_latency_us * 0.9);
    }

    #[test]
    fn pcie_devices_pay_more() {
        let big = 64u64 << 20;
        let v = simulate(&DeviceSpec::v100(), &spec(CollectiveKind::AllToAll, big, 4));
        let xp = simulate(&DeviceSpec::titan_xp(), &spec(CollectiveKind::AllToAll, big, 4));
        assert!(xp > 5.0 * v, "PCIe all-to-all should be far slower: {xp} vs {v}");
    }

    #[test]
    fn monotone_in_world_for_fixed_total_gradient() {
        // All-reduce of a fixed gradient gets slower with more ranks (more
        // steps, more latency).
        let d = DeviceSpec::v100();
        let mut prev = 0.0;
        for w in [2u32, 4, 8, 16] {
            let t = simulate(&d, &spec(CollectiveKind::AllReduce, 64 << 20, w));
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_world_panics() {
        simulate(&DeviceSpec::v100(), &spec(CollectiveKind::AllReduce, 1, 0));
    }
}
