//! **Figure 1** — GPU utilization of per-batch training time of six DL
//! models on a Tesla V100, at their commonly used training batch sizes.
//!
//! Expected shape: CV/NLP models near 100%; the DLRM variants substantially
//! lower, with visible device idle time.

use dlperf_bench::{header, measure_iters};
use dlperf_gpusim::DeviceSpec;
use dlperf_models::transformer::TransformerConfig;
use dlperf_models::{cv, DlrmConfig};
use dlperf_trace::engine::ExecutionEngine;

fn main() {
    header("Figure 1: GPU utilization of six DL models (Tesla V100)");
    let device = DeviceSpec::v100();
    let workloads: Vec<(String, dlperf_graph::Graph, u64)> = vec![
        ("ResNet50".into(), cv::resnet50(32), 32),
        ("Inception-V3".into(), cv::inception_v3(32), 32),
        ("Transformer".into(), TransformerConfig::base(64).build(), 64),
        ("DLRM_default".into(), DlrmConfig::default_config(2048).build(), 2048),
        ("DLRM_MLPerf".into(), DlrmConfig::mlperf_config(2048).build(), 2048),
        ("DLRM_DDP".into(), DlrmConfig::ddp_config(2048).build(), 2048),
    ];

    println!(
        "{:14} {:>6} {:>12} {:>12} {:>12} {:>7}",
        "model", "batch", "e2e/us", "active/us", "idle/us", "util"
    );
    for (name, graph, batch) in workloads {
        let mut engine = ExecutionEngine::new(device.clone(), 1);
        engine.set_profiling(false);
        let runs = engine
            .run_iterations(&graph, measure_iters().min(20))
            .expect("workload executes");
        let e2e = runs.iter().map(|r| r.e2e_us).sum::<f64>() / runs.len() as f64;
        let active = runs.iter().map(|r| r.active_us()).sum::<f64>() / runs.len() as f64;
        println!(
            "{:14} {:>6} {:>12.0} {:>12.0} {:>12.0} {:>6.1}%",
            name,
            batch,
            e2e,
            active,
            e2e - active,
            active / e2e * 100.0
        );
    }
    println!("\nRMs have substantially more device idle time than CV/NLP models;");
    println!("summing kernel times cannot model them (the paper's motivation).");
}
