//! **Figure 9** — E2E per-batch training-time prediction of the three DLRM
//! models (Table III configs) on three GPUs, across batch sizes: prediction
//! error of GPU active time, of the full E2E model, and of the
//! `kernel_only` baseline, next to the measured iteration time.
//!
//! Expected shape: active and E2E errors in the single-digit to low-teens
//! band; `kernel_only` error tracking `1 − utilization` and shrinking as
//! batch size grows; E2E mildly underestimating.

use dlperf_bench::{e2e_evaluation_cached, header};

fn main() {
    header("Figure 9: E2E per-batch prediction of 3 DLRM models x 3 GPUs");
    println!("(Table III configs: DLRM_default, DLRM_MLPerf, DLRM_DDP)\n");

    let rows = e2e_evaluation_cached();
    let mut devices: Vec<String> = rows.iter().map(|r| r.device.clone()).collect();
    devices.dedup();

    for device in devices {
        println!("--- {device} ---");
        println!(
            "{:14} {:>6} {:>11} | {:>8} {:>8} {:>12} | {:>6}",
            "workload", "batch", "measured/us", "active", "total", "kernel_only", "util"
        );
        for r in rows.iter().filter(|r| r.device == device) {
            println!(
                "{:14} {:>6} {:>11.0} | {:>7.2}% {:>7.2}% {:>11.2}% | {:>5.0}%",
                r.workload,
                r.batch,
                r.measured_e2e_us,
                r.active_error() * 100.0,
                r.e2e_error() * 100.0,
                r.kernel_only_error() * 100.0,
                r.utilization() * 100.0
            );
        }
        println!();
    }

    // The headline trend: kernel_only error vs utilization.
    let mut by_batch: Vec<(u64, f64, f64)> = Vec::new();
    for &b in &dlperf_bench::BATCH_SIZES {
        let rs: Vec<_> = rows.iter().filter(|r| r.batch == b).collect();
        let ko = rs.iter().map(|r| r.kernel_only_error()).sum::<f64>() / rs.len() as f64;
        let util = rs.iter().map(|r| r.utilization()).sum::<f64>() / rs.len() as f64;
        by_batch.push((b, ko, util));
    }
    println!("kernel_only error vs utilization (mean over workloads/devices):");
    for (b, ko, util) in by_batch {
        println!("  batch {b:>5}: utilization {:5.1}%  kernel_only error {:5.1}%", util * 100.0, ko * 100.0);
    }
    println!("\nThe gap between E2E and kernel_only shrinks as batch size (and thus");
    println!("utilization) grows — the model degenerates toward kernel_only, as the");
    println!("paper describes.");
}
