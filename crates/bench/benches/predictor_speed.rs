//! Criterion microbenchmarks of the library itself: the paper notes the
//! performance model "runs fast and usually finishes a single E2E
//! prediction in a few seconds" — ours should be far below that.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dlperf_core::pipeline::Pipeline;
use dlperf_gpusim::{DeviceSpec, Gpu, KernelSpec};
use dlperf_kernels::CalibrationEffort;
use dlperf_models::{cv, DlrmConfig};
use dlperf_trace::engine::ExecutionEngine;

fn bench_prediction(c: &mut Criterion) {
    let graph = DlrmConfig::default_config(2048).build();
    let pipeline = Pipeline::analyze(
        &DeviceSpec::v100(),
        std::slice::from_ref(&graph),
        CalibrationEffort::Quick,
        10,
        1,
    );
    c.bench_function("e2e_predict_dlrm_default", |b| {
        b.iter(|| pipeline.predict(black_box(&graph)).unwrap())
    });

    let resnet = cv::resnet50(32);
    c.bench_function("e2e_predict_resnet50", |b| {
        b.iter(|| pipeline.predict(black_box(&resnet)).unwrap())
    });
}

fn bench_engine(c: &mut Criterion) {
    let graph = DlrmConfig::default_config(2048).build();
    c.bench_function("engine_run_dlrm_default", |b| {
        let mut engine = ExecutionEngine::new(DeviceSpec::v100(), 3);
        b.iter(|| engine.run(black_box(&graph)).unwrap())
    });
}

fn bench_simulator(c: &mut Criterion) {
    let gpu = Gpu::noiseless(DeviceSpec::v100());
    let gemm = KernelSpec::gemm(2048, 1024, 1024);
    c.bench_function("gpusim_gemm_time", |b| {
        b.iter(|| gpu.kernel_time_noiseless(black_box(&gemm)))
    });
    let el = KernelSpec::embedding_forward(2048, 1_000_000, 8, 10, 64);
    c.bench_function("gpusim_embedding_time", |b| {
        b.iter(|| gpu.kernel_time_noiseless(black_box(&el)))
    });
}

fn bench_graph_build(c: &mut Criterion) {
    c.bench_function("build_dlrm_default_graph", |b| {
        b.iter(|| DlrmConfig::default_config(black_box(2048)).build())
    });
    c.bench_function("build_resnet50_graph", |b| b.iter(|| cv::resnet50(black_box(32))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_prediction, bench_engine, bench_simulator, bench_graph_build
}
criterion_main!(benches);
