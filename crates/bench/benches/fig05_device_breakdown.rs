//! **Figure 5** — Device-time breakdown of the three DLRM models at batch
//! size 2048 on a V100, profiler overheads excluded.
//!
//! Expected shape: no single op dominates; addmm/bmm (compute), embedding
//! lookups (memory), concat/to (communication) and their backwards jointly
//! dominate; different configs are dominated by different kernels
//! (embedding lookup for default/DDP, IndexBackward + FC for MLPerf); idle
//! time is a non-negligible share everywhere.

use dlperf_bench::header;
use dlperf_gpusim::DeviceSpec;
use dlperf_models::DlrmConfig;
use dlperf_trace::breakdown::DeviceBreakdown;
use dlperf_trace::engine::ExecutionEngine;

fn main() {
    header("Figure 5: device-time breakdown of three DLRM models (batch 2048, V100)");
    let device = DeviceSpec::v100();
    for cfg in DlrmConfig::paper_configs(2048) {
        let graph = cfg.build();
        let mut engine = ExecutionEngine::new(device.clone(), 5);
        engine.set_profiling(false);
        let run = engine.run(&graph).expect("workload executes");
        let b = DeviceBreakdown::from_run(&run);

        println!("\n--- {} (total {:.0} us, utilization {:.1}%) ---", b.workload, b.total_us, b.utilization() * 100.0);
        for (label, share) in b.stacked_rows(10) {
            let bar_len = (share * 60.0).round() as usize;
            println!("{:32} {:5.1}%  {}", label, share * 100.0, "#".repeat(bar_len));
        }
    }
    println!("\nNote the differing dominating kernels across configs and the idle share.");
}
