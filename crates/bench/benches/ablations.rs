//! **Ablations** — design-choice studies called out in DESIGN.md, beyond
//! the paper's headline tables:
//!
//! 1. Overhead-database granularity: per-op (individual), per-op (shared),
//!    type-level means.
//! 2. T4 policy: the paper's fixed approximation vs measured per-op means.
//! 3. Kernel launch-point modeling: `cpu + T4/2` (Algorithm 1) vs `cpu`
//!    vs `cpu + T4`.
//! 4. Embedding-lookup model choice inside the E2E prediction: plain vs
//!    hit-rate-enhanced.
//! 5. Host-accessory-op modeling: how the dispatcher-swarm density changes
//!    utilization.

use std::sync::Arc;

use dlperf_bench::{effort, header, measure_graph, measure_iters};
use dlperf_core::pipeline::Pipeline;
use dlperf_core::{E2ePredictor, OverheadGranularity, T4Policy};
use dlperf_gpusim::{DeviceSpec, KernelFamily};
use dlperf_kernels::heuristic::{EmbeddingModel, EmbeddingModelKind};
use dlperf_models::DlrmConfig;
use dlperf_trace::engine::ExecutionEngine;

fn err_pct(pred: f64, measured: f64) -> f64 {
    (pred - measured) / measured * 100.0
}

fn main() {
    header("Ablations: overhead granularity, T4 policy, launch point, EL model");
    let device = DeviceSpec::v100();
    let batch = 1024;
    let graphs: Vec<_> = DlrmConfig::paper_configs(batch).iter().map(|c| c.build()).collect();
    let pipeline = Pipeline::analyze(&device, &graphs, effort(), measure_iters(), 71);

    let measured: Vec<f64> = graphs.iter().map(|g| measure_graph(&device, g, 72).0).collect();

    // --- 1. Overhead granularity. ---
    println!("\n[1] overhead-database granularity (signed E2E error per workload):");
    println!("{:26} {:>14} {:>14} {:>14}", "variant", graphs[0].name, graphs[1].name, graphs[2].name);
    let variants: Vec<(&str, Vec<f64>)> = vec![
        (
            "individual per-op",
            graphs.iter().map(|g| pipeline.predict_individual(g).unwrap().e2e_us).collect(),
        ),
        (
            "shared per-op",
            graphs.iter().map(|g| pipeline.predict(g).unwrap().e2e_us).collect(),
        ),
        (
            "shared type-level",
            graphs
                .iter()
                .map(|g| {
                    pipeline
                        .predictor()
                        .clone()
                        .with_granularity(OverheadGranularity::TypeOnly)
                        .predict(g)
                        .unwrap()
                        .e2e_us
                })
                .collect(),
        ),
    ];
    for (name, preds) in variants {
        print!("{name:26}");
        for (p, m) in preds.iter().zip(&measured) {
            print!(" {:>+13.2}%", err_pct(*p, *m));
        }
        println!();
    }

    // --- 2. T4 policy. ---
    println!("\n[2] T4 policy (signed E2E error, DLRM_default):");
    for (name, policy) in [
        ("fixed 12 us (paper-style)", T4Policy::Fixed(12.0)),
        ("fixed 10 us (paper value)", T4Policy::Fixed(10.0)),
        ("measured per-op means", T4Policy::Measured),
    ] {
        let p = pipeline
            .predictor()
            .clone()
            .with_t4_policy(policy)
            .predict(&graphs[0])
            .unwrap();
        println!("  {name:28} {:+.2}%", err_pct(p.e2e_us, measured[0]));
    }

    // --- 3. Launch-point factor. ---
    println!("\n[3] kernel launch point cpu + f x T4 (signed E2E error, DLRM_default):");
    for f in [0.0, 0.5, 1.0] {
        let p = pipeline
            .predictor()
            .clone()
            .with_launch_factor(f)
            .predict(&graphs[0])
            .unwrap();
        println!("  f = {f:3.1}  {:+.2}%", err_pct(p.e2e_us, measured[0]));
    }

    // --- 4. EL model choice inside the active-time prediction. ---
    // Evaluated on a small-table DLRM variant (8k-row tables), where the
    // plain DRAM-only model overestimates the L2-resident lookups; on the
    // paper configs' million-row tables the two models coincide.
    println!("\n[4] embedding-lookup model, lookup-dominated small-table DLRM, active-time error:");
    // Small L2-resident tables with heavy pooling (L = 100) and tiny MLPs:
    // the embedding kernels dominate the active time, so the EL model
    // choice is visible end-to-end (on the paper configs' million-row
    // tables both models coincide, as Table IV's L columns show).
    let small_tables = DlrmConfig {
        rows_per_table: vec![1_000; 8],
        lookups_per_table: 100,
        bottom_mlp: vec![64, 64],
        top_mlp: vec![64, 1],
        embedding_dim: 64,
        ..DlrmConfig::default_config(batch)
    }
    .build();
    let (_, small_active) = measure_graph(&device, &small_tables, 74);
    for (name, kind) in [
        ("plain (DRAM only)", EmbeddingModelKind::Plain),
        ("enhanced (hit rate)", EmbeddingModelKind::Enhanced),
    ] {
        let mut registry = pipeline.predictor().registry().clone();
        registry.insert(
            KernelFamily::EmbeddingForward,
            Arc::new(EmbeddingModel::new(&device, kind)),
        );
        registry.insert(
            KernelFamily::EmbeddingBackward,
            Arc::new(EmbeddingModel::new(&device, kind)),
        );
        let pred = E2ePredictor::new(registry, dlperf_trace::OverheadStats::from_json(
            &pipeline.shared_overheads_json(),
        )
        .expect("valid db"))
        .predict_active(&small_tables)
        .unwrap();
        println!("  {name:22} {:+.2}%", err_pct(pred, small_active));
    }

    // --- 5. Host-accessory density. ---
    println!("\n[5] dispatcher-swarm density vs measured utilization (DLRM_default):");
    for accessories in [0usize, 2, 4] {
        let g = DlrmConfig { host_accessory_ops: accessories, ..DlrmConfig::default_config(batch) }
            .build();
        let mut engine = ExecutionEngine::new(device.clone(), 73);
        engine.set_profiling(false);
        let run = engine.run(&g).unwrap();
        println!(
            "  {accessories} accessory ops/device-op: e2e {:>8.0} us, utilization {:>5.1}%",
            run.e2e_us,
            run.utilization() * 100.0
        );
    }
}
