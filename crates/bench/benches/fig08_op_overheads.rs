//! **Figure 8** — mean/std of the T2, T3, and T5 overheads of the 10 most
//! dominating ops, per model and batch size, on the V100.
//!
//! Expected shape: per-op means differ (each op type has its own overhead
//! level) but are stable across models and batch sizes, with the overall
//! per-type mean a usable summary.

use dlperf_bench::{header, measure_iters};
use dlperf_gpusim::DeviceSpec;
use dlperf_models::DlrmConfig;
use dlperf_trace::engine::ExecutionEngine;
use dlperf_trace::{OverheadStats, OverheadType, Trace};

fn stats_for(cfg: &DlrmConfig, device: &DeviceSpec, seed: u64) -> OverheadStats {
    let graph = cfg.build();
    let mut engine = ExecutionEngine::new(device.clone(), seed);
    let runs = engine.run_iterations(&graph, measure_iters()).expect("executes");
    let traces: Vec<Trace> = runs.into_iter().map(|r| r.trace).collect();
    OverheadStats::extract(&traces, true)
}

fn main() {
    header("Figure 8: T2/T3/T5 overhead stats of the 10 most dominating ops (V100)");
    let device = DeviceSpec::v100();

    for (cfg, batch) in [
        (DlrmConfig::default_config(512), 512u64),
        (DlrmConfig::default_config(2048), 2048),
        (DlrmConfig::mlperf_config(2048), 2048),
    ] {
        let stats = stats_for(&cfg, &device, batch ^ 0x88);
        println!("\n--- {} @ batch {} ---", cfg.name, batch);
        for ty in [OverheadType::T2, OverheadType::T3, OverheadType::T5] {
            let overall = stats.type_stat(ty).expect("type observed");
            println!("{ty}: overall mean {:.2} us (dashed line)", overall.mean_us);
            for (op, s) in stats.dominating_ops(ty, 10) {
                println!(
                    "    {:34} mean {:>6.2} us  std {:>6.2} us  (n={})",
                    op, s.mean_us, s.std_us, s.count
                );
            }
        }
    }
    println!("\nPer-op means differ but are stable across workloads/batches —");
    println!("the structure the paper reads off Fig. 8.");
}
