//! **Extension** — multi-GPU hybrid-parallel DLRM (the paper's §V-B work in
//! progress): scaling curves, interconnect sensitivity, and sharding-plan
//! comparison, predicted vs simulated.

use dlperf_bench::{effort, header, measure_iters};
use dlperf_core::codesign::{greedy_by_predicted_cost, round_robin};
use dlperf_core::pipeline::Pipeline;
use dlperf_distrib::{DistributedDlrm, DistributedPredictor, MultiGpuEngine, ShardingPlan};
use dlperf_gpusim::DeviceSpec;
use dlperf_models::criteo::KAGGLE_TABLE_ROWS;
use dlperf_models::DlrmConfig;

fn main() {
    header("Extension: multi-GPU hybrid-parallel DLRM training");
    let batch = 4096;
    let iters = measure_iters().min(20);

    for device in [DeviceSpec::v100(), DeviceSpec::titan_xp()] {
        let cfg = DlrmConfig::default_config(batch);
        let probe =
            DistributedDlrm::new(cfg.clone(), ShardingPlan::round_robin(8, 1)).expect("valid");
        eprintln!("calibrating {} ...", device.name);
        let pipe = Pipeline::analyze(&device, &probe.segments(0), effort(), iters, 3);
        let predictor = DistributedPredictor::new(pipe.predictor().clone(), device.clone());

        println!(
            "\n--- {} cluster (interconnect {:.0} GB/s) ---",
            device.name, device.interconnect_bw_gbs
        );
        println!(
            "{:>6} {:>12} {:>12} {:>8} {:>10} {:>9}",
            "GPUs", "pred/us", "meas/us", "err", "speedup", "comm"
        );
        let mut base = None;
        for world in [1usize, 2, 4, 8] {
            let job = DistributedDlrm::new(
                cfg.clone(),
                ShardingPlan::round_robin(cfg.rows_per_table.len(), world),
            )
            .expect("valid");
            let p = predictor.predict(&job).expect("lowers");
            let mut engine = MultiGpuEngine::new(device.clone(), 7);
            let m = engine.measure_e2e(&job, iters).expect("executes");
            let base_t = *base.get_or_insert(p.e2e_us);
            println!(
                "{:>6} {:>12.0} {:>12.0} {:>+7.1}% {:>9.2}x {:>8.1}%",
                world,
                p.e2e_us,
                m,
                (p.e2e_us - m) / m * 100.0,
                base_t / p.e2e_us,
                p.comm_share() * 100.0
            );
        }
    }

    // Sharding-plan study on the Criteo tables (MLPerf config).
    header("Sharding plans for the 26 Criteo tables on 4 x V100 (MLPerf config)");
    let device = DeviceSpec::v100();
    let cfg = DlrmConfig::mlperf_config(batch);
    let probe = DistributedDlrm::new(cfg.clone(), ShardingPlan::round_robin(26, 1)).expect("valid");
    let pipe = Pipeline::analyze(&device, &probe.segments(0), effort(), iters, 5);
    let predictor = DistributedPredictor::new(pipe.predictor().clone(), device.clone());
    let registry = pipe.predictor().registry();

    let plans: Vec<(&str, Vec<usize>)> = vec![
        ("round-robin", round_robin(&KAGGLE_TABLE_ROWS, 4)),
        (
            "LPT by predicted cost",
            greedy_by_predicted_cost(registry, &KAGGLE_TABLE_ROWS, 4, batch, 1, 32),
        ),
        ("all tables on gpu0", vec![0; 26]),
    ];
    println!("{:24} {:>12} {:>12} {:>10}", "plan", "pred/us", "meas/us", "S1 imbal");
    for (name, assignment) in plans {
        let plan = ShardingPlan::from_assignment(&assignment, 4).expect("valid");
        let job = DistributedDlrm::new(cfg.clone(), plan).expect("valid");
        let p = predictor.predict(&job).expect("lowers");
        let mut engine = MultiGpuEngine::new(device.clone(), 11);
        let run = engine.run(&job).expect("executes");
        println!(
            "{:24} {:>12.0} {:>12.0} {:>10.2}",
            name,
            p.e2e_us,
            run.e2e_us,
            run.segment_imbalance(0)
        );
    }
    println!("\nModel-driven sharding keeps per-rank embedding time balanced; the");
    println!("predictor ranks the plans the same way the simulated cluster does.");
}
