//! **Figure 7** — T1 overhead mean and std across all models and batch
//! sizes on the V100.
//!
//! Expected shape: means close to each other across workloads and batch
//! sizes (the *model-independence* and *size-independence* assumptions that
//! justify a reusable overhead database).

use dlperf_bench::{header, measure_iters, BATCH_SIZES};
use dlperf_gpusim::DeviceSpec;
use dlperf_models::DlrmConfig;
use dlperf_trace::engine::ExecutionEngine;
use dlperf_trace::{OverheadStats, OverheadType, Trace};

fn main() {
    header("Figure 7: T1 overhead mean/std across models and batch sizes (V100)");
    let device = DeviceSpec::v100();
    println!("{:14} {:>7} {:>12} {:>12} {:>9}", "model", "batch", "T1 mean/us", "T1 std/us", "samples");

    let mut grand: Vec<f64> = Vec::new();
    for cfg_fn in [
        DlrmConfig::default_config as fn(u64) -> DlrmConfig,
        DlrmConfig::mlperf_config,
        DlrmConfig::ddp_config,
    ] {
        for &batch in &BATCH_SIZES {
            let cfg = cfg_fn(batch);
            let graph = cfg.build();
            let mut engine = ExecutionEngine::new(device.clone(), batch ^ 7);
            let runs = engine.run_iterations(&graph, measure_iters()).expect("executes");
            let traces: Vec<Trace> = runs.into_iter().map(|r| r.trace).collect();
            let stats = OverheadStats::extract(&traces, true);
            let t1 = stats.type_stat(OverheadType::T1).expect("T1 observed");
            grand.push(t1.mean_us);
            println!(
                "{:14} {:>7} {:>12.2} {:>12.2} {:>9}",
                cfg.name, batch, t1.mean_us, t1.std_us, t1.count
            );
        }
    }
    let mean = grand.iter().sum::<f64>() / grand.len() as f64;
    let spread = grand.iter().map(|v| (v - mean).abs() / mean).fold(0.0f64, f64::max);
    println!("\noverall T1 mean: {mean:.2} us; worst relative deviation across");
    println!("(model, batch) cells: {:.1}% — no model/size trend, supporting the", spread * 100.0);
    println!("paper's reusable-overhead-database argument.");
}
