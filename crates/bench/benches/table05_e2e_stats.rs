//! **Table V** — statistics (geomean / min / max) of the active-time and
//! E2E-time prediction errors across the three platforms, for individual
//! and shared overhead databases.
//!
//! Expected shape: active error < E2E error < shared-E2E error, with the
//! shared penalty only a few points (the paper: 4.61% / 7.96% / 10.15%
//! geomeans, shared costing +2.19%).

use dlperf_bench::{e2e_evaluation_cached, header};
use dlperf_core::report::{ErrorSummary, PredictionRow};

fn main() {
    header("Table V: active / E2E / shared-E2E error statistics across platforms");
    let rows = e2e_evaluation_cached();
    let mut devices: Vec<String> = rows.iter().map(|r| r.device.clone()).collect();
    devices.dedup();

    println!(
        "{:12} | {:^22} | {}",
        "",
        "Overall",
        devices.iter().map(|d| format!("{d:^22}")).collect::<Vec<_>>().join(" | ")
    );
    println!(
        "{:12} | {:>6} {:>6} {:>6}  | then the same triple per device",
        "metric",
        "geo",
        "min",
        "max",
    );

    type Metric = fn(&PredictionRow) -> f64;
    let metrics: [(&str, Metric); 3] = [
        ("Active", PredictionRow::active_error),
        ("E2E", PredictionRow::e2e_error),
        ("Shared E2E", PredictionRow::shared_e2e_error),
    ];
    let mut geos = Vec::new();
    for (name, metric) in metrics {
        let overall = ErrorSummary::over(&rows, None, metric).expect("rows present");
        geos.push(overall.geomean);
        print!("{name:12} | {overall}");
        for d in &devices {
            let s = ErrorSummary::over(&rows, Some(d), metric).expect("device rows");
            print!(" | {s}");
        }
        println!();
    }

    println!(
        "\nshared-overhead penalty: {:+.2} percentage points over individual",
        (geos[2] - geos[1]) * 100.0
    );
    println!("(the paper reports +2.19%; a small penalty means one shared overhead");
    println!("database suffices for large-scale prediction.)");
}
