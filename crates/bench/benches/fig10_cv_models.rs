//! **Figure 10** — E2E per-batch prediction of ResNet-50 and Inception-V3
//! (the non-DLRM representatives) on three GPUs, compared against the
//! Habitat-like and MLPredict-like baselines.
//!
//! Expected shape: our critical-path model comparable to or better than the
//! Habitat-like baseline and much better than the MLPredict-like one, whose
//! restricted training set fails on large batches and on Inception's 1×7 /
//! 7×1 convolution filters.

use dlperf_bench::{effort, header, measure_iters};
use dlperf_core::baselines::{HabitatLike, MlPredictLike};
use dlperf_core::E2ePredictor;
use dlperf_gpusim::DeviceSpec;
use dlperf_kernels::ModelRegistry;
use dlperf_models::cv;
use dlperf_trace::engine::ExecutionEngine;
use dlperf_trace::{OverheadStats, Trace};

fn main() {
    header("Figure 10: E2E prediction of ResNet-50 / Inception-V3 vs baselines");
    println!(
        "{:10} {:14} {:>6} {:>12} | {:>8} {:>10} {:>11}",
        "device", "model", "batch", "measured/us", "ours", "habitat", "mlpredict"
    );

    for device in DeviceSpec::paper_devices() {
        eprintln!("calibrating {} ...", device.name);
        let registry = ModelRegistry::calibrate(&device, effort(), 301);
        let mlpredict = MlPredictLike::train(&device, 302);
        let habitat = HabitatLike::new(registry.clone(), 20.0);

        for (name, graph) in [
            ("ResNet50", cv::resnet50(32)),
            ("Inception-V3", cv::inception_v3(32)),
        ] {
            // Measured reference + overheads for our model.
            let mut engine = ExecutionEngine::new(device.clone(), 31);
            let runs = engine
                .run_iterations(&graph, measure_iters().min(20))
                .expect("executes");
            let traces: Vec<Trace> = runs.iter().map(|r| r.trace.clone()).collect();
            let overheads = OverheadStats::extract(&traces, true);
            let mut engine = ExecutionEngine::new(device.clone(), 32);
            engine.set_profiling(false);
            let measured = engine.measure_e2e(&graph, measure_iters().min(20)).expect("executes");

            let ours = E2ePredictor::new(registry.clone(), overheads)
                .predict(&graph)
                .expect("lowers")
                .e2e_us;
            let hb = habitat.predict(&graph).expect("lowers");
            let mlp = mlpredict.predict(&graph).expect("lowers");

            let err = |p: f64| (p - measured) / measured * 100.0;
            println!(
                "{:10} {:14} {:>6} {:>12.0} | {:>+7.1}% {:>+9.1}% {:>+10.1}%",
                device.name,
                name,
                32,
                measured,
                err(ours),
                err(hb),
                err(mlp)
            );
        }
    }
    println!("\nOur model's coverage of every op family plus critical-path assembly");
    println!("keeps it accurate where restricted per-op predictors drift.");
}
