//! **Sweep engine** — throughput of the parallel what-if sweep, with the
//! memo cache's and the incremental predictor's contributions broken out,
//! emitting `BENCH_sweep.json`.
//!
//! Part 1 (the PR-3 reference triplet, incremental path off so the numbers
//! stay comparable across baselines):
//!
//! * `seq_uncached` — one thread, memo cache off: the naive baseline.
//! * `seq_cached` — one thread, cold memo cache: memoization alone.
//! * `par_cached` — N threads, cold memo cache: the engine as shipped.
//!
//! The headline `speedup` is `seq_uncached / par_cached`. Worker count is
//! capped at the host's available parallelism (`effective_threads` in the
//! JSON records what actually ran — oversubscribing a small host used to
//! make `par_cached` *slower* than `seq_cached`).
//!
//! Part 2 (this PR's additions), all runs bitwise identical by assertion:
//!
//! * `incremental_speedup` — a single-op-mutation scenario matrix priced
//!   sequentially with the incremental predictor off vs on, in steady
//!   state (second run of the same engine, caches and prepared graphs
//!   warm): dirty-frontier re-prediction against per-device baselines must
//!   beat re-walking every graph by ≥ 2×.
//! * `batched_speedup` — per-kernel scalar MLP inference vs one batched
//!   forward pass per family over the same spec list.
//! * `obs_overhead_pct` — the steady-state sweep with the `dlperf-obs`
//!   recorder enabled (spans buffered, no sink) vs disabled; the CI gate
//!   caps this at a few percent.

use std::collections::BTreeMap;
use std::time::Instant;

use dlperf_bench::header;
use dlperf_core::pipeline::Pipeline;
use dlperf_core::sweep::{GraphMutation, Scenario, ScenarioMatrix, SweepEngine, SweepOutcome};
use dlperf_distrib::{CommModel, Topology};
use dlperf_gpusim::{CollectiveKind, CollectiveSpec, DeviceSpec, KernelSpec};
use dlperf_graph::OpKind;
use dlperf_kernels::ModelRegistry;
use dlperf_models::DlrmConfig;

fn fingerprint(o: &SweepOutcome) -> Vec<Option<u64>> {
    o.expect_complete()
        .iter()
        .map(|r| r.prediction.as_ref().map(|p| p.e2e_us.to_bits()))
        .collect()
}

fn main() {
    header("Sweep engine: parallel what-if matrix with memoized kernel models");
    let base = DlrmConfig {
        rows_per_table: vec![200_000; 8],
        batched_embedding: false,
        ..DlrmConfig::default_config(512)
    }
    .build();

    let effort = dlperf_bench::effort();
    let pipelines: Vec<Pipeline> = DeviceSpec::paper_devices()
        .iter()
        .map(|d| {
            let registry = ModelRegistry::calibrate(d, effort, 71);
            Pipeline::analyze_with_registry(d, std::slice::from_ref(&base), registry, 10, 71)
        })
        .collect();

    let scenarios = ScenarioMatrix::new()
        .device("V100", 0)
        .device("TITANXp", 1)
        .device("P100", 2)
        .batches(&[128, 256, 512, 1024, 2048, 4096])
        .variant("base", vec![])
        .variant("fused", vec![GraphMutation::FuseEmbeddingBags])
        .variant("hoisted", vec![GraphMutation::HoistAll])
        .build();
    println!("{} scenarios, {} pipelines\n", scenarios.len(), 3);

    let host_threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // The reference triplet runs with the incremental path off so
    // `speedup` / `memo_speedup` measure the same machinery as earlier
    // baselines of this file.
    let run = |threads: usize, cache: bool| -> SweepOutcome {
        let eng = SweepEngine::new(pipelines.clone())
            .with_threads(threads)
            .with_cache(cache)
            .with_incremental(false);
        let t0 = Instant::now();
        let mut out = eng.run(&base, &scenarios);
        out.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        out
    };

    let seq_uncached = run(1, false);
    let seq_cached = run(1, true);
    let par_cached = run(host_threads, true);
    let effective_threads = par_cached.threads;

    assert_eq!(
        fingerprint(&seq_uncached),
        fingerprint(&par_cached),
        "parallel+cached sweep must be bitwise identical to sequential uncached"
    );
    assert_eq!(fingerprint(&seq_uncached), fingerprint(&seq_cached));

    let stats = par_cached.cache.expect("cache enabled");
    let memo_speedup = seq_uncached.wall_ms / seq_cached.wall_ms;
    let speedup = seq_uncached.wall_ms / par_cached.wall_ms;

    println!("{:>28} {:>10} {:>9}", "run", "wall/ms", "speedup");
    println!("{:>28} {:>10.1} {:>8.2}x", "sequential, no cache", seq_uncached.wall_ms, 1.0);
    println!("{:>28} {:>10.1} {:>8.2}x", "sequential, memo cache", seq_cached.wall_ms, memo_speedup);
    println!(
        "{:>28} {:>10.1} {:>8.2}x",
        format!("{} threads, memo cache", effective_threads),
        par_cached.wall_ms,
        speedup
    );
    println!("\ncache: {stats}");
    println!("host threads: {host_threads} (effective sweep workers: {effective_threads})");

    // ---- Part 2a: incremental re-prediction on a single-op-mutation matrix.
    //
    // The canonical interactive what-if: many scenarios, each one op away
    // from the shared baseline, priced on every device. With the
    // incremental path on, each device walks the base graph once and every
    // scenario recomputes only its dirty frontier.
    let n = base.node_count();
    let mut single_op: Vec<Scenario> = Vec::new();
    for (d, name) in [(0usize, "V100"), (1, "TITANXp"), (2, "P100")] {
        single_op.push(Scenario::new(format!("{name}/base"), d));
        for i in 0..16 {
            let pos = 1 + i * (n - 2) / 16;
            single_op.push(
                Scenario::new(format!("{name}/swap{pos}"), d)
                    .with(GraphMutation::ReplaceOp { node: pos, op: OpKind::Sigmoid }),
            );
        }
        for i in 0..4 {
            let pos = 2 + i * (n - 3) / 4;
            single_op.push(
                Scenario::new(format!("{name}/hoist{pos}"), d)
                    .with(GraphMutation::HoistNode(pos)),
            );
        }
    }

    // Each engine runs the matrix twice: the first run pays the one-time
    // costs (memo-cache fill, prepared-graph store, baseline checkpoints),
    // the second is the steady state an interactive what-if session lives
    // in. Both runs must be bitwise identical; the headline speedup is the
    // steady-state ratio.
    let run_single = |incremental: bool| -> (SweepOutcome, SweepOutcome) {
        let eng = SweepEngine::new(pipelines.clone())
            .with_threads_exact(1)
            .with_cache(true)
            .with_incremental(incremental);
        let time = |eng: &SweepEngine| {
            let t0 = Instant::now();
            let mut out = eng.run(&base, &single_op);
            out.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            out
        };
        let cold = time(&eng);
        (cold, time(&eng))
    };

    let (off_cold, incr_off) = run_single(false);
    let (on_cold, incr_on) = run_single(true);
    for (name, out) in
        [("off/warm", &incr_off), ("on/cold", &on_cold), ("on/warm", &incr_on)]
    {
        assert_eq!(
            fingerprint(&off_cold),
            fingerprint(out),
            "incremental re-prediction must be bitwise identical to the full walk ({name})"
        );
    }
    let incremental_speedup = incr_off.wall_ms / incr_on.wall_ms;
    let incr = incr_on.incremental.expect("incremental summary present");

    println!("\nsingle-op matrix: {} scenarios (steady-state runs)", single_op.len());
    println!(
        "{:>28} {:>10.1} {:>8.2}x",
        "full re-walk per scenario", incr_off.wall_ms, 1.0
    );
    println!(
        "{:>28} {:>10.1} {:>8.2}x",
        "incremental re-prediction",
        incr_on.wall_ms,
        incremental_speedup
    );
    println!(
        "  cold runs: full {:.1} ms, incremental {:.1} ms ({:.2}x)",
        off_cold.wall_ms,
        on_cold.wall_ms,
        off_cold.wall_ms / on_cold.wall_ms
    );
    println!(
        "  reused {} nodes, recomputed {}, spliced {}/{} scenarios, {} full fallbacks",
        incr.reused_nodes, incr.recomputed_nodes, incr.spliced, incr.scenarios, incr.full_fallbacks
    );
    assert!(
        incremental_speedup >= 2.0,
        "incremental path must be at least 2x over the memoized full walk, got {incremental_speedup:.2}x"
    );

    // ---- Part 2b: batched vs scalar kernel-model inference.
    let registry = pipelines[0].predictor().registry();
    let specs: Vec<KernelSpec> = (0..512u64)
        .map(|i| KernelSpec::Gemm {
            m: 32 + (i % 29) * 31,
            n: 32 + (i % 23) * 37,
            k: 32 + (i % 17) * 41,
            batch: 1 + i % 3,
        })
        .collect();
    // Warm both paths first: the batched side lazily builds each model's
    // inference plan on first use, and that one-time cost must not land in
    // the timed region.
    for k in &specs {
        std::hint::black_box(registry.predict_with_confidence(k).0);
    }
    std::hint::black_box(registry.predict_batch_with_confidence(&specs));
    // Interleave the reps and keep each side's best rep: on a shared box a
    // scheduling hiccup lands on one rep, not on one whole side, so min-of
    // reps compares the two paths' actual cost rather than the noise.
    const REPS: usize = 20;
    let mut scalar_bits: Vec<u64> = Vec::new();
    let mut batch_bits: Vec<u64> = Vec::new();
    let mut scalar_ms = f64::INFINITY;
    let mut batched_ms = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        scalar_bits =
            specs.iter().map(|k| registry.predict_with_confidence(k).0.to_bits()).collect();
        scalar_ms = scalar_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        batch_bits = registry
            .predict_batch_with_confidence(&specs)
            .into_iter()
            .map(|(t, _)| t.to_bits())
            .collect();
        batched_ms = batched_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    assert_eq!(scalar_bits, batch_bits, "batched inference must match scalar bit for bit");
    let batched_speedup = scalar_ms / batched_ms;
    println!(
        "\nbatched MLP inference over {} GEMM specs: scalar {scalar_ms:.2} ms, batched \
         {batched_ms:.2} ms ({batched_speedup:.2}x), bitwise identical",
        specs.len()
    );

    // ---- Part 2c: observability overhead.
    //
    // The recorder's enabled-path budget: the full scenario matrix on a
    // warm sequential cached engine, spans recording (no sink — sinks only
    // pay at flush) vs the recorder disabled. Interleaved min-of-reps like
    // Part 2b, so scheduler noise lands on reps, not sides. The CI gate
    // fails the build when the overhead exceeds a few percent. (The fully
    // spliced single-op matrix would be a denominator of a few µs per
    // scenario — a span-cost microbench, not a sweep; the matrix here does
    // one real memoized walk per scenario, which is what the recorder's
    // budget is relative to in every real sweep.)
    let obs_engine = SweepEngine::new(pipelines.clone())
        .with_threads_exact(1)
        .with_cache(true);
    // Warm: memo cache, prepared-graph store, baselines.
    let warm = obs_engine.run(&base, &scenarios);
    let reference = fingerprint(&warm);
    let mut off_ms = f64::INFINITY;
    let mut on_ms = f64::INFINITY;
    for _ in 0..REPS {
        dlperf_obs::disable();
        let t0 = Instant::now();
        let out = obs_engine.run(&base, &scenarios);
        off_ms = off_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(reference, fingerprint(&out));

        dlperf_obs::enable();
        let t0 = Instant::now();
        let out = obs_engine.run(&base, &scenarios);
        on_ms = on_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            reference,
            fingerprint(&out),
            "recorder must not change prediction bits"
        );
        dlperf_obs::disable();
        dlperf_obs::flush(); // drain the span buffer between reps
    }
    let obs_overhead_pct = (on_ms / off_ms - 1.0) * 100.0;
    println!(
        "\nrecorder overhead on the steady-state sweep: off {off_ms:.2} ms, on {on_ms:.2} ms \
         ({obs_overhead_pct:+.2}%), bitwise identical"
    );

    // ---- Part 2d: α–β collective-model evaluation throughput.
    //
    // Every topology-axis sweep cell prices three collectives through
    // `CommModel`; this measures how many such closed-form evaluations a
    // second the model sustains across the full catalog. Echoed by the CI
    // gate as context, never gated — the α–β forms are arithmetic, and a
    // wall-clock floor on shared runners would only ever fire on noise.
    let comm_models: Vec<CommModel> = [2usize, 4, 8]
        .iter()
        .flat_map(|&w| Topology::catalog(w).into_iter().map(CommModel::new))
        .collect();
    let comm_specs: Vec<CollectiveSpec> = (0..256u64)
        .map(|i| CollectiveSpec {
            kind: match i % 3 {
                0 => CollectiveKind::AllReduce,
                1 => CollectiveKind::AllToAll,
                _ => CollectiveKind::AllGather,
            },
            bytes_per_rank: 1 << (10 + i % 17),
            world: 0, // patched per model below
        })
        .collect();
    let mut comms_ms = f64::INFINITY;
    let mut comm_evals = 0usize;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let mut acc = 0.0f64;
        let mut n = 0usize;
        for model in &comm_models {
            let world = model.topology().world() as u32;
            for s in &comm_specs {
                acc += model.collective_time(&CollectiveSpec { world, ..*s });
                n += 1;
            }
        }
        std::hint::black_box(acc);
        comm_evals = n;
        comms_ms = comms_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    let comms_evals_per_sec = comm_evals as f64 / (comms_ms / 1e3);
    println!(
        "\ncollective model: {} α–β evaluations over {} catalog topologies in {comms_ms:.2} ms \
         ({:.2}M evals/s)",
        comm_evals,
        comm_models.len(),
        comms_evals_per_sec / 1e6
    );

    let mut doc: BTreeMap<String, String> = BTreeMap::new();
    doc.insert("scenarios".into(), scenarios.len().to_string());
    doc.insert("sweep_threads".into(), effective_threads.to_string());
    doc.insert("effective_threads".into(), effective_threads.to_string());
    doc.insert("host_threads".into(), host_threads.to_string());
    doc.insert("seq_uncached_ms".into(), format!("{:.3}", seq_uncached.wall_ms));
    doc.insert("seq_cached_ms".into(), format!("{:.3}", seq_cached.wall_ms));
    doc.insert("par_cached_ms".into(), format!("{:.3}", par_cached.wall_ms));
    doc.insert("memo_speedup".into(), format!("{memo_speedup:.3}"));
    doc.insert("speedup".into(), format!("{speedup:.3}"));
    doc.insert("cache_hits".into(), stats.hits.to_string());
    doc.insert("cache_misses".into(), stats.misses.to_string());
    doc.insert("cache_hit_rate".into(), format!("{:.4}", stats.hit_rate()));
    doc.insert("bitwise_identical".into(), "true".into());
    doc.insert("single_op_scenarios".into(), single_op.len().to_string());
    doc.insert("incr_off_cold_ms".into(), format!("{:.3}", off_cold.wall_ms));
    doc.insert("incr_on_cold_ms".into(), format!("{:.3}", on_cold.wall_ms));
    doc.insert("incr_off_ms".into(), format!("{:.3}", incr_off.wall_ms));
    doc.insert("incr_on_ms".into(), format!("{:.3}", incr_on.wall_ms));
    doc.insert("incremental_speedup".into(), format!("{incremental_speedup:.3}"));
    doc.insert("incremental_spliced".into(), incr.spliced.to_string());
    doc.insert("incremental_reused_nodes".into(), incr.reused_nodes.to_string());
    doc.insert("incremental_recomputed_nodes".into(), incr.recomputed_nodes.to_string());
    doc.insert("batched_speedup".into(), format!("{batched_speedup:.3}"));
    doc.insert("obs_off_ms".into(), format!("{off_ms:.3}"));
    doc.insert("obs_on_ms".into(), format!("{on_ms:.3}"));
    doc.insert("obs_overhead_pct".into(), format!("{obs_overhead_pct:.3}"));
    doc.insert("comms_evals".into(), comm_evals.to_string());
    doc.insert("comms_eval_ms".into(), format!("{comms_ms:.3}"));
    doc.insert("comms_evals_per_sec".into(), format!("{comms_evals_per_sec:.0}"));

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_sweep.json");
    std::fs::write(&path, serde_json::to_string(&doc).expect("serializes"))
        .expect("write BENCH_sweep.json");
    println!("\nwrote {}", path.canonicalize().unwrap_or(path).display());
}
