//! **Sweep engine** — throughput of the parallel what-if sweep, with the
//! memo cache's contribution broken out, emitting `BENCH_sweep.json`.
//!
//! Three runs over the same scenario matrix, all bitwise identical by the
//! engine's determinism contract (asserted here, not assumed):
//!
//! * `seq_uncached` — one thread, memo cache off: the naive baseline.
//! * `seq_cached` — one thread, cold memo cache: memoization alone.
//! * `par_cached` — N threads, cold memo cache: the engine as shipped.
//!
//! The headline `speedup` is `seq_uncached / par_cached`. On a multi-core
//! host it compounds thread-level parallelism with memoization; on a
//! single-core host it is memoization alone (the JSON records
//! `host_threads` so readers can attribute it).

use std::collections::BTreeMap;
use std::time::Instant;

use dlperf_bench::header;
use dlperf_core::pipeline::Pipeline;
use dlperf_core::sweep::{GraphMutation, ScenarioMatrix, SweepEngine, SweepOutcome};
use dlperf_gpusim::DeviceSpec;
use dlperf_kernels::ModelRegistry;
use dlperf_models::DlrmConfig;

fn fingerprint(o: &SweepOutcome) -> Vec<Option<u64>> {
    o.expect_complete()
        .iter()
        .map(|r| r.prediction.as_ref().map(|p| p.e2e_us.to_bits()))
        .collect()
}

fn main() {
    header("Sweep engine: parallel what-if matrix with memoized kernel models");
    let base = DlrmConfig {
        rows_per_table: vec![200_000; 8],
        batched_embedding: false,
        ..DlrmConfig::default_config(512)
    }
    .build();

    let effort = dlperf_bench::effort();
    let pipelines: Vec<Pipeline> = DeviceSpec::paper_devices()
        .iter()
        .map(|d| {
            let registry = ModelRegistry::calibrate(d, effort, 71);
            Pipeline::analyze_with_registry(d, std::slice::from_ref(&base), registry, 10, 71)
        })
        .collect();

    let scenarios = ScenarioMatrix::new()
        .device("V100", 0)
        .device("TITANXp", 1)
        .device("P100", 2)
        .batches(&[128, 256, 512, 1024, 2048, 4096])
        .variant("base", vec![])
        .variant("fused", vec![GraphMutation::FuseEmbeddingBags])
        .variant("hoisted", vec![GraphMutation::HoistAll])
        .build();
    println!("{} scenarios, {} pipelines\n", scenarios.len(), 3);

    let host_threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let sweep_threads = host_threads.max(4);

    let run = |threads: usize, cache: bool| -> SweepOutcome {
        let eng = SweepEngine::new(pipelines.clone()).with_threads(threads).with_cache(cache);
        let t0 = Instant::now();
        let mut out = eng.run(&base, &scenarios);
        out.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        out
    };

    let seq_uncached = run(1, false);
    let seq_cached = run(1, true);
    let par_cached = run(sweep_threads, true);

    assert_eq!(
        fingerprint(&seq_uncached),
        fingerprint(&par_cached),
        "parallel+cached sweep must be bitwise identical to sequential uncached"
    );
    assert_eq!(fingerprint(&seq_uncached), fingerprint(&seq_cached));

    let stats = par_cached.cache.expect("cache enabled");
    let memo_speedup = seq_uncached.wall_ms / seq_cached.wall_ms;
    let speedup = seq_uncached.wall_ms / par_cached.wall_ms;

    println!("{:>28} {:>10} {:>9}", "run", "wall/ms", "speedup");
    println!("{:>28} {:>10.1} {:>8.2}x", "sequential, no cache", seq_uncached.wall_ms, 1.0);
    println!("{:>28} {:>10.1} {:>8.2}x", "sequential, memo cache", seq_cached.wall_ms, memo_speedup);
    println!(
        "{:>28} {:>10.1} {:>8.2}x",
        format!("{} threads, memo cache", sweep_threads),
        par_cached.wall_ms,
        speedup
    );
    println!("\ncache: {stats}");
    println!("host threads: {host_threads}");

    let mut doc: BTreeMap<String, String> = BTreeMap::new();
    doc.insert("scenarios".into(), scenarios.len().to_string());
    doc.insert("sweep_threads".into(), sweep_threads.to_string());
    doc.insert("host_threads".into(), host_threads.to_string());
    doc.insert("seq_uncached_ms".into(), format!("{:.3}", seq_uncached.wall_ms));
    doc.insert("seq_cached_ms".into(), format!("{:.3}", seq_cached.wall_ms));
    doc.insert("par_cached_ms".into(), format!("{:.3}", par_cached.wall_ms));
    doc.insert("memo_speedup".into(), format!("{memo_speedup:.3}"));
    doc.insert("speedup".into(), format!("{speedup:.3}"));
    doc.insert("cache_hits".into(), stats.hits.to_string());
    doc.insert("cache_misses".into(), stats.misses.to_string());
    doc.insert("cache_hit_rate".into(), format!("{:.4}", stats.hit_rate()));
    doc.insert("bitwise_identical".into(), "true".into());

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_sweep.json");
    std::fs::write(&path, serde_json::to_string(&doc).expect("serializes"))
        .expect("write BENCH_sweep.json");
    println!("\nwrote {}", path.canonicalize().unwrap_or(path).display());
}
