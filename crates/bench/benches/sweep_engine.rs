//! **Sweep engine** — throughput of the parallel what-if sweep, with the
//! memo cache's and the incremental predictor's contributions broken out,
//! emitting `BENCH_sweep.json`.
//!
//! Part 1 (the PR-3 reference triplet, incremental path off so the numbers
//! stay comparable across baselines):
//!
//! * `seq_uncached` — one thread, memo cache off: the naive baseline.
//! * `seq_cached` — one thread, cold memo cache: memoization alone.
//! * `par_cached` — exactly 4 threads, cold memo cache: the engine as
//!   shipped. Pinned (not capped at the host) so `sweep_threads` — the
//!   gate's like-for-like guard key — reads 4 on every host and the
//!   committed baseline stays comparable across runners.
//!
//! The headline `speedup` is `seq_uncached / par_cached`. Every ratio here
//! goes through `dlperf_bench::interleave_ms`: per-round side-by-side
//! timing with medians for ratios and bests for costs, because one-shot
//! timing is how a negative recorder overhead once shipped.
//!
//! Part 1b: the thread-scaling curve — the full matrix at exactly 1/2/4/8
//! workers emitting `speedup_t{N}` for every N and
//! `parallel_efficiency_t{N}` (= speedup/N) only for N the host can run
//! without oversubscribing; the CI gate floors the efficiencies.
//!
//! Part 2 (additions since), all runs bitwise identical by assertion:
//!
//! * `incremental_speedup` — a single-op-mutation scenario matrix priced
//!   sequentially with the incremental predictor off vs on, in steady
//!   state (interleaved warm rounds of the same engines, caches and
//!   prepared graphs warm): dirty-frontier re-prediction against
//!   per-device baselines must beat re-walking every graph by ≥ 2×.
//! * `batched_speedup` — per-kernel scalar MLP inference vs one batched
//!   forward pass per family over the same spec list.
//! * `obs_overhead_pct` — the steady-state sweep with the `dlperf-obs`
//!   recorder enabled (spans buffered, no sink) vs disabled; the CI gate
//!   caps this at a few percent.

use std::collections::BTreeMap;
use std::time::Instant;

use dlperf_bench::{header, interleave_ms};
use dlperf_core::pipeline::Pipeline;
use dlperf_core::search::{GraphMoves, NoExtra, OptimizationSearch, SearchConfig};
use dlperf_core::sweep::{GraphMutation, Scenario, ScenarioMatrix, SweepEngine, SweepOutcome};
use dlperf_distrib::{CommModel, Topology};
use dlperf_gpusim::{CollectiveKind, CollectiveSpec, DeviceSpec, KernelSpec};
use dlperf_graph::OpKind;
use dlperf_kernels::ModelRegistry;
use dlperf_models::DlrmConfig;

fn fingerprint(o: &SweepOutcome) -> Vec<Option<u64>> {
    o.expect_complete()
        .iter()
        .map(|r| r.prediction.as_ref().map(|p| p.e2e_us.to_bits()))
        .collect()
}

/// Worker count of the headline parallel run and of the committed
/// baseline's `sweep_threads` guard key.
const SWEEP_THREADS: usize = 4;
/// The thread-scaling curve's worker counts.
const THREAD_CURVE: [usize; 4] = [1, 2, 4, 8];

fn main() {
    header("Sweep engine: parallel what-if matrix with memoized kernel models");
    let base = DlrmConfig {
        rows_per_table: vec![200_000; 8],
        batched_embedding: false,
        ..DlrmConfig::default_config(512)
    }
    .build();

    let effort = dlperf_bench::effort();
    let pipelines: Vec<Pipeline> = DeviceSpec::paper_devices()
        .iter()
        .map(|d| {
            let registry = ModelRegistry::calibrate(d, effort, 71);
            Pipeline::analyze_with_registry(d, std::slice::from_ref(&base), registry, 10, 71)
        })
        .collect();

    let scenarios = ScenarioMatrix::new()
        .device("V100", 0)
        .device("TITANXp", 1)
        .device("P100", 2)
        .batches(&[128, 256, 512, 1024, 2048, 4096])
        .variant("base", vec![])
        .variant("fused", vec![GraphMutation::FuseEmbeddingBags])
        .variant("hoisted", vec![GraphMutation::HoistAll])
        .build();
    println!("{} scenarios, {} pipelines\n", scenarios.len(), 3);

    let host_threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // The reference triplet runs with the incremental path off so
    // `speedup` / `memo_speedup` measure the same machinery as earlier
    // baselines of this file. Worker count is pinned exactly (see the
    // module docs) so `sweep_threads` matches across every host that
    // regenerates the baseline. Each call builds a fresh engine: the
    // cached sides measure memoization from cold, not a warm cache.
    let run = |threads: usize, cache: bool| -> SweepOutcome {
        SweepEngine::new(pipelines.clone())
            .with_threads_exact(threads)
            .with_cache(cache)
            .with_incremental(false)
            .run(&base, &scenarios)
    };

    const TRIPLET_REPS: usize = 7;
    let (mut fp_uncached, mut fp_cached, mut fp_par) = (Vec::new(), Vec::new(), Vec::new());
    let mut par_cache_stats = None;
    let mut side_uncached = || fp_uncached = fingerprint(&run(1, false));
    let mut side_cached = || fp_cached = fingerprint(&run(1, true));
    let mut side_par = || {
        let out = run(SWEEP_THREADS, true);
        fp_par = fingerprint(&out);
        par_cache_stats = out.cache;
    };
    let triplet = interleave_ms(
        TRIPLET_REPS,
        &mut [&mut side_uncached, &mut side_cached, &mut side_par],
    );
    let (seq_uncached_ms, seq_cached_ms, par_cached_ms) =
        (triplet[0].median_ms, triplet[1].median_ms, triplet[2].median_ms);
    let effective_threads = SWEEP_THREADS;

    assert_eq!(
        fp_uncached, fp_par,
        "parallel+cached sweep must be bitwise identical to sequential uncached"
    );
    assert_eq!(fp_uncached, fp_cached);

    let stats = par_cache_stats.expect("cache enabled");
    let memo_speedup = seq_uncached_ms / seq_cached_ms;
    let speedup = seq_uncached_ms / par_cached_ms;

    println!("median of {TRIPLET_REPS} interleaved rounds:");
    println!("{:>28} {:>10} {:>9}", "run", "wall/ms", "speedup");
    println!("{:>28} {:>10.1} {:>8.2}x", "sequential, no cache", seq_uncached_ms, 1.0);
    println!("{:>28} {:>10.1} {:>8.2}x", "sequential, memo cache", seq_cached_ms, memo_speedup);
    println!(
        "{:>28} {:>10.1} {:>8.2}x",
        format!("{effective_threads} threads, memo cache"),
        par_cached_ms,
        speedup
    );
    println!("\ncache: {stats}");
    println!("host threads: {host_threads} (pinned sweep workers: {effective_threads})");

    // ---- Part 1b: thread-scaling curve.
    //
    // The full matrix at exactly 1/2/4/8 workers, cold caches each round,
    // all sides interleaved. `speedup_t{N}` (vs the 1-worker side) is
    // recorded for every N; `parallel_efficiency_t{N}` = speedup/N only
    // for N the host can actually run in parallel — efficiency measured on
    // oversubscribed workers is scheduler behaviour, not a property of the
    // engine, so smaller hosts omit the key and the CI floor gate skips it.
    const CURVE_REPS: usize = 5;
    let mut curve_fps: Vec<Vec<Option<u64>>> = vec![Vec::new(); THREAD_CURVE.len()];
    let run_ref = &run;
    let mut curve_sides: Vec<Box<dyn FnMut() + '_>> = curve_fps
        .iter_mut()
        .zip(THREAD_CURVE)
        .map(|(fp, n)| {
            Box::new(move || *fp = fingerprint(&run_ref(n, true))) as Box<dyn FnMut() + '_>
        })
        .collect();
    let mut side_refs: Vec<&mut dyn FnMut()> =
        curve_sides.iter_mut().map(|b| &mut **b as &mut dyn FnMut()).collect();
    let curve = interleave_ms(CURVE_REPS, &mut side_refs);
    drop(side_refs);
    drop(curve_sides);
    for (n, fp) in THREAD_CURVE.iter().zip(&curve_fps) {
        assert_eq!(
            &fp_uncached, fp,
            "thread curve at {n} workers must be bitwise identical to the reference"
        );
    }

    println!("\nthread-scaling curve (median of {CURVE_REPS} interleaved rounds):");
    println!("{:>8} {:>10} {:>9} {:>11}", "threads", "wall/ms", "speedup", "efficiency");
    let mut curve_keys: Vec<(String, String)> = Vec::new();
    for (i, &n) in THREAD_CURVE.iter().enumerate() {
        let ms = curve[i].median_ms;
        let sp = curve[0].median_ms / ms;
        curve_keys.push((format!("t{n}_ms"), format!("{ms:.3}")));
        curve_keys.push((format!("speedup_t{n}"), format!("{sp:.3}")));
        if n <= host_threads {
            let eff = sp / n as f64;
            curve_keys.push((format!("parallel_efficiency_t{n}"), format!("{eff:.4}")));
            println!("{n:>8} {ms:>10.1} {sp:>8.2}x {eff:>11.2}");
        } else {
            println!("{n:>8} {ms:>10.1} {sp:>8.2}x {:>11}", "(oversub)");
        }
    }

    // ---- Part 2a: incremental re-prediction on a single-op-mutation matrix.
    //
    // The canonical interactive what-if: many scenarios, each one op away
    // from the shared baseline, priced on every device. With the
    // incremental path on, each device walks the base graph once and every
    // scenario recomputes only its dirty frontier.
    let n = base.node_count();
    let mut single_op: Vec<Scenario> = Vec::new();
    for (d, name) in [(0usize, "V100"), (1, "TITANXp"), (2, "P100")] {
        single_op.push(Scenario::new(format!("{name}/base"), d));
        for i in 0..16 {
            let pos = 1 + i * (n - 2) / 16;
            single_op.push(
                Scenario::new(format!("{name}/swap{pos}"), d)
                    .with(GraphMutation::ReplaceOp { node: pos, op: OpKind::Sigmoid }),
            );
        }
        for i in 0..4 {
            let pos = 2 + i * (n - 3) / 4;
            single_op.push(
                Scenario::new(format!("{name}/hoist{pos}"), d)
                    .with(GraphMutation::HoistNode(pos)),
            );
        }
    }

    // Each engine pays its one-time costs on a cold run (memo-cache fill,
    // prepared-graph store, baseline checkpoints); the steady state an
    // interactive what-if session lives in is then measured as interleaved
    // warm rounds, medians per side. Every run must be bitwise identical;
    // the headline speedup is the steady-state ratio.
    const STEADY_REPS: usize = 20;
    let engine_single = |incremental: bool| {
        SweepEngine::new(pipelines.clone())
            .with_threads_exact(1)
            .with_cache(true)
            .with_incremental(incremental)
    };
    let (eng_off, eng_on) = (engine_single(false), engine_single(true));
    let cold = |eng: &SweepEngine| {
        let t0 = Instant::now();
        let mut out = eng.run(&base, &single_op);
        out.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        out
    };
    let off_cold = cold(&eng_off);
    let on_cold = cold(&eng_on);
    let (mut incr_off, mut incr_on) = (None, None);
    let mut off_side = || incr_off = Some(eng_off.run(&base, &single_op));
    let mut on_side = || incr_on = Some(eng_on.run(&base, &single_op));
    let steady = interleave_ms(STEADY_REPS, &mut [&mut off_side, &mut on_side]);
    let (incr_off_ms, incr_on_ms) = (steady[0].median_ms, steady[1].median_ms);
    let (incr_off, incr_on) = (incr_off.expect("ran"), incr_on.expect("ran"));
    for (name, out) in
        [("off/warm", &incr_off), ("on/cold", &on_cold), ("on/warm", &incr_on)]
    {
        assert_eq!(
            fingerprint(&off_cold),
            fingerprint(out),
            "incremental re-prediction must be bitwise identical to the full walk ({name})"
        );
    }
    let incremental_speedup = incr_off_ms / incr_on_ms;
    let incr = incr_on.incremental.expect("incremental summary present");

    println!(
        "\nsingle-op matrix: {} scenarios (median of {STEADY_REPS} steady-state rounds)",
        single_op.len()
    );
    println!(
        "{:>28} {:>10.1} {:>8.2}x",
        "full re-walk per scenario", incr_off_ms, 1.0
    );
    println!(
        "{:>28} {:>10.1} {:>8.2}x",
        "incremental re-prediction",
        incr_on_ms,
        incremental_speedup
    );
    println!(
        "  cold runs: full {:.1} ms, incremental {:.1} ms ({:.2}x)",
        off_cold.wall_ms,
        on_cold.wall_ms,
        off_cold.wall_ms / on_cold.wall_ms
    );
    println!(
        "  reused {} nodes, recomputed {}, spliced {}/{} scenarios, {} full fallbacks",
        incr.reused_nodes, incr.recomputed_nodes, incr.spliced, incr.scenarios, incr.full_fallbacks
    );
    assert!(
        incremental_speedup >= 2.0,
        "incremental path must be at least 2x over the memoized full walk, got {incremental_speedup:.2}x"
    );

    // ---- Part 2b: batched vs scalar kernel-model inference.
    let registry = pipelines[0].predictor().registry();
    let specs: Vec<KernelSpec> = (0..512u64)
        .map(|i| KernelSpec::Gemm {
            m: 32 + (i % 29) * 31,
            n: 32 + (i % 23) * 37,
            k: 32 + (i % 17) * 41,
            batch: 1 + i % 3,
        })
        .collect();
    // Warm both paths first: the batched side lazily builds each model's
    // inference plan on first use, and that one-time cost must not land in
    // the timed region.
    for k in &specs {
        std::hint::black_box(registry.predict_with_confidence(k).0);
    }
    std::hint::black_box(registry.predict_batch_with_confidence(&specs));
    // Interleaved best-of: each side's fastest round is its actual cost
    // with scheduler noise removed (this is the harness the rest of the
    // file reuses). This ratio is floor-gated at 1.15× in CI, so it uses
    // bests, the most stable statistic for a sub-millisecond microbench.
    const REPS: usize = 20;
    let mut scalar_bits: Vec<u64> = Vec::new();
    let mut batch_bits: Vec<u64> = Vec::new();
    let mut scalar_side = || {
        scalar_bits =
            specs.iter().map(|k| registry.predict_with_confidence(k).0.to_bits()).collect();
    };
    let mut batched_side = || {
        batch_bits = registry
            .predict_batch_with_confidence(&specs)
            .into_iter()
            .map(|(t, _)| t.to_bits())
            .collect();
    };
    let sides = interleave_ms(REPS, &mut [&mut scalar_side, &mut batched_side]);
    let (scalar_ms, batched_ms) = (sides[0].best_ms, sides[1].best_ms);
    assert_eq!(scalar_bits, batch_bits, "batched inference must match scalar bit for bit");
    let batched_speedup = scalar_ms / batched_ms;
    println!(
        "\nbatched MLP inference over {} GEMM specs: scalar {scalar_ms:.2} ms, batched \
         {batched_ms:.2} ms ({batched_speedup:.2}x), bitwise identical",
        specs.len()
    );

    // ---- Part 2c: observability overhead.
    //
    // The recorder's enabled-path budget: the full scenario matrix on a
    // warm sequential cached engine, spans recording (no sink — sinks only
    // pay at flush) vs the recorder disabled. Interleaved rounds like the
    // rest of the file, but the statistic is the *median* per side: this
    // is a near-zero difference between two ~equal costs, and best-of is
    // not robust there — whichever side's minimum got luckier wins, which
    // is how a physically impossible `obs_overhead_pct: -1.069` shipped in
    // an earlier baseline. The flush between rounds stays outside both
    // timed regions (sinks only pay at flush). (The fully spliced
    // single-op matrix would be a denominator of a few µs per scenario — a
    // span-cost microbench, not a sweep; the matrix here does one real
    // memoized walk per scenario, which is what the recorder's budget is
    // relative to in every real sweep.)
    let obs_engine = SweepEngine::new(pipelines.clone())
        .with_threads_exact(1)
        .with_cache(true);
    // Warm: memo cache, prepared-graph store, baselines.
    let warm = obs_engine.run(&base, &scenarios);
    let reference = fingerprint(&warm);
    let mut off_samples = Vec::with_capacity(REPS);
    let mut on_samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        dlperf_obs::disable();
        let t0 = Instant::now();
        let out = obs_engine.run(&base, &scenarios);
        off_samples.push(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(reference, fingerprint(&out));

        dlperf_obs::enable();
        let t0 = Instant::now();
        let out = obs_engine.run(&base, &scenarios);
        on_samples.push(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            reference,
            fingerprint(&out),
            "recorder must not change prediction bits"
        );
        dlperf_obs::disable();
        dlperf_obs::flush(); // drain the span buffer between rounds
    }
    let off_ms = dlperf_bench::median(off_samples);
    let on_ms = dlperf_bench::median(on_samples);
    let obs_overhead_pct = (on_ms / off_ms - 1.0) * 100.0;
    println!(
        "\nrecorder overhead on the steady-state sweep: off {off_ms:.2} ms, on {on_ms:.2} ms \
         ({obs_overhead_pct:+.2}%), bitwise identical"
    );

    // ---- Part 2d: α–β collective-model evaluation throughput.
    //
    // Every topology-axis sweep cell prices three collectives through
    // `CommModel`; this measures how many such closed-form evaluations a
    // second the model sustains across the full catalog. Echoed by the CI
    // gate as context, never gated — the α–β forms are arithmetic, and a
    // wall-clock floor on shared runners would only ever fire on noise.
    let comm_models: Vec<CommModel> = [2usize, 4, 8]
        .iter()
        .flat_map(|&w| Topology::catalog(w).into_iter().map(CommModel::new))
        .collect();
    let comm_specs: Vec<CollectiveSpec> = (0..256u64)
        .map(|i| CollectiveSpec {
            kind: match i % 3 {
                0 => CollectiveKind::AllReduce,
                1 => CollectiveKind::AllToAll,
                _ => CollectiveKind::AllGather,
            },
            bytes_per_rank: 1 << (10 + i % 17),
            world: 0, // patched per model below
        })
        .collect();
    let mut comms_ms = f64::INFINITY;
    let mut comm_evals = 0usize;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let mut acc = 0.0f64;
        let mut n = 0usize;
        for model in &comm_models {
            let world = model.topology().world() as u32;
            for s in &comm_specs {
                acc += model.collective_time(&CollectiveSpec { world, ..*s });
                n += 1;
            }
        }
        std::hint::black_box(acc);
        comm_evals = n;
        comms_ms = comms_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    let comms_evals_per_sec = comm_evals as f64 / (comms_ms / 1e3);
    println!(
        "\ncollective model: {} α–β evaluations over {} catalog topologies in {comms_ms:.2} ms \
         ({:.2}M evals/s)",
        comm_evals,
        comm_models.len(),
        comms_evals_per_sec / 1e6
    );

    // ---- Part 2e: arena-backed walk state in steady state.
    //
    // The scratch pool's proof of reuse, recorded where the gate log can
    // see it: an uncached sequential engine (cache off, so every scenario
    // actually walks through batched inference and the arena) run
    // repeatedly. After the warm-up run, further runs must serve every
    // buffer request from the arena without a single miss — `misses` flat
    // while `takes` climbs is the allocation-free steady state the
    // sweep/incremental hot path promises.
    let arena_engine = SweepEngine::new(pipelines.clone())
        .with_threads_exact(1)
        .with_cache(false);
    arena_engine.run(&base, &scenarios);
    let warm_arena = arena_engine.scratch_stats();
    arena_engine.run(&base, &scenarios);
    arena_engine.run(&base, &scenarios);
    let steady_arena = arena_engine.scratch_stats();
    assert!(
        steady_arena.takes > warm_arena.takes,
        "steady-state runs must go through the arena"
    );
    assert_eq!(
        steady_arena.misses, warm_arena.misses,
        "steady-state sweep iterations must not allocate arena buffers"
    );
    println!(
        "\narena steady state: {} takes, {} misses (flat after warm-up), high water {} f64s, \
         {} pooled buffers",
        steady_arena.takes, steady_arena.misses, steady_arena.high_water_f64s, steady_arena.pooled
    );

    // ---- Part 2f: the unified optimization search.
    //
    // The beam / branch-and-bound search over graph + device moves, with
    // the incremental predictor as its inner loop. Two keys for the gate:
    // `search_evals_per_sec` (context: how many candidates a second the
    // search prices) and `search_incremental_frac` (floored at 0.5 in CI:
    // the incremental path must carry the search, not fall back to full
    // walks). The parallel run must match the 1-thread reference bit for
    // bit — the same determinism contract the sweep triplet pins above.
    let search_fingerprint = |r: &dlperf_core::OptimizationReport| -> Vec<(String, u64)> {
        r.ranked.iter().map(|sc| (sc.description.clone(), sc.e2e_us.to_bits())).collect()
    };
    let run_search = |threads: usize| {
        OptimizationSearch::<NoExtra>::new(&pipelines)
            .with_config(SearchConfig { threads, ..SearchConfig::default() })
            .with_graph_moves(GraphMoves {
                batches: vec![256, 1024, 2048],
                ..GraphMoves::default()
            })
            .run(&base)
            .expect("search runs")
    };
    let reference_report = run_search(1);
    let mut search_report = None;
    let mut search_ms = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        let r = run_search(SWEEP_THREADS);
        search_ms = search_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        search_report = Some(r);
    }
    let search_report = search_report.expect("ran");
    assert_eq!(
        search_fingerprint(&reference_report),
        search_fingerprint(&search_report),
        "parallel search must be bitwise identical to the 1-thread reference"
    );
    let search_evals_per_sec = search_report.evals as f64 / (search_ms / 1e3);
    let search_incremental_frac = search_report.incremental_frac();
    println!(
        "\noptimization search: {} evals, {} prunes in {search_ms:.1} ms \
         ({search_evals_per_sec:.0} evals/s), incremental fraction {search_incremental_frac:.3}, \
         best: {}",
        search_report.evals,
        search_report.prunes,
        search_report.ranked.first().map(|sc| sc.description.as_str()).unwrap_or("none")
    );

    let mut doc: BTreeMap<String, String> = BTreeMap::new();
    doc.insert("scenarios".into(), scenarios.len().to_string());
    doc.insert("sweep_threads".into(), effective_threads.to_string());
    doc.insert("effective_threads".into(), effective_threads.to_string());
    doc.insert("host_threads".into(), host_threads.to_string());
    doc.insert("seq_uncached_ms".into(), format!("{seq_uncached_ms:.3}"));
    doc.insert("seq_cached_ms".into(), format!("{seq_cached_ms:.3}"));
    doc.insert("par_cached_ms".into(), format!("{par_cached_ms:.3}"));
    for (k, v) in curve_keys {
        doc.insert(k, v);
    }
    doc.insert("arena_takes".into(), steady_arena.takes.to_string());
    doc.insert("arena_misses".into(), steady_arena.misses.to_string());
    doc.insert("arena_high_water_f64s".into(), steady_arena.high_water_f64s.to_string());
    doc.insert("arena_pooled_buffers".into(), steady_arena.pooled.to_string());
    doc.insert("memo_speedup".into(), format!("{memo_speedup:.3}"));
    doc.insert("speedup".into(), format!("{speedup:.3}"));
    doc.insert("cache_hits".into(), stats.hits.to_string());
    doc.insert("cache_misses".into(), stats.misses.to_string());
    doc.insert("cache_hit_rate".into(), format!("{:.4}", stats.hit_rate()));
    doc.insert("bitwise_identical".into(), "true".into());
    doc.insert("single_op_scenarios".into(), single_op.len().to_string());
    doc.insert("incr_off_cold_ms".into(), format!("{:.3}", off_cold.wall_ms));
    doc.insert("incr_on_cold_ms".into(), format!("{:.3}", on_cold.wall_ms));
    doc.insert("incr_off_ms".into(), format!("{incr_off_ms:.3}"));
    doc.insert("incr_on_ms".into(), format!("{incr_on_ms:.3}"));
    doc.insert("incremental_speedup".into(), format!("{incremental_speedup:.3}"));
    doc.insert("incremental_spliced".into(), incr.spliced.to_string());
    doc.insert("incremental_reused_nodes".into(), incr.reused_nodes.to_string());
    doc.insert("incremental_recomputed_nodes".into(), incr.recomputed_nodes.to_string());
    doc.insert("batched_speedup".into(), format!("{batched_speedup:.3}"));
    doc.insert("obs_off_ms".into(), format!("{off_ms:.3}"));
    doc.insert("obs_on_ms".into(), format!("{on_ms:.3}"));
    doc.insert("obs_overhead_pct".into(), format!("{obs_overhead_pct:.3}"));
    doc.insert("comms_evals".into(), comm_evals.to_string());
    doc.insert("comms_eval_ms".into(), format!("{comms_ms:.3}"));
    doc.insert("comms_evals_per_sec".into(), format!("{comms_evals_per_sec:.0}"));
    doc.insert("search_evals".into(), search_report.evals.to_string());
    doc.insert("search_ms".into(), format!("{search_ms:.3}"));
    doc.insert("search_evals_per_sec".into(), format!("{search_evals_per_sec:.0}"));
    doc.insert(
        "search_incremental_frac".into(),
        format!("{search_incremental_frac:.4}"),
    );

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_sweep.json");
    std::fs::write(&path, serde_json::to_string(&doc).expect("serializes"))
        .expect("write BENCH_sweep.json");
    println!("\nwrote {}", path.canonicalize().unwrap_or(path).display());
}
