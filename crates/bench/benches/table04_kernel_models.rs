//! **Table IV** — execution-time prediction error (GMAE / mean / std) for
//! each dominating kernel, per GPU.
//!
//! Expected shape: every kernel family under ~10–12% GMAE; the plain
//! embedding-lookup model unstable on small tables but good on large ones
//! (`E > 100k`); the hit-rate-enhanced model stable across all sizes;
//! errors correlated across the three devices.

use dlperf_bench::{effort, header};
use dlperf_gpusim::{DeviceSpec, KernelFamily, KernelSpec};
use dlperf_kernels::heuristic::{EmbeddingModel, EmbeddingModelKind};
use dlperf_kernels::microbench::{self, Microbenchmark, Sample};
use dlperf_kernels::{ErrorStats, ModelRegistry};

fn eval_pairs(samples: &[Sample], predict: impl Fn(&KernelSpec) -> f64) -> ErrorStats {
    let preds: Vec<f64> = samples.iter().map(|s| predict(&s.kernel)).collect();
    let actual: Vec<f64> = samples.iter().map(|s| s.time_us).collect();
    ErrorStats::try_from_pairs(&preds, &actual).expect("evaluation samples are well-formed")
}

fn is_large(k: &KernelSpec) -> bool {
    matches!(
        k,
        KernelSpec::EmbeddingForward { e, .. } | KernelSpec::EmbeddingBackward { e, .. }
            if *e > 100_000
    )
}

fn main() {
    header("Table IV: kernel-model prediction error per dominating kernel, per GPU");
    let effort = effort();
    let n_eval = 300;

    println!(
        "{:10} {:12} | {:^24} | {:^24} | {:^24}",
        "approach", "kernel", "V100", "TITAN Xp", "P100"
    );
    println!(
        "{:10} {:12} | {:>7} {:>7} {:>7}  | {:>7} {:>7} {:>7}  | {:>7} {:>7} {:>7}",
        "", "", "GMAE", "mean", "std", "GMAE", "mean", "std", "GMAE", "mean", "std"
    );

    // Collect per-device assets first (calibration is the slow part).
    struct DeviceAssets {
        registry: ModelRegistry,
        plain_f: EmbeddingModel,
        plain_b: EmbeddingModel,
        enh_f: EmbeddingModel,
        el_f: Vec<Sample>,
        el_b: Vec<Sample>,
        concat: Vec<Sample>,
        memcpy: Vec<Sample>,
        gemm: Vec<Sample>,
        transpose: Vec<Sample>,
        tril_f: Vec<Sample>,
        tril_b: Vec<Sample>,
    }

    let assets: Vec<DeviceAssets> = DeviceSpec::paper_devices()
        .into_iter()
        .map(|dev| {
            eprintln!("calibrating {} ...", dev.name);
            let registry = ModelRegistry::calibrate(&dev, effort, 101);
            let mut mb = Microbenchmark::new(&dev, 999, 15);
            let mem = mb.measure(&microbench::memory_specs(n_eval, 5001));
            let (concat, memcpy): (Vec<Sample>, Vec<Sample>) = mem
                .into_iter()
                .filter(|s| {
                    matches!(s.kernel.family(), KernelFamily::Concat | KernelFamily::Memcpy)
                })
                .partition(|s| s.kernel.family() == KernelFamily::Concat);
            DeviceAssets {
                plain_f: EmbeddingModel::new(&dev, EmbeddingModelKind::Plain),
                plain_b: EmbeddingModel::new(&dev, EmbeddingModelKind::Plain),
                enh_f: EmbeddingModel::new(&dev, EmbeddingModelKind::Enhanced),
                el_f: mb.measure(&microbench::embedding_specs(n_eval, false, 5002)),
                el_b: mb.measure(&microbench::embedding_specs(n_eval, true, 5003)),
                concat,
                memcpy,
                gemm: mb.measure(&microbench::gemm_specs(n_eval, 5004)),
                transpose: mb.measure(&microbench::transpose_specs(n_eval, 5005)),
                tril_f: mb.measure(&microbench::tril_specs(n_eval, false, 5006)),
                tril_b: mb.measure(&microbench::tril_specs(n_eval, true, 5007)),
                registry,
            }
        })
        .collect();

    let print_row = |approach: &str, kernel: &str, per_dev: Vec<ErrorStats>| {
        print!("{approach:10} {kernel:12} |");
        for s in per_dev {
            print!(
                " {:>6.2}% {:>6.2}% {:>6.2}% |",
                s.gmae * 100.0,
                s.mean * 100.0,
                s.std * 100.0
            );
        }
        println!();
    };

    let large = |xs: &[Sample]| -> Vec<Sample> {
        xs.iter().filter(|s| is_large(&s.kernel)).cloned().collect()
    };

    // Heuristic rows.
    print_row("Heuristic", "EL-F", assets.iter().map(|a| eval_pairs(&a.el_f, |k| a.plain_f.predict(k))).collect());
    print_row("", "EL-FL", assets.iter().map(|a| eval_pairs(&large(&a.el_f), |k| a.plain_f.predict(k))).collect());
    print_row("", "EL-FH", assets.iter().map(|a| eval_pairs(&a.el_f, |k| a.enh_f.predict(k))).collect());
    print_row("", "EL-FHL", assets.iter().map(|a| eval_pairs(&large(&a.el_f), |k| a.enh_f.predict(k))).collect());
    print_row("", "EL-B", assets.iter().map(|a| eval_pairs(&a.el_b, |k| a.plain_b.predict(k))).collect());
    print_row("", "EL-BL", assets.iter().map(|a| eval_pairs(&large(&a.el_b), |k| a.plain_b.predict(k))).collect());
    print_row("", "EL-BH", assets.iter().map(|a| eval_pairs(&a.el_b, |k| a.registry.try_predict(k).unwrap())).collect());
    print_row("", "EL-BHL", assets.iter().map(|a| eval_pairs(&large(&a.el_b), |k| a.registry.try_predict(k).unwrap())).collect());
    print_row("", "concat", assets.iter().map(|a| eval_pairs(&a.concat, |k| a.registry.try_predict(k).unwrap())).collect());
    print_row("", "memcpy", assets.iter().map(|a| eval_pairs(&a.memcpy, |k| a.registry.try_predict(k).unwrap())).collect());
    // ML-based rows.
    print_row("ML-based", "GEMM", assets.iter().map(|a| eval_pairs(&a.gemm, |k| a.registry.try_predict(k).unwrap())).collect());
    print_row("", "transpose", assets.iter().map(|a| eval_pairs(&a.transpose, |k| a.registry.try_predict(k).unwrap())).collect());
    print_row("", "tril-F", assets.iter().map(|a| eval_pairs(&a.tril_f, |k| a.registry.try_predict(k).unwrap())).collect());
    print_row("", "tril-B", assets.iter().map(|a| eval_pairs(&a.tril_b, |k| a.registry.try_predict(k).unwrap())).collect());

    println!("\nEL rows: F/B forward/backward, H with hit-rate estimation, L restricted");
    println!("to tables with E > 100k. The enhanced model stabilizes small tables;");
    println!("the plain model is only reliable on large ones (paper's conclusion).");
}
