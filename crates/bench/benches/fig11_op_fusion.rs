//! **Figure 11** — the op-fusion co-design case study: separate
//! `embedding_bag` ops (left) fused into one batched embedding op (right),
//! with the speedup predicted from the mutated execution graph alone and
//! cross-checked against the simulated device.

use dlperf_bench::{header, measure_iters};
use dlperf_core::codesign::fusion_whatif;
use dlperf_core::pipeline::Pipeline;
use dlperf_gpusim::DeviceSpec;
use dlperf_graph::transform::fuse_embedding_bags;
use dlperf_models::DlrmConfig;
use dlperf_trace::engine::ExecutionEngine;

fn main() {
    header("Figure 11: separate embedding-bag ops -> one batched embedding op");
    let device = DeviceSpec::v100();
    println!(
        "{:>7} {:>7} | {:>12} {:>12} {:>9} | {:>12} {:>12} {:>9}",
        "tables", "batch", "pred sep/us", "pred fus/us", "pred spd", "meas sep/us", "meas fus/us", "meas spd"
    );

    let registry = dlperf_kernels::ModelRegistry::calibrate(&device, dlperf_bench::effort(), 41);
    for (tables, batch) in [(8usize, 512u64), (16, 512), (26, 1024), (32, 2048)] {
        let cfg = DlrmConfig {
            rows_per_table: vec![100_000; tables],
            ..DlrmConfig::default_config(batch)
        }
        .with_batched_embedding(false);
        let unfused = cfg.build();
        let pipeline = Pipeline::analyze_with_registry(
            &device,
            std::slice::from_ref(&unfused),
            registry.clone(),
            measure_iters().min(25),
            tables as u64,
        );
        let outcome = fusion_whatif(&pipeline, &unfused).expect("fusable");

        let mut fused = unfused.clone();
        fuse_embedding_bags(&mut fused).expect("fusable");
        let mut engine = ExecutionEngine::new(device.clone(), 41);
        engine.set_profiling(false);
        let m_before = engine.measure_e2e(&unfused, measure_iters().min(25)).expect("executes");
        let mut engine = ExecutionEngine::new(device.clone(), 41);
        engine.set_profiling(false);
        let m_after = engine.measure_e2e(&fused, measure_iters().min(25)).expect("executes");

        println!(
            "{:>7} {:>7} | {:>12.0} {:>12.0} {:>8.2}x | {:>12.0} {:>12.0} {:>8.2}x",
            tables,
            batch,
            outcome.before.e2e_us,
            outcome.after.e2e_us,
            outcome.speedup(),
            m_before,
            m_after,
            m_before / m_after
        );
    }
    println!("\nMore tables -> more per-op overheads removed -> larger fusion win,");
    println!("and the prediction tracks the simulated outcome without running anything.");
}
