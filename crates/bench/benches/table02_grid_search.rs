//! **Table II** — the MLP kernel-model hyperparameter search space, and a
//! grid search over it for the GEMM kernel model.
//!
//! The paper's full space is 5 × 4 × 2 × 7 = 280 configurations, taking
//! hours on a GPU; the default here searches a representative sub-grid and
//! reports the best configuration. Run with `DLPERF_GRID=paper` to sweep
//! all 280 configurations.

use dlperf_bench::header;
use dlperf_gpusim::DeviceSpec;
use dlperf_kernels::microbench::{gemm_specs, Microbenchmark};
use dlperf_kernels::mlbased::dataset_of;
use dlperf_nn::gridsearch::{grid_search, SearchSpace};
use dlperf_nn::optim::OptimizerKind;

fn main() {
    header("Table II: MLP performance-model search space (grid search over GEMM)");
    println!("{:24} range", "hyperparameter");
    println!("{:24} [3, 4, 5, 6, 7]", "num_layers");
    println!("{:24} [128, 256, 512, 1024]", "num_neurons_per_layer");
    println!("{:24} [Adam, SGD]", "optimizer");
    println!("{:24} [1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2]", "learning_rate");

    let space = match std::env::var("DLPERF_GRID").as_deref() {
        Ok("paper") => SearchSpace::paper(),
        // The default sub-grid keeps one representative value per axis
        // cheap enough for a single-core run; DLPERF_GRID=paper sweeps the
        // full 280-point Table II space.
        _ => SearchSpace {
            layers: vec![3, 5],
            widths: vec![64, 128],
            optimizers: vec![OptimizerKind::Adam, OptimizerKind::Sgd],
            learning_rates: vec![1e-3, 5e-3],
        },
    };
    let n = space.configurations().len();
    println!("\nsearching {n} configurations on the GEMM microbenchmark ...");

    let mut mb = Microbenchmark::new(&DeviceSpec::v100(), 2, 15);
    let samples = mb.measure(&gemm_specs(400, 77));
    let data = dataset_of(&samples);
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4);
    let result = grid_search(&data, &space, 60, threads, 9);

    println!("\n{:>7} {:>6} {:>6} {:>9} {:>10}", "layers", "width", "opt", "lr", "val MAPE");
    let mut trials = result.trials.clone();
    trials.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (hp, err) in trials.iter().take(12) {
        println!(
            "{:>7} {:>6} {:>6} {:>9.0e} {:>9.2}%",
            hp.num_layers,
            hp.width,
            hp.optimizer.to_string(),
            hp.learning_rate,
            err * 100.0
        );
    }
    println!(
        "\nwinner: {} layers x {} neurons, {} @ {:.0e} (val MAPE {:.2}%)",
        result.best.num_layers,
        result.best.width,
        result.best.optimizer,
        result.best.learning_rate,
        result.model.val_mape * 100.0
    );
}
