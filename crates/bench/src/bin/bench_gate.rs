//! CI bench-regression gate.
//!
//! Compares a freshly generated bench JSON against the committed baseline
//! and exits non-zero when a gated metric regressed beyond the tolerance:
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json> [tolerance]
//! ```
//!
//! Gated keys, three polarity classes:
//!
//! * `speedup` and `memo_speedup` — floored against the baseline, but
//!   only when the `sweep_threads` context matches between the two
//!   documents (a ratio measured at one worker count diffed against a
//!   baseline measured at another is a confound, and is skipped with a
//!   notice instead of compared).
//! * `obs_overhead_pct` — capped at an absolute budget: the recorder may
//!   not slow the steady-state sweep by more than 3%.
//! * `batched_speedup` and `parallel_efficiency_t{2,4,8}` — absolute
//!   floors independent of any baseline. Batched kernel-model inference
//!   must beat scalar by ≥ 1.15× on every run (0.889 once shipped
//!   unnoticed while this key was echoed-only), and the thread-scaling
//!   curve must retain a minimum parallel efficiency at each worker count
//!   the host can actually run (the bench only emits
//!   `parallel_efficiency_t{N}` for N ≤ host cores; missing keys are
//!   skipped, so small hosts still pass).
//!
//! A key missing from either document is skipped, so the gate keeps
//! working across baselines that predate a metric.
//!
//! `incremental_speedup` is recorded but not gated here: the bench itself
//! hard-asserts the incremental path is ≥2× and bitwise identical on
//! every run (that assertion, not this diff, is the regression
//! protection).

use std::process::ExitCode;

const GATED_KEYS: [&str; 2] = ["speedup", "memo_speedup"];
/// Run-configuration keys that must match before the baseline-relative
/// keys are compared at all.
const GUARD_KEYS: [&str; 1] = ["sweep_threads"];
const CEILINGS: [(&str, f64); 1] = [("obs_overhead_pct", 3.0)];
/// Absolute minimums a fresh run must clear regardless of baseline. The
/// efficiency floors are deliberately below the typical curve (a 4-core
/// runner usually lands t2 ≈ 0.6–0.9, t4 ≈ 0.4–0.7): they catch the
/// failure mode where added synchronization makes extra workers pure
/// overhead, not ordinary scheduler noise.
const FLOORS: [(&str, f64); 5] = [
    ("batched_speedup", 1.15),
    ("parallel_efficiency_t2", 0.35),
    ("parallel_efficiency_t4", 0.20),
    ("parallel_efficiency_t8", 0.10),
    // The optimization search's inner loop must be carried by the
    // incremental predictor, not full-walk fallbacks.
    ("search_incremental_frac", 0.5),
];
/// Run-configuration keys echoed (never gated) so the log records the
/// threading context the gated ratios were measured under, plus the
/// trace-ingestion throughput/footprint keys from `BENCH_ingest.json`
/// and the α–β collective-model evaluation throughput from
/// `BENCH_sweep.json` (echoed for the same reason: wall-clock and RSS
/// on shared runners are too noisy to floor — the invariants those
/// numbers ride on are asserted by tests, not this diff).
const CONTEXT_KEYS: [&str; 13] = [
    "search_evals_per_sec",
    "sweep_threads",
    "effective_threads",
    "host_threads",
    "speedup_t2",
    "speedup_t4",
    "speedup_t8",
    "ingest_events_per_sec",
    "ingest_peak_buffer_bytes",
    "ingest_peak_rss_kib",
    "ingest_wall_ms",
    "comms_evals_per_sec",
    "comms_eval_ms",
];
const DEFAULT_TOLERANCE: f64 = 0.10;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (Some(baseline_path), Some(fresh_path)) = (args.get(1), args.get(2)) else {
        eprintln!("usage: bench_gate <baseline.json> <fresh.json> [tolerance]");
        return ExitCode::from(2);
    };
    let tolerance: f64 = match args.get(3) {
        Some(t) => match t.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("bench_gate: tolerance `{t}` is not a number");
                return ExitCode::from(2);
            }
        },
        None => DEFAULT_TOLERANCE,
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(fresh)) = (read(baseline_path), read(fresh_path)) else {
        return ExitCode::from(2);
    };
    let regression =
        dlperf_bench::check_regression(&baseline, &fresh, &GATED_KEYS, tolerance, &GUARD_KEYS);
    let ceilings = dlperf_bench::check_ceilings(&fresh, &CEILINGS);
    let floors = dlperf_bench::check_floors(&fresh, &FLOORS);
    let context = dlperf_bench::context_report(&baseline, &fresh, &CONTEXT_KEYS);
    match (regression, ceilings, floors) {
        (Ok(report), Ok(ceiling_report), Ok(floor_report)) => {
            println!("bench gate passed ({:.0}% tolerance):", tolerance * 100.0);
            for line in report.into_iter().chain(ceiling_report).chain(floor_report) {
                println!("  {line}");
            }
            println!("context:");
            for line in &context {
                println!("  {line}");
            }
            ExitCode::SUCCESS
        }
        (regression, ceilings, floors) => {
            eprintln!("bench gate FAILED ({:.0}% tolerance):", tolerance * 100.0);
            for line in
                [regression, ceilings, floors].into_iter().flat_map(|r| match r {
                    Ok(lines) | Err(lines) => lines,
                })
            {
                eprintln!("  {line}");
            }
            eprintln!("context:");
            for line in &context {
                eprintln!("  {line}");
            }
            ExitCode::FAILURE
        }
    }
}
