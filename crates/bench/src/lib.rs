//! Shared machinery for the experiment harness.
//!
//! Every bench target regenerates one table or figure of the paper's
//! evaluation section, printing the same rows/series the paper reports.
//! Calibration effort defaults to `Full` (paper-scale sweeps); set
//! `DLPERF_EFFORT=quick` for a fast smoke run of the whole harness.
//!
//! The Fig. 9 evaluation is expensive (three devices × three workloads ×
//! four batch sizes, each with a full analysis track); its result rows are
//! cached as JSON under `target/dlperf-cache/` so that `table05_e2e_stats`
//! and the ablations reuse them.

use std::path::PathBuf;

use dlperf_core::baselines;
use dlperf_core::pipeline::Pipeline;
use dlperf_core::report::PredictionRow;
use dlperf_gpusim::DeviceSpec;
use dlperf_graph::Graph;
use dlperf_kernels::CalibrationEffort;
use dlperf_models::DlrmConfig;
use dlperf_trace::engine::ExecutionEngine;

/// Calibration effort from the `DLPERF_EFFORT` environment variable
/// (`quick` → Quick, anything else → Full).
pub fn effort() -> CalibrationEffort {
    match std::env::var("DLPERF_EFFORT").as_deref() {
        Ok("quick") | Ok("QUICK") => CalibrationEffort::Quick,
        _ => CalibrationEffort::Full,
    }
}

/// Iterations used when measuring ground truth (paper: 100-iteration trace
/// files; quick mode uses fewer).
pub fn measure_iters() -> usize {
    match effort() {
        CalibrationEffort::Quick => 15,
        CalibrationEffort::Full => 100,
    }
}

/// Measures (non-profiled) mean E2E and mean active time of a graph.
pub fn measure_graph(device: &DeviceSpec, graph: &Graph, seed: u64) -> (f64, f64) {
    let mut engine = ExecutionEngine::new(device.clone(), seed);
    engine.set_profiling(false);
    let runs = engine.run_iterations(graph, measure_iters()).expect("workload executes");
    let e2e = runs.iter().map(|r| r.e2e_us).sum::<f64>() / runs.len() as f64;
    let active = runs.iter().map(|r| r.active_us()).sum::<f64>() / runs.len() as f64;
    (e2e, active)
}

/// The batch sizes of the Fig. 7/8/9 evaluations.
pub const BATCH_SIZES: [u64; 4] = [256, 512, 1024, 2048];

/// Cache directory for expensive intermediate results.
pub fn cache_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/dlperf-cache");
    std::fs::create_dir_all(&dir).expect("can create cache dir");
    dir
}

/// Loads cached JSON if present, otherwise computes and stores it.
pub fn load_or_compute<T, F>(name: &str, compute: F) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
    F: FnOnce() -> T,
{
    let path = cache_dir().join(format!("{name}.json"));
    if let Ok(s) = std::fs::read_to_string(&path) {
        if let Ok(v) = serde_json::from_str(&s) {
            eprintln!("[cache] reusing {}", path.display());
            return v;
        }
    }
    let v = compute();
    std::fs::write(&path, serde_json::to_string(&v).expect("serializable")).expect("cache write");
    v
}

/// The full Fig. 9 evaluation: per (device × workload × batch) rows with
/// measured/predicted E2E and active times plus baselines.
pub fn e2e_evaluation() -> Vec<PredictionRow> {
    let effort = effort();
    let mut rows = Vec::new();
    for device in DeviceSpec::paper_devices() {
        eprintln!("== calibrating + evaluating on {} ==", device.name);
        let registry =
            dlperf_kernels::ModelRegistry::calibrate(&device, effort, 0x5151);
        for &batch in &BATCH_SIZES {
            let graphs: Vec<Graph> =
                DlrmConfig::paper_configs(batch).iter().map(|c| c.build()).collect();
            let pipeline = Pipeline::analyze_with_registry(
                &device,
                &graphs,
                registry.clone(),
                measure_iters(),
                batch,
            );
            for (wi, g) in graphs.iter().enumerate() {
                let (measured_e2e, measured_active) =
                    measure_graph(&device, g, batch ^ 0x51 ^ ((wi as u64 + 1) << 16));
                let individual = pipeline.predict_individual(g).expect("lowers");
                let shared = pipeline.predict(g).expect("lowers");
                let kernel_only =
                    baselines::kernel_only(g, pipeline.predictor().registry()).expect("lowers");
                rows.push(PredictionRow {
                    workload: g.name.clone(),
                    device: device.name.clone(),
                    batch,
                    measured_e2e_us: measured_e2e,
                    measured_active_us: measured_active,
                    pred_e2e_us: individual.e2e_us,
                    pred_shared_e2e_us: shared.e2e_us,
                    pred_active_us: individual.active_us,
                    kernel_only_us: kernel_only,
                });
            }
        }
    }
    rows
}

/// Cached variant of [`e2e_evaluation`], keyed by effort level.
pub fn e2e_evaluation_cached() -> Vec<PredictionRow> {
    let key = match effort() {
        CalibrationEffort::Quick => "fig09_rows_quick",
        CalibrationEffort::Full => "fig09_rows_full",
    };
    load_or_compute(key, e2e_evaluation)
}

/// Prints a horizontal rule with a title.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Per-side wall-clock statistics from [`interleave_ms`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SideTiming {
    /// Fastest round — the side's actual cost with scheduler noise removed.
    pub best_ms: f64,
    /// Median round — robust central tendency for ratio metrics, so one
    /// lucky round on either side cannot flip a comparison.
    pub median_ms: f64,
}

/// Interleaved measurement harness: runs every side once per round, for
/// `reps` rounds, and reports each side's best and median wall-clock.
///
/// Interleaving is the point — on a shared box a scheduling hiccup lands
/// on one *round*, not on one whole side, so comparing medians (ratios) or
/// bests (costs) across sides measures the paths' actual cost difference
/// rather than which side ran during the hiccup. This is the harness every
/// speedup/overhead number in the bench suite goes through; one-shot
/// timing is what produced physically impossible numbers like a negative
/// recorder overhead in earlier baselines.
pub fn interleave_ms(reps: usize, sides: &mut [&mut dyn FnMut()]) -> Vec<SideTiming> {
    assert!(reps > 0, "at least one round");
    let mut samples = vec![Vec::with_capacity(reps); sides.len()];
    for _ in 0..reps {
        for (side, times) in sides.iter_mut().zip(&mut samples) {
            let t0 = std::time::Instant::now();
            side();
            times.push(t0.elapsed().as_secs_f64() * 1e3);
        }
    }
    samples
        .into_iter()
        .map(|times| SideTiming { best_ms: best(&times), median_ms: median(times) })
        .collect()
}

/// Minimum of a non-empty sample set.
fn best(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Median of a non-empty sample set (mean of the middle pair when even).
pub fn median(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty(), "median of nothing");
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

/// Compares a freshly generated bench JSON against a committed baseline:
/// for every listed key present in **both** documents, the fresh value must
/// not fall more than `tolerance` (fractional, e.g. 0.10) below the
/// baseline. Keys absent from either side are skipped, so newly added
/// metrics do not fail against historical baselines, and retired metrics do
/// not block fresh runs. Values may be JSON numbers or stringified numbers
/// (the bench emitters write strings).
///
/// `guard_keys` makes the diff like-for-like: when any guard key (run
/// configuration such as `sweep_threads`) differs between the two
/// documents, every gated key is skipped with a notice instead of being
/// compared — a speedup measured at one worker count floored against a
/// baseline measured at another is a confound, not a regression. A guard
/// key absent from exactly one side also counts as a difference (the run
/// configuration cannot be confirmed equal); absent from both is no
/// information and the comparison proceeds.
///
/// Returns the per-key report lines on success, the failures otherwise.
///
/// # Errors
/// Returns the failure lines when any gated metric regressed beyond
/// `tolerance`, or when either document fails to parse.
pub fn check_regression(
    baseline_json: &str,
    fresh_json: &str,
    keys: &[&str],
    tolerance: f64,
    guard_keys: &[&str],
) -> Result<Vec<String>, Vec<String>> {
    let parse = |name: &str, doc: &str| {
        serde::value::parse(doc).map_err(|e| vec![format!("{name}: unparseable JSON: {e}")])
    };
    let baseline = parse("baseline", baseline_json)?;
    let fresh = parse("fresh", fresh_json)?;
    let text = |doc: &serde::Value, key: &str| -> Option<String> {
        let v = doc.get(key)?;
        v.as_str().map(str::to_string).or_else(|| v.as_f64().map(|n| format!("{n}")))
    };
    if let Some(guard) = guard_keys
        .iter()
        .find(|&&k| text(&baseline, k) != text(&fresh, k))
    {
        let show = |v: Option<String>| v.unwrap_or_else(|| "absent".into());
        let why = format!(
            "context `{guard}` changed: baseline {}, fresh {}",
            show(text(&baseline, guard)),
            show(text(&fresh, guard)),
        );
        return Ok(keys
            .iter()
            .map(|key| format!("{key}: gate skipped ({why})"))
            .collect());
    }
    let number = |doc: &serde::Value, key: &str| -> Option<f64> {
        let v = doc.get(key)?;
        v.as_f64().or_else(|| v.as_str()?.trim().parse().ok())
    };
    let mut report = Vec::new();
    let mut failures = Vec::new();
    for &key in keys {
        let (Some(base), Some(new)) = (number(&baseline, key), number(&fresh, key)) else {
            report.push(format!("{key}: skipped (missing on one side)"));
            continue;
        };
        let floor = base * (1.0 - tolerance);
        let line = format!(
            "{key}: baseline {base:.3}, fresh {new:.3}, floor {floor:.3} ({:+.1}%)",
            (new / base - 1.0) * 100.0
        );
        if new < floor {
            failures.push(format!("REGRESSION {line}"));
        } else {
            report.push(format!("ok {line}"));
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        failures.extend(report);
        Err(failures)
    }
}

/// Checks absolute ceilings on a fresh bench JSON: for every `(key, max)`
/// pair whose key is present, the fresh value must not exceed `max`. Keys
/// absent from the document are skipped (reported), so the gate keeps
/// working on bench files that predate a metric. Values may be JSON numbers
/// or stringified numbers, like [`check_regression`].
///
/// This is the overhead-budget side of the gate: ratios like `speedup` are
/// floored against a baseline, costs like the recorder's
/// `obs_overhead_pct` are capped against a fixed budget.
///
/// # Errors
/// Returns the failure lines when any metric exceeds its ceiling, or when
/// the document fails to parse.
pub fn check_ceilings(
    fresh_json: &str,
    ceilings: &[(&str, f64)],
) -> Result<Vec<String>, Vec<String>> {
    let fresh = serde::value::parse(fresh_json)
        .map_err(|e| vec![format!("fresh: unparseable JSON: {e}")])?;
    let number = |doc: &serde::Value, key: &str| -> Option<f64> {
        let v = doc.get(key)?;
        v.as_f64().or_else(|| v.as_str()?.trim().parse().ok())
    };
    let mut report = Vec::new();
    let mut failures = Vec::new();
    for &(key, max) in ceilings {
        let Some(value) = number(&fresh, key) else {
            report.push(format!("{key}: skipped (missing)"));
            continue;
        };
        let line = format!("{key}: {value:.3}, ceiling {max:.3}");
        if value > max {
            failures.push(format!("OVER BUDGET {line}"));
        } else {
            report.push(format!("ok {line}"));
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        failures.extend(report);
        Err(failures)
    }
}

/// Checks absolute floors on a fresh bench JSON: for every `(key, min)`
/// pair whose key is present, the fresh value must not fall below `min`.
/// Keys absent from the document are skipped (reported), so the gate keeps
/// working on hosts that cannot produce a metric — e.g.
/// `parallel_efficiency_t4` is only emitted when the host has ≥ 4 cores.
/// Values may be JSON numbers or stringified numbers, like
/// [`check_regression`].
///
/// This is the benefit-floor side of the gate, independent of any
/// baseline: ratios that justify a code path's existence (`batched_speedup`,
/// the per-thread parallel efficiencies) must clear an absolute bar on
/// every run, so the path can never silently regress below its scalar or
/// sequential alternative the way a baseline-relative diff would allow by
/// ratcheting downward.
///
/// # Errors
/// Returns the failure lines when any metric falls below its floor, or
/// when the document fails to parse.
pub fn check_floors(
    fresh_json: &str,
    floors: &[(&str, f64)],
) -> Result<Vec<String>, Vec<String>> {
    let fresh = serde::value::parse(fresh_json)
        .map_err(|e| vec![format!("fresh: unparseable JSON: {e}")])?;
    let number = |doc: &serde::Value, key: &str| -> Option<f64> {
        let v = doc.get(key)?;
        v.as_f64().or_else(|| v.as_str()?.trim().parse().ok())
    };
    let mut report = Vec::new();
    let mut failures = Vec::new();
    for &(key, min) in floors {
        let Some(value) = number(&fresh, key) else {
            report.push(format!("{key}: skipped (missing)"));
            continue;
        };
        let line = format!("{key}: {value:.3}, floor {min:.3}");
        if value < min {
            failures.push(format!("BELOW FLOOR {line}"));
        } else {
            report.push(format!("ok {line}"));
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        failures.extend(report);
        Err(failures)
    }
}

/// Reports non-gated context keys from both bench documents — run
/// configuration like `sweep_threads` that explains *why* the gated ratios
/// moved without ever failing the gate itself. A threading change between
/// baseline and fresh (e.g. a runner with different core counts) shows up
/// here as `baseline 1, fresh 4`, flagged `CHANGED` so the log reader sees
/// the confound next to the gated numbers.
///
/// Unparseable documents and missing keys degrade to report lines, never
/// errors: context must not be able to fail CI.
pub fn context_report(baseline_json: &str, fresh_json: &str, keys: &[&str]) -> Vec<String> {
    let baseline = serde::value::parse(baseline_json).ok();
    let fresh = serde::value::parse(fresh_json).ok();
    let text = |doc: &Option<serde::Value>, key: &str| -> Option<String> {
        let v = doc.as_ref()?.get(key)?;
        v.as_str().map(str::to_string).or_else(|| v.as_f64().map(|n| format!("{n}")))
    };
    keys.iter()
        .map(|&key| {
            match (text(&baseline, key), text(&fresh, key)) {
                (Some(b), Some(f)) if b == f => format!("{key}: {f}"),
                (Some(b), Some(f)) => format!("{key}: CHANGED baseline {b}, fresh {f}"),
                (None, Some(f)) => format!("{key}: fresh {f} (absent in baseline)"),
                (Some(b), None) => format!("{key}: baseline {b} (absent in fresh)"),
                (None, None) => format!("{key}: absent"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn regression_gate_flags_only_drops_beyond_tolerance() {
        let baseline = r#"{"speedup":"2.0","memo_speedup":"3.0","other":"x"}"#;
        let ok_fresh = r#"{"speedup":"1.9","memo_speedup":"9.9"}"#;
        let keys = ["speedup", "memo_speedup", "incremental_speedup"];
        let report =
            super::check_regression(baseline, ok_fresh, &keys, 0.10, &[]).expect("within");
        assert!(report.iter().any(|l| l.contains("incremental_speedup: skipped")));

        let bad_fresh = r#"{"speedup":"1.7","memo_speedup":"3.0"}"#;
        let failures =
            super::check_regression(baseline, bad_fresh, &keys, 0.10, &[]).unwrap_err();
        assert!(failures[0].contains("REGRESSION speedup"), "{failures:?}");

        assert!(super::check_regression("not json", ok_fresh, &keys, 0.1, &[]).is_err());
    }

    #[test]
    fn regression_gate_skips_when_context_guard_differs() {
        // A would-be regression (1.7 < 2.0 floor) measured under a different
        // thread count is a confound, not a failure: every gated key is
        // skipped with the guard named in the notice.
        let baseline = r#"{"speedup":"2.0","sweep_threads":"1"}"#;
        let fresh = r#"{"speedup":"1.7","sweep_threads":"4"}"#;
        let keys = ["speedup"];
        let guards = ["sweep_threads"];
        let report =
            super::check_regression(baseline, fresh, &keys, 0.10, &guards).expect("skipped");
        assert!(
            report[0].contains("gate skipped")
                && report[0].contains("sweep_threads")
                && report[0].contains("baseline 1, fresh 4"),
            "{report:?}"
        );

        // A guard key missing on one side cannot confirm like-for-like.
        let old = r#"{"speedup":"2.0"}"#;
        let report =
            super::check_regression(old, fresh, &keys, 0.10, &guards).expect("skipped");
        assert!(report[0].contains("baseline absent, fresh 4"), "{report:?}");

        // Matching guards still gate, and guards absent from both sides
        // carry no information, so the comparison proceeds (and fails).
        let same = r#"{"speedup":"1.7","sweep_threads":"1"}"#;
        let failures =
            super::check_regression(baseline, same, &keys, 0.10, &guards).unwrap_err();
        assert!(failures[0].contains("REGRESSION speedup"), "{failures:?}");
        assert!(super::check_regression(old, r#"{"speedup":"1.7"}"#, &keys, 0.10, &guards)
            .is_err());
    }

    #[test]
    fn floor_gate_requires_minimums_and_skips_missing_keys() {
        let floors = [("batched_speedup", 1.15), ("parallel_efficiency_t4", 0.25)];
        let ok = r#"{"batched_speedup":"1.31"}"#;
        let report = super::check_floors(ok, &floors).expect("above floor");
        assert!(report.iter().any(|l| l.contains("ok batched_speedup")));
        assert!(report.iter().any(|l| l.contains("parallel_efficiency_t4: skipped")));

        let under = r#"{"batched_speedup":"0.889"}"#;
        let failures = super::check_floors(under, &floors).unwrap_err();
        assert!(failures[0].contains("BELOW FLOOR batched_speedup"), "{failures:?}");

        assert!(super::check_floors("not json", &floors).is_err());
    }

    #[test]
    fn interleave_harness_reports_best_and_median_per_side() {
        let mut fast_calls = 0usize;
        let mut slow_calls = 0usize;
        let mut fast = || fast_calls += 1;
        let mut slow = || {
            slow_calls += 1;
            std::thread::sleep(std::time::Duration::from_millis(2));
        };
        let timings = super::interleave_ms(5, &mut [&mut fast, &mut slow]);
        assert_eq!((fast_calls, slow_calls), (5, 5));
        assert_eq!(timings.len(), 2);
        for t in &timings {
            assert!(t.best_ms <= t.median_ms, "{t:?}");
        }
        assert!(timings[1].median_ms > timings[0].median_ms, "{timings:?}");

        assert_eq!(super::median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(super::median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn ceiling_gate_caps_costs_and_skips_missing_keys() {
        let ceilings = [("obs_overhead_pct", 3.0), ("not_there", 1.0)];
        let ok = r#"{"obs_overhead_pct":"1.2"}"#;
        let report = super::check_ceilings(ok, &ceilings).expect("under budget");
        assert!(report.iter().any(|l| l.contains("ok obs_overhead_pct")));
        assert!(report.iter().any(|l| l.contains("not_there: skipped")));

        let over = r#"{"obs_overhead_pct":"4.7"}"#;
        let failures = super::check_ceilings(over, &ceilings).unwrap_err();
        assert!(failures[0].contains("OVER BUDGET obs_overhead_pct"), "{failures:?}");

        assert!(super::check_ceilings("not json", &ceilings).is_err());
    }

    #[test]
    fn context_report_surfaces_changes_but_cannot_fail() {
        let baseline = r#"{"sweep_threads":"1","host_threads":"8"}"#;
        let fresh = r#"{"sweep_threads":"4","effective_threads":"4"}"#;
        let keys = ["sweep_threads", "host_threads", "effective_threads", "nope"];
        let lines = super::context_report(baseline, fresh, &keys);
        assert_eq!(lines.len(), keys.len());
        assert!(lines[0].contains("CHANGED baseline 1, fresh 4"), "{lines:?}");
        assert!(lines[1].contains("absent in fresh"), "{lines:?}");
        assert!(lines[2].contains("absent in baseline"), "{lines:?}");
        assert!(lines[3].contains("absent"), "{lines:?}");

        // Identical values print once, and garbage documents degrade to
        // "absent" lines rather than panics or errors.
        let same = super::context_report(baseline, baseline, &["sweep_threads"]);
        assert_eq!(same, ["sweep_threads: 1"]);
        assert_eq!(super::context_report("not json", "{}", &["k"]), ["k: absent"]);
    }
}
