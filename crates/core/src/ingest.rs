//! Corpus-scale trace ingestion and robust trace calibration.
//!
//! The fleet half of ROADMAP item 4: `dlperf_trace::ingest` makes one
//! file safe to read; this module makes *thousands* of files safe to
//! process unattended. [`CorpusIngestJob`] fans files out over
//! [`crate::sweep::par_map`] with per-file `catch_unwind` panic
//! isolation, checkpoints its progress through
//! [`dlperf_runtime::ResumableJob`] (so a SIGKILL mid-corpus resumes
//! bitwise-identically), and reduces every file to per-family kernel
//! duration samples the moment it is scanned — raw traces are dropped
//! immediately, keeping corpus memory proportional to the *samples*,
//! not the files.
//!
//! On top sits [`TraceCalibration`]: a Habitat-style transfer fit that
//! turns observed per-family durations into multiplicative scale
//! factors over a reference prediction, using robust statistics
//! (median-of-samples with MAD outlier rejection) so a handful of
//! corrupt durations cannot skew the fit. Families whose surviving
//! sample count is thin are tagged [`Confidence::Degraded`] and kept
//! out of [`TraceCalibration::scale_factors`], never silently applied.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use dlperf_faults::{site_key, FaultInjector};
use dlperf_gpusim::KernelFamily;
use dlperf_kernels::{Confidence, ModelRegistry};
use dlperf_runtime::{
    fnv1a64, CancellationToken, JobContext, JobError, ResumableJob, StepOutcome,
};
use dlperf_trace::ingest::{
    ingest_file, FileReject, FileReport, FileStatus, IngestLimits, QuarantineReport, SkipCounts,
};
use dlperf_trace::{EventCat, Trace};

/// Extracts per-family kernel duration samples from one trace, in event
/// order. Kernel events are named `<family label>_kernel` by the
/// engine; events whose label no model family claims are counted, not
/// dropped silently. Shared by the corpus job and the offline fit the
/// acceptance tests compare against.
pub fn collect_family_samples(
    trace: &Trace,
    samples: &mut BTreeMap<KernelFamily, Vec<f64>>,
) -> u64 {
    let mut unattributed = 0;
    for ev in &trace.events {
        if ev.cat != EventCat::Kernel {
            continue;
        }
        let family = ev.name.strip_suffix("_kernel").and_then(KernelFamily::parse_label);
        match family {
            Some(f) => samples.entry(f).or_default().push(ev.dur_us),
            None => unattributed += 1,
        }
    }
    unattributed
}

/// Checkpointable progress of a corpus ingestion.
///
/// Everything here must survive a JSON round-trip *bitwise*: durations
/// are stored as `f64` (Rust's float formatting is shortest-round-trip
/// exact) and per-file digests as fixed-width hex strings, because the
/// vendored JSON layer carries all numbers as `f64` and would corrupt
/// raw 64-bit hashes above 2^53.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusIngestState {
    /// Index of the next unprocessed file.
    pub next: u64,
    /// Per-file outcomes, in corpus order.
    pub reports: Vec<FileReport>,
    /// Kernel duration samples keyed by family *label* (JSON object
    /// keys must be strings), each in file-then-event order.
    pub samples: BTreeMap<String, Vec<f64>>,
    /// Kernel events whose name matched no known family.
    pub unattributed_kernels: u64,
    /// Per-file content digests (hex), folded into the corpus digest.
    pub file_digests: Vec<String>,
}

/// Final product of a corpus ingestion.
#[derive(Debug, Clone)]
pub struct CorpusIngest {
    /// Per-file accounting: every skipped event and quarantined file.
    pub report: QuarantineReport,
    /// Observed kernel durations per family, in corpus order.
    pub samples: BTreeMap<KernelFamily, Vec<f64>>,
    /// Kernel events whose name matched no known family.
    pub unattributed_kernels: u64,
    /// Digest over every file's recovered content, in corpus order.
    /// Equal digests mean bitwise-equal ingestion — the property the
    /// SIGKILL-resume chaos job asserts.
    pub digest: u64,
}

impl CorpusIngest {
    /// Total events skipped across the corpus, by reason.
    pub fn skips(&self) -> SkipCounts {
        self.report.skips()
    }
}

/// A resumable, panic-isolated, fault-injectable corpus ingestion job.
///
/// Each step ingests one chunk of files in parallel and appends the
/// results to the checkpointable state; the supervisor may snapshot
/// after any step and a resumed run continues file-for-file where the
/// killed one stopped. Files are sorted at construction so the corpus
/// order (and therefore the digest) is independent of directory
/// enumeration order.
pub struct CorpusIngestJob {
    files: Vec<PathBuf>,
    limits: IngestLimits,
    threads: usize,
    chunk: usize,
    injector: Option<FaultInjector>,
}

impl CorpusIngestJob {
    /// A job over `files` with default parallelism (4) and chunking (8
    /// files per checkpoint step).
    pub fn new(mut files: Vec<PathBuf>, limits: IngestLimits) -> Self {
        files.sort();
        CorpusIngestJob { files, limits, threads: 4, chunk: 8, injector: None }
    }

    /// Sets worker-thread parallelism within a step (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets files per checkpoint step (builder style).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        assert!(chunk >= 1, "chunk must be at least 1 file");
        self.chunk = chunk;
        self
    }

    /// Installs a fault injector whose worker-fault model fires inside
    /// the per-file worker closure (site `trace-ingest-file`, keyed by
    /// file index): any selected fault panics the worker there, and the
    /// job's `catch_unwind` isolation quarantines that file as
    /// [`FileReject::Panic`] instead of losing the corpus (builder
    /// style).
    pub fn with_fault_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// The sorted corpus file list.
    pub fn files(&self) -> &[PathBuf] {
        &self.files
    }

    fn ingest_one(&self, index: usize, path: &Path) -> (FileReport, Vec<(String, f64)>, u64, String) {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(inj) = &self.injector {
                if inj.worker_fault(site_key("trace-ingest-file"), index as u64, 1).is_some() {
                    panic!("injected trace-ingest fault");
                }
            }
            ingest_file(path, &self.limits)
        }));
        match outcome {
            Ok(ingest) => {
                let mut samples = Vec::new();
                let mut unattributed = 0;
                let mut canon = String::new();
                for trace in &ingest.traces {
                    let mut by_family = BTreeMap::new();
                    unattributed += collect_family_samples(trace, &mut by_family);
                    for (family, durs) in by_family {
                        for d in durs {
                            samples.push((family.to_string(), d));
                        }
                    }
                    canon.push_str(&trace.to_json());
                    canon.push('\n');
                }
                let digest = format!("{:016x}", fnv1a64(canon.as_bytes()));
                (ingest.report, samples, unattributed, digest)
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                let report = FileReport {
                    label: path.display().to_string(),
                    status: FileStatus::Quarantined(FileReject::Panic(msg)),
                    traces: 0,
                    events_accepted: 0,
                    skips: SkipCounts::default(),
                    bytes_read: 0,
                    peak_buffer_bytes: 0,
                };
                (report, Vec::new(), 0, format!("{:016x}", fnv1a64(b"panic")))
            }
        }
    }
}

impl ResumableJob for CorpusIngestJob {
    type State = CorpusIngestState;
    type Output = CorpusIngest;

    fn name(&self) -> &str {
        "trace-corpus-ingest"
    }

    fn initial_state(&self) -> CorpusIngestState {
        CorpusIngestState {
            next: 0,
            reports: Vec::new(),
            samples: BTreeMap::new(),
            unattributed_kernels: 0,
            file_digests: Vec::new(),
        }
    }

    fn step(&self, state: &mut CorpusIngestState, ctx: &JobContext) -> Result<StepOutcome, JobError> {
        ctx.check_cancelled()?;
        let start = state.next as usize;
        if start >= self.files.len() {
            return Ok(StepOutcome::Done);
        }
        let end = (start + self.chunk).min(self.files.len());
        let chunk = &self.files[start..end];
        // The chunk runs to completion or not at all: cancellation is
        // checked at step boundaries so a checkpointed state never
        // contains a half-ingested chunk.
        let token = CancellationToken::new();
        let results = crate::sweep::par_map(self.threads, &token, chunk, |i, path| {
            self.ingest_one(start + i, path)
        });
        for result in results {
            let (report, samples, unattributed, digest) =
                result.expect("uncancelled par_map fills every slot");
            state.reports.push(report);
            for (label, dur) in samples {
                state.samples.entry(label).or_default().push(dur);
            }
            state.unattributed_kernels += unattributed;
            state.file_digests.push(digest);
        }
        state.next = end as u64;
        ctx.check_cancelled()?;
        if end == self.files.len() {
            Ok(StepOutcome::Done)
        } else {
            Ok(StepOutcome::Continue)
        }
    }

    fn finish(&self, state: CorpusIngestState) -> CorpusIngest {
        let mut report = QuarantineReport::default();
        for file in state.reports {
            report.push(file);
        }
        let mut samples = BTreeMap::new();
        for (label, durs) in state.samples {
            match KernelFamily::parse_label(&label) {
                Some(family) => {
                    samples.insert(family, durs);
                }
                None => unreachable!("only parseable family labels are recorded"),
            }
        }
        let digest = fnv1a64(state.file_digests.join("\n").as_bytes());
        CorpusIngest {
            report,
            samples,
            unattributed_kernels: state.unattributed_kernels,
            digest,
        }
    }
}

/// Knobs of the robust per-family fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationPolicy {
    /// Fewest surviving samples for a fit to be trusted
    /// ([`Confidence::Calibrated`]); thinner families are tagged
    /// [`Confidence::Degraded`] and excluded from the scale factors.
    pub min_samples: usize,
    /// Outlier rejection width: samples farther than
    /// `mad_k × 1.4826 × MAD` from the median are rejected. 1.4826
    /// scales the MAD to a Gaussian σ estimate.
    pub mad_k: f64,
}

impl Default for CalibrationPolicy {
    fn default() -> Self {
        CalibrationPolicy { min_samples: 8, mad_k: 3.5 }
    }
}

/// One family's trace fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyFit {
    /// The kernel family.
    pub family: KernelFamily,
    /// Multiplicative correction: observed median over reference
    /// median. 1.0 when the fit is degraded.
    pub scale: f64,
    /// Median of the surviving observed durations (µs).
    pub observed_median_us: f64,
    /// The reference duration the observation is compared against (µs).
    pub reference_median_us: f64,
    /// Samples surviving outlier rejection.
    pub samples: usize,
    /// Samples rejected as outliers.
    pub rejected_outliers: usize,
    /// Whether the fit is trustworthy enough to apply.
    pub confidence: Confidence,
}

/// Per-family scale factors fitted from an ingested corpus.
#[derive(Debug, Clone, Default)]
pub struct TraceCalibration {
    /// One fit per family that had both observations and a reference.
    pub fits: Vec<FamilyFit>,
}

/// Median of a non-empty sample set (average of the middle two for even
/// counts), ordering by `total_cmp` so NaNs cannot panic the sort.
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.total_cmp(b));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

impl TraceCalibration {
    /// Fits one scale factor per family present in both `observed` and
    /// `reference`. Non-finite observations are dropped up front; MAD
    /// outlier rejection is skipped when the MAD is zero (all-equal
    /// samples reject nothing). A family whose surviving count is below
    /// [`CalibrationPolicy::min_samples`], or whose reference or fitted
    /// scale is unusable, is tagged [`Confidence::Degraded`] with scale
    /// 1.0.
    pub fn fit(
        observed: &BTreeMap<KernelFamily, Vec<f64>>,
        reference: &BTreeMap<KernelFamily, f64>,
        policy: &CalibrationPolicy,
    ) -> Self {
        let mut fits = Vec::new();
        for (&family, durs) in observed {
            let Some(&reference_median) = reference.get(&family) else {
                continue;
            };
            let mut clean: Vec<f64> = durs.iter().copied().filter(|d| d.is_finite()).collect();
            if clean.is_empty() {
                fits.push(FamilyFit {
                    family,
                    scale: 1.0,
                    observed_median_us: f64::NAN,
                    reference_median_us: reference_median,
                    samples: 0,
                    rejected_outliers: 0,
                    confidence: Confidence::Degraded,
                });
                continue;
            }
            let med = median(&mut clean);
            let mut deviations: Vec<f64> = clean.iter().map(|d| (d - med).abs()).collect();
            let mad = median(&mut deviations);
            let (mut surviving, rejected): (Vec<f64>, Vec<f64>) = if mad > 0.0 {
                let cutoff = policy.mad_k * 1.4826 * mad;
                clean.into_iter().partition(|d| (d - med).abs() <= cutoff)
            } else {
                (clean, Vec::new())
            };
            let observed_median = median(&mut surviving);
            let scale = observed_median / reference_median;
            let trustworthy = surviving.len() >= policy.min_samples
                && reference_median.is_finite()
                && reference_median > 0.0
                && scale.is_finite()
                && scale > 0.0;
            fits.push(FamilyFit {
                family,
                scale: if trustworthy { scale } else { 1.0 },
                observed_median_us: observed_median,
                reference_median_us: reference_median,
                samples: surviving.len(),
                rejected_outliers: rejected.len(),
                confidence: if trustworthy {
                    Confidence::Calibrated
                } else {
                    Confidence::Degraded
                },
            });
        }
        TraceCalibration { fits }
    }

    /// The applicable factors: calibrated fits only.
    pub fn scale_factors(&self) -> Vec<(KernelFamily, f64)> {
        self.fits
            .iter()
            .filter(|f| f.confidence == Confidence::Calibrated)
            .map(|f| (f.family, f.scale))
            .collect()
    }

    /// Families whose fit was too thin or unusable to apply.
    pub fn degraded_families(&self) -> Vec<KernelFamily> {
        self.fits
            .iter()
            .filter(|f| f.confidence == Confidence::Degraded)
            .map(|f| f.family)
            .collect()
    }

    /// Rewraps `registry` with the calibrated scale factors (degraded
    /// families left untouched).
    pub fn apply(&self, registry: &ModelRegistry) -> ModelRegistry {
        registry.with_scale_factors(&self.scale_factors())
    }
}

/// Median per family of a sample map — the usual way to build the
/// `reference` argument of [`TraceCalibration::fit`] from a reference
/// device's own traces or predictions.
pub fn family_medians(samples: &BTreeMap<KernelFamily, Vec<f64>>) -> BTreeMap<KernelFamily, f64> {
    samples
        .iter()
        .filter(|(_, durs)| !durs.is_empty())
        .map(|(&family, durs)| {
            let mut clean: Vec<f64> = durs.clone();
            (family, median(&mut clean))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(family: KernelFamily, durs: &[f64]) -> BTreeMap<KernelFamily, Vec<f64>> {
        let mut m = BTreeMap::new();
        m.insert(family, durs.to_vec());
        m
    }

    #[test]
    fn median_handles_odd_even_and_nan() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        // NaNs sort to an end under total_cmp; the call must not panic.
        let _ = median(&mut [f64::NAN, 1.0, 2.0]);
    }

    #[test]
    fn fit_recovers_a_clean_scale_factor() {
        let samples: Vec<f64> = (0..32).map(|i| 20.0 + (i % 5) as f64).collect();
        let observed = obs(KernelFamily::Gemm, &samples);
        let reference = family_medians(&obs(KernelFamily::Gemm, &[11.0; 9]));
        let cal = TraceCalibration::fit(&observed, &reference, &CalibrationPolicy::default());
        assert_eq!(cal.fits.len(), 1);
        let fit = &cal.fits[0];
        assert_eq!(fit.confidence, Confidence::Calibrated);
        assert_eq!(fit.reference_median_us, 11.0);
        assert_eq!(fit.scale, fit.observed_median_us / 11.0);
        assert_eq!(cal.scale_factors(), vec![(KernelFamily::Gemm, fit.scale)]);
    }

    #[test]
    fn outliers_are_rejected_by_mad() {
        let mut samples: Vec<f64> = (0..20).map(|i| 9.5 + 0.05 * i as f64).collect();
        samples.push(10_000.0); // a corrupt duration
        let observed = obs(KernelFamily::Memcpy, &samples);
        let reference = family_medians(&obs(KernelFamily::Memcpy, &[10.0; 9]));
        let cal = TraceCalibration::fit(&observed, &reference, &CalibrationPolicy::default());
        let fit = &cal.fits[0];
        assert_eq!(fit.rejected_outliers, 1, "only the corrupt sample is rejected");
        assert!((fit.scale - 1.0).abs() < 0.05, "outlier must not skew the fit: {}", fit.scale);
    }

    #[test]
    fn thin_families_are_degraded_and_not_applied() {
        let observed = obs(KernelFamily::Concat, &[5.0, 5.5, 6.0]); // below min_samples
        let reference = family_medians(&obs(KernelFamily::Concat, &[5.0; 9]));
        let cal = TraceCalibration::fit(&observed, &reference, &CalibrationPolicy::default());
        assert_eq!(cal.fits[0].confidence, Confidence::Degraded);
        assert_eq!(cal.fits[0].scale, 1.0);
        assert!(cal.scale_factors().is_empty());
        assert_eq!(cal.degraded_families(), vec![KernelFamily::Concat]);
    }

    #[test]
    fn families_without_reference_are_skipped() {
        let observed = obs(KernelFamily::Conv2d, &[1.0; 16]);
        let cal =
            TraceCalibration::fit(&observed, &BTreeMap::new(), &CalibrationPolicy::default());
        assert!(cal.fits.is_empty());
    }

    #[test]
    fn nonfinite_observations_never_produce_a_fit_panic() {
        let observed = obs(KernelFamily::Gemm, &[f64::NAN, f64::INFINITY]);
        let reference = family_medians(&obs(KernelFamily::Gemm, &[10.0; 9]));
        let cal = TraceCalibration::fit(&observed, &reference, &CalibrationPolicy::default());
        assert_eq!(cal.fits[0].confidence, Confidence::Degraded);
        assert_eq!(cal.fits[0].samples, 0);
    }
}
