//! Baseline predictors for the Fig. 9 / Fig. 10 comparisons.
//!
//! * [`kernel_only`] — the paper's own baseline: E2E time = sum of predicted
//!   kernel times (i.e. GPU active time), ignoring idle time entirely.
//! * [`HabitatLike`] — models the approach of Habitat (Yu et al.): accurate
//!   per-kernel predictions, but E2E assembled as a plain sum of op times
//!   with one flat per-op latency constant instead of a critical path.
//! * [`MlPredictLike`] — models MLPredict (Justus et al.): per-op ML models
//!   trained on a *limited* sweep (small batches, square convolutions
//!   only), which extrapolates poorly to large batches and to Inception's
//!   1×7 / 7×1 filters — the failure the paper reports in Fig. 10.

use dlperf_gpusim::{DeviceSpec, KernelFamily, KernelSpec};
use dlperf_graph::lower::{self, LowerError};
use dlperf_graph::Graph;
use dlperf_kernels::microbench::{Microbenchmark, Sample};
use dlperf_kernels::mlbased::MlKernelModel;
use dlperf_kernels::ModelRegistry;
use dlperf_nn::train::TrainConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// E2E = sum of predicted kernel times (GPU active time), the `kernel_only`
/// series of Fig. 9.
///
/// # Errors
/// Returns a [`LowerError`] on malformed graphs.
pub fn kernel_only(graph: &Graph, registry: &ModelRegistry) -> Result<f64, LowerError> {
    let mut total = 0.0;
    for node in graph.nodes() {
        for k in lower::try_kernels(graph, node)? {
            // Degraded fallback (not a panic) on uncovered families, same
            // as the main E2E walk.
            total += registry.predict_with_confidence(&k).0;
        }
    }
    Ok(total)
}

/// Habitat-style predictor: good kernel models, no idle-time model.
#[derive(Debug, Clone)]
pub struct HabitatLike {
    registry: ModelRegistry,
    /// Flat per-op latency added for every op (Habitat's constant op
    /// overhead), calibrated once on a reference workload.
    pub per_op_latency_us: f64,
}

impl HabitatLike {
    /// Creates the baseline with a calibrated flat per-op latency.
    pub fn new(registry: ModelRegistry, per_op_latency_us: f64) -> Self {
        HabitatLike { registry, per_op_latency_us }
    }

    /// Predicts E2E time: `Σ kernel times + N_ops × latency` — a sum, not a
    /// critical path, so concurrency between CPU and GPU is ignored.
    ///
    /// # Errors
    /// Returns a [`LowerError`] on malformed graphs.
    pub fn predict(&self, graph: &Graph) -> Result<f64, LowerError> {
        let kernels = kernel_only(graph, &self.registry)?;
        Ok(kernels + graph.node_count() as f64 * self.per_op_latency_us)
    }
}

/// MLPredict-style predictor: one ML model per op family trained on a
/// restricted sweep, summed per op.
#[derive(Debug)]
pub struct MlPredictLike {
    gemm: MlKernelModel,
    conv: MlKernelModel,
    /// Flat estimate for every kernel family the restricted training never
    /// covered.
    fallback_us: f64,
}

impl MlPredictLike {
    /// Trains the baseline on its characteristic *limited* sweep: batch
    /// sizes ≤ 64 and square 1×1/3×3/5×5 convolutions only.
    pub fn train(device: &DeviceSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mb = Microbenchmark::new(device, seed, 9);

        let gemm_specs: Vec<KernelSpec> = (0..180)
            .map(|_| {
                let dims = [64u64, 128, 256, 512, 1024];
                KernelSpec::Gemm {
                    m: [16u64, 32, 64][rng.gen_range(0..3usize)], // small batches only
                    n: dims[rng.gen_range(0..dims.len())],
                    k: dims[rng.gen_range(0..dims.len())],
                    batch: 1,
                }
            })
            .collect();
        let conv_specs: Vec<KernelSpec> = (0..180)
            .map(|_| {
                let k = [1u64, 3, 5][rng.gen_range(0..3usize)];
                let hw = [14u64, 28, 56][rng.gen_range(0..3usize)];
                KernelSpec::Conv2d {
                    batch: [8u64, 16, 32][rng.gen_range(0..3usize)],
                    c_in: [32u64, 64, 128][rng.gen_range(0..3usize)],
                    h: hw,
                    w: hw,
                    c_out: [32u64, 64, 128][rng.gen_range(0..3usize)],
                    kh: k,
                    kw: k,
                    stride: 1,
                    pad: k / 2,
                }
            })
            .collect();

        let cfg = TrainConfig { epochs: 120, width: 48, hidden_layers: 3, ..Default::default() };
        let gemm_samples: Vec<Sample> = mb.measure(&gemm_specs);
        let conv_samples: Vec<Sample> = mb.measure(&conv_specs);
        MlPredictLike {
            gemm: MlKernelModel::train(&gemm_samples, &cfg, seed ^ 1),
            conv: MlKernelModel::train(&conv_samples, &cfg, seed ^ 2),
            fallback_us: 5.0,
        }
    }

    /// Predicts E2E time as the sum of per-kernel model outputs.
    ///
    /// # Errors
    /// Returns a [`LowerError`] on malformed graphs.
    pub fn predict(&self, graph: &Graph) -> Result<f64, LowerError> {
        let mut total = 0.0;
        for node in graph.nodes() {
            for k in lower::try_kernels(graph, node)? {
                total += match k.family() {
                    KernelFamily::Gemm => self.gemm.predict(&k),
                    KernelFamily::Conv2d => self.conv.predict(&k),
                    _ => self.fallback_us,
                };
            }
        }
        Ok(total)
    }
}

/// Habitat-style *cross-device wave scaling*: predict device B's kernel
/// times from measurements taken on device A, scaling compute-bound kernels
/// by the FLOP-throughput ratio and memory-bound kernels by the bandwidth
/// ratio, blended by arithmetic intensity. This is Habitat's core mechanism
/// (Yu et al. §4); it needs no microbenchmarks on the target device, but —
/// as the paper notes — it cannot predict for configurations never measured
/// on the source device.
#[derive(Debug, Clone)]
pub struct CrossDeviceScaler {
    from: DeviceSpec,
    to: DeviceSpec,
}

impl CrossDeviceScaler {
    /// Creates a scaler from measurements on `from` to predictions on `to`.
    pub fn new(from: DeviceSpec, to: DeviceSpec) -> Self {
        CrossDeviceScaler { from, to }
    }

    /// Scales one kernel's measured time on the source device to the target.
    pub fn scale_kernel(&self, kernel: &KernelSpec, time_on_from_us: f64) -> f64 {
        let compute_ratio = self.from.flop_per_us() / self.to.flop_per_us();
        let mem_ratio = self.from.dram_bytes_per_us() / self.to.dram_bytes_per_us();
        // Arithmetic intensity vs the source device's ridge point decides
        // how compute-bound the kernel is.
        let intensity = if kernel.bytes() > 0.0 { kernel.flops() / kernel.bytes() } else { 0.0 };
        let ridge = self.from.flop_per_us() / self.from.dram_bytes_per_us();
        let alpha = (intensity / ridge).clamp(0.0, 1.0);
        time_on_from_us * (alpha * compute_ratio + (1.0 - alpha) * mem_ratio)
    }

    /// Predicts the target-device E2E time of `graph` by measuring every
    /// kernel on the (simulated) source device and wave-scaling it, plus a
    /// flat per-op latency — Habitat's end-to-end assembly.
    ///
    /// # Errors
    /// Returns a [`LowerError`] on malformed graphs.
    pub fn predict(&self, graph: &Graph, per_op_latency_us: f64) -> Result<f64, LowerError> {
        let source = dlperf_gpusim::Gpu::noiseless(self.from.clone());
        let mut total = graph.node_count() as f64 * per_op_latency_us;
        for node in graph.nodes() {
            for k in lower::try_kernels(graph, node)? {
                total += self.scale_kernel(&k, source.kernel_time_noiseless(&k));
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_kernels::CalibrationEffort;
    use dlperf_models::cv;
    use dlperf_trace::engine::ExecutionEngine;

    #[test]
    fn our_model_beats_baselines_on_cv() {
        // Fig. 10 shape on ResNet-50: critical-path model ≥ Habitat-like ≥
        // MLPredict-like in accuracy.
        let dev = DeviceSpec::v100();
        let g = cv::resnet50(16);

        let mut engine = ExecutionEngine::new(dev.clone(), 61);
        let runs = engine.run_iterations(&g, 5).unwrap();
        let measured = runs.iter().map(|r| r.e2e_us).sum::<f64>() / runs.len() as f64;
        let traces: Vec<_> = runs.into_iter().map(|r| r.trace).collect();
        let overheads = dlperf_trace::OverheadStats::extract(&traces, true);

        let registry = ModelRegistry::calibrate(&dev, CalibrationEffort::Quick, 13);
        let ours = crate::E2ePredictor::new(registry.clone(), overheads)
            .predict(&g)
            .unwrap()
            .e2e_us;
        let habitat = HabitatLike::new(registry, 20.0).predict(&g).unwrap();
        let mlpredict = MlPredictLike::train(&dev, 77).predict(&g).unwrap();

        let err = |p: f64| ((p - measured) / measured).abs();
        assert!(err(ours) < 0.25, "our error {:.1}%", err(ours) * 100.0);
        assert!(err(habitat) < 0.35, "habitat-like error {:.1}%", err(habitat) * 100.0);
        assert!(
            err(mlpredict) > err(ours),
            "mlpredict {:.1}% vs ours {:.1}%",
            err(mlpredict) * 100.0,
            err(ours) * 100.0
        );
    }

    #[test]
    fn wave_scaling_lands_in_the_right_ballpark_on_gemm() {
        // GEMM-dominated kernels scale well across devices (the case
        // Habitat handles best).
        let scaler = CrossDeviceScaler::new(DeviceSpec::v100(), DeviceSpec::p100());
        let target = dlperf_gpusim::Gpu::noiseless(DeviceSpec::p100());
        let source = dlperf_gpusim::Gpu::noiseless(DeviceSpec::v100());
        let k = KernelSpec::gemm(4096, 2048, 1024);
        let scaled = scaler.scale_kernel(&k, source.kernel_time_noiseless(&k));
        let truth = target.kernel_time_noiseless(&k);
        assert!(
            ((scaled - truth) / truth).abs() < 0.35,
            "scaled {scaled} vs truth {truth}"
        );
    }

    #[test]
    fn wave_scaling_struggles_on_cache_sensitive_kernels() {
        // The paper's point against Habitat-style transfer: embedding
        // lookups whose working set fits one device's L2 but not the
        // other's do not scale by simple throughput ratios, while plain
        // GEMMs do.
        let (from, to) = (DeviceSpec::v100(), DeviceSpec::titan_xp());
        let scaler = CrossDeviceScaler::new(from.clone(), to.clone());
        let src = dlperf_gpusim::Gpu::noiseless(from);
        let dst = dlperf_gpusim::Gpu::noiseless(to);
        let err = |k: &KernelSpec| {
            let scaled = scaler.scale_kernel(k, src.kernel_time_noiseless(k));
            let truth = dst.kernel_time_noiseless(k);
            ((scaled - truth) / truth).abs()
        };
        // Mid-size tables: resident in the V100's 6 MB L2, not the Xp's 3 MB.
        let el_errs: Vec<f64> = [12_000u64, 18_000, 24_000]
            .iter()
            .map(|&e| err(&KernelSpec::embedding_forward(2048, e, 1, 10, 64)))
            .collect();
        let gemm_errs: Vec<f64> = [(2048u64, 1024u64, 1024u64), (4096, 2048, 512), (1024, 1024, 4096)]
            .iter()
            .map(|&(m, n, k)| err(&KernelSpec::gemm(m, n, k)))
            .collect();
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            mean(&el_errs) > mean(&gemm_errs),
            "EL scaling error {:.1}% should exceed GEMM's {:.1}%",
            mean(&el_errs) * 100.0,
            mean(&gemm_errs) * 100.0
        );
    }

    #[test]
    fn mlpredict_fails_on_factorized_filters() {
        // Trained on square filters only, the restricted baseline should be
        // much worse on a 1x7 conv than on a 3x3 of similar cost.
        let dev = DeviceSpec::v100();
        let base = MlPredictLike::train(&dev, 5);
        let gpu = dlperf_gpusim::Gpu::noiseless(dev);
        let square = KernelSpec::Conv2d {
            batch: 16, c_in: 64, h: 28, w: 28, c_out: 64, kh: 3, kw: 3, stride: 1, pad: 1,
        };
        let skew = KernelSpec::Conv2d {
            batch: 16, c_in: 128, h: 17, w: 17, c_out: 128, kh: 1, kw: 7, stride: 1, pad: 3,
        };
        let err = |k: &KernelSpec, pred: f64| {
            let t = gpu.kernel_time_noiseless(k);
            ((pred - t) / t).abs()
        };
        let e_square = err(&square, base.conv.predict(&square));
        let e_skew = err(&skew, base.conv.predict(&skew));
        assert!(
            e_skew > e_square,
            "skewed-filter error {e_skew:.2} should exceed square-filter error {e_square:.2}"
        );
    }
}
