//! The what-if sweep engine: Algorithm 1 run *many* times, in parallel.
//!
//! The paper's value is not one prediction but a matrix of them — batch
//! sizes × devices × graph mutations (§V-A) — and serving such sweeps
//! fast is the production workload this crate targets. [`SweepEngine`]
//! fans a [`Scenario`] list across worker threads (a crossbeam-scoped
//! pool pulling indices from a shared claim counter, so fast workers
//! steal whatever slow workers have not started), answers kernel-model
//! queries from one [`MemoCache`] per calibrated pipeline, honors a
//! runtime [`CancellationToken`] between scenarios, and can run under a
//! [`Supervisor`] with chunked checkpoints for kill/resume.
//!
//! With caching enabled the engine also *prepares graphs once*: scenarios
//! with the same mutation list (e.g. the same `hoisted` variant priced on
//! three devices) share one transformed graph instead of re-running the
//! transform per cell, and the prepared graphs persist across runs of the
//! same engine on the same base graph (detected by graph-index identity),
//! so steady-state re-sweeps skip the transform *and* the structural
//! signature pass entirely. Graph transforms dominate scenario cost by
//! orders of magnitude over a kernel-model query, so this sharing — not
//! thread count — is the engine's biggest single-host win.
//!
//! **Determinism contract:** every scenario evaluation is a pure function
//! of `(pipeline, base graph, scenario)`; results are written to the slot
//! of the scenario's *input index*, never in completion order; cache hits
//! are bitwise identical to model evaluations (see
//! [`dlperf_kernels::memo`]); and graph preparation is a deterministic
//! pure function of `(base, mutations)`, so sharing its output is
//! invisible. Consequently the parallel sweep is bitwise identical to the
//! sequential one at any thread count, cache on or off — `tests/sweep.rs`
//! pins that property.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dlperf_graph::transform::{
    fuse_embedding_bags, hoist_earliest, replace_op, resize_batch, TransformError,
};
use dlperf_graph::{Graph, NodeId, OpKind};
use dlperf_kernels::{CachePadded, MemoCache, MemoCacheStats};
use dlperf_runtime::{
    CancellationToken, JobContext, JobError, ResumableJob, RunReport, StepOutcome, Supervisor,
    SupervisorError,
};
use serde::{Deserialize, Serialize};

use dlperf_nn::ArenaStats;

use crate::incremental::{IncrementalPredictor, IncrementalStats};
use crate::pipeline::Pipeline;
use crate::predictor::{Prediction, WalkScratch};

/// A graph rewrite applied before pricing a scenario.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphMutation {
    /// Resize the captured graph to this batch size.
    ResizeBatch(u64),
    /// Fuse per-table embedding bags into one batched lookup (Fig. 11).
    FuseEmbeddingBags,
    /// Hoist every movable op as early as its dependencies allow.
    HoistAll,
    /// Hoist one node (by position) as early as its dependencies allow;
    /// an immovable node is left in place, out-of-range is an error.
    HoistNode(usize),
    /// Replace the operator of the node at this position, keeping its
    /// tensors — the canonical single-op what-if (e.g. an activation swap).
    ReplaceOp {
        /// Position of the node to rewrite.
        node: usize,
        /// The operator to substitute.
        op: OpKind,
    },
}

impl std::fmt::Display for GraphMutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphMutation::ResizeBatch(b) => write!(f, "resize batch to {b}"),
            GraphMutation::FuseEmbeddingBags => write!(f, "fuse embedding bags"),
            GraphMutation::HoistAll => write!(f, "hoist all movable ops"),
            GraphMutation::HoistNode(i) => write!(f, "hoist node {i}"),
            GraphMutation::ReplaceOp { node, op } => {
                write!(f, "replace op at node {node} with {op:?}")
            }
        }
    }
}

/// Why preparing a mutated graph failed — the typed replacement for the
/// stringly `Result<Graph, String>` that used to flow through
/// [`prepare_graph`], the [`PreparedStore`], and the serve model registry.
/// The failing mutation rides along so rankers and servers can say *which*
/// rewrite was rejected, not just why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationError {
    /// A transform rejected the graph: its precondition failed, it found
    /// nothing to do, or it would have violated a data dependency.
    Transform {
        /// The mutation whose transform failed.
        mutation: GraphMutation,
        /// The transform-layer diagnosis.
        source: TransformError,
    },
}

impl MutationError {
    /// The mutation that failed.
    pub fn mutation(&self) -> &GraphMutation {
        match self {
            MutationError::Transform { mutation, .. } => mutation,
        }
    }

    /// The underlying transform error.
    pub fn source(&self) -> &TransformError {
        match self {
            MutationError::Transform { source, .. } => source,
        }
    }
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutationError::Transform { mutation, source } => {
                // Keeps the historical "transform failed: …" prefix that
                // downstream error strings (and tests) key on.
                write!(f, "transform failed: {source} (while applying: {mutation})")
            }
        }
    }
}

impl std::error::Error for MutationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MutationError::Transform { source, .. } => Some(source),
        }
    }
}

/// One cell of a what-if matrix: which pipeline prices which mutated
/// graph. `device` indexes into the engine's pipeline list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable label, unique within a sweep by construction of
    /// [`ScenarioMatrix`] (free-form when built by hand).
    pub label: String,
    /// Index of the pipeline (= calibrated device) that prices this cell.
    pub device: usize,
    /// Rewrites applied to the base graph, in order.
    pub mutations: Vec<GraphMutation>,
    /// Parallelism-strategy tag (`"hybrid"`, `"dp"`, `"mp"`, `"pp"`).
    /// The single-GPU engine prices the cell identically regardless —
    /// the tag is a pass-through axis that distributed consumers
    /// (`dlperf-distrib`'s sharding sweeps, the serve recommender) expand
    /// into actual strategy-parametrized jobs. Absent in old scenario
    /// JSON and omitted when unset, so stored sweeps round-trip
    /// unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub strategy: Option<String>,
}

impl Scenario {
    /// A scenario pricing the unmodified base graph on `device`.
    pub fn new(label: impl Into<String>, device: usize) -> Self {
        Scenario { label: label.into(), device, mutations: Vec::new(), strategy: None }
    }

    /// Adds a mutation (builder style).
    pub fn with(mut self, m: GraphMutation) -> Self {
        self.mutations.push(m);
        self
    }

    /// Tags the scenario with a parallelism strategy (builder style).
    pub fn with_strategy(mut self, strategy: impl Into<String>) -> Self {
        self.strategy = Some(strategy.into());
        self
    }
}

/// Cross-product builder for scenario lists: devices × batches ×
/// named graph variants, enumerated in a deterministic order
/// (device-major, then batch, then variant).
#[derive(Debug, Clone, Default)]
pub struct ScenarioMatrix {
    devices: Vec<(String, usize)>,
    batches: Vec<u64>,
    variants: Vec<(String, Vec<GraphMutation>)>,
    strategies: Vec<String>,
}

impl ScenarioMatrix {
    /// An empty matrix. With no explicit axes, `build` yields nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a device axis entry: a display name plus the pipeline index.
    pub fn device(mut self, name: impl Into<String>, index: usize) -> Self {
        self.devices.push((name.into(), index));
        self
    }

    /// Adds batch-size axis entries (each becomes a `ResizeBatch`).
    pub fn batches(mut self, batches: &[u64]) -> Self {
        self.batches.extend_from_slice(batches);
        self
    }

    /// Adds a named graph-variant axis entry.
    pub fn variant(mut self, name: impl Into<String>, mutations: Vec<GraphMutation>) -> Self {
        self.variants.push((name.into(), mutations));
        self
    }

    /// Adds parallelism-strategy axis entries (e.g. `"hybrid"`, `"dp"`).
    /// A pass-through axis on the single-GPU engine (each tagged cell
    /// prices identically); distributed consumers expand the tags into
    /// strategy-parametrized jobs. Labels gain a `/{strategy}` suffix.
    pub fn strategies(mut self, strategies: &[&str]) -> Self {
        self.strategies.extend(strategies.iter().map(|s| s.to_string()));
        self
    }

    /// Enumerates the full cross product.
    pub fn build(&self) -> Vec<Scenario> {
        let variants: &[(String, Vec<GraphMutation>)] = if self.variants.is_empty() {
            &[(String::from("base"), Vec::new())]
        } else {
            &self.variants
        };
        let batches: &[u64] = if self.batches.is_empty() { &[0] } else { &self.batches };
        let strategies: &[Option<String>] = &if self.strategies.is_empty() {
            vec![None]
        } else {
            self.strategies.iter().cloned().map(Some).collect::<Vec<_>>()
        };
        let mut out = Vec::new();
        for (dev_name, dev) in &self.devices {
            for &b in batches {
                for (var_name, muts) in variants {
                    for strategy in strategies {
                        let mut mutations = Vec::new();
                        let mut label = dev_name.clone();
                        if b != 0 {
                            mutations.push(GraphMutation::ResizeBatch(b));
                            label.push_str(&format!("/b{b}"));
                        }
                        mutations.extend(muts.iter().cloned());
                        label.push_str(&format!("/{var_name}"));
                        if let Some(s) = strategy {
                            label.push_str(&format!("/{s}"));
                        }
                        out.push(Scenario {
                            label,
                            device: *dev,
                            mutations,
                            strategy: strategy.clone(),
                        });
                    }
                }
            }
        }
        out
    }
}

/// The outcome of one scenario. Errors (failed transforms, lowering
/// failures) are captured as strings rather than aborting the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// The scenario's label.
    pub label: String,
    /// The prediction, when the scenario priced successfully.
    pub prediction: Option<Prediction>,
    /// The failure, when it did not.
    pub error: Option<String>,
}

impl ScenarioResult {
    /// The prediction, panicking with the recorded error if the scenario
    /// failed — convenient in tests and examples that expect clean runs.
    pub fn expect_prediction(&self) -> &Prediction {
        match &self.prediction {
            Some(p) => p,
            None => panic!(
                "scenario `{}` failed: {}",
                self.label,
                self.error.as_deref().unwrap_or("unknown")
            ),
        }
    }
}

/// What a sweep run produced.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One slot per input scenario, in input order. `None` only when the
    /// sweep was cancelled before that scenario ran.
    pub results: Vec<Option<ScenarioResult>>,
    /// Whether cancellation cut the sweep short.
    pub cancelled: bool,
    /// Threads used (the *effective* count after the available-parallelism
    /// cap, not the requested one).
    pub threads: usize,
    /// Wall-clock time of the run (milliseconds).
    pub wall_ms: f64,
    /// Merged cache counters at the end of the run (`None` with caching
    /// disabled). Counters accumulate across runs of the same engine.
    pub cache: Option<MemoCacheStats>,
    /// Aggregate incremental re-prediction accounting (`None` when the
    /// incremental path was off or no scenario went through it). Kept out
    /// of [`ScenarioResult`] on purpose: results stay byte-identical on
    /// disk whether or not the incremental fast path served them.
    pub incremental: Option<IncrementalSummary>,
}

/// Aggregate accounting of the incremental fast path over one sweep run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncrementalSummary {
    /// Scenarios priced via [`IncrementalPredictor::repredict`].
    pub scenarios: usize,
    /// Nodes whose state/costs were reused from a baseline (prefix+suffix).
    pub reused_nodes: usize,
    /// Dirty nodes re-lowered and re-priced.
    pub recomputed_nodes: usize,
    /// Scenarios whose suffix walk was skipped by a proven bitwise splice.
    pub spliced: usize,
    /// Scenarios that degenerated to a full walk (nothing reusable).
    pub full_fallbacks: usize,
}

impl IncrementalSummary {
    /// Folds one re-prediction's stats into the aggregate.
    pub fn absorb(&mut self, s: &IncrementalStats) {
        self.scenarios += 1;
        self.reused_nodes += s.prefix + s.suffix;
        self.recomputed_nodes += s.recomputed;
        self.spliced += usize::from(s.spliced);
        self.full_fallbacks += usize::from(s.full_fallback);
    }
}

impl From<&IncrementalStats> for IncrementalSummary {
    fn from(s: &IncrementalStats) -> Self {
        let mut sum = IncrementalSummary::default();
        sum.absorb(s);
        sum
    }
}

/// Process-wide sweep counters, shared by every engine instance (sweeps
/// are a program-level activity; per-run accounting stays in
/// [`SweepOutcome`]).
struct SweepCounters {
    _group: Arc<dlperf_obs::CounterGroup>,
    runs: dlperf_obs::CounterHandle,
    scenarios: dlperf_obs::CounterHandle,
    errors: dlperf_obs::CounterHandle,
    cancelled: dlperf_obs::CounterHandle,
}

fn sweep_counters() -> &'static SweepCounters {
    static G: std::sync::OnceLock<SweepCounters> = std::sync::OnceLock::new();
    G.get_or_init(|| {
        let group = dlperf_obs::CounterGroup::register(
            "core.sweep",
            &["runs", "scenarios", "errors", "cancelled"],
        );
        SweepCounters {
            runs: group.handle("runs"),
            scenarios: group.handle("scenarios"),
            errors: group.handle("errors"),
            cancelled: group.handle("cancelled"),
            _group: group,
        }
    })
}

impl SweepOutcome {
    /// Number of scenarios that actually ran.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.is_some()).count()
    }

    /// All results of a *complete* run, in input order.
    ///
    /// # Panics
    /// Panics if the sweep was cancelled before finishing.
    pub fn expect_complete(&self) -> Vec<&ScenarioResult> {
        self.results
            .iter()
            .map(|r| r.as_ref().expect("sweep was cancelled before completion"))
            .collect()
    }
}

/// Work-distributing parallel map with cooperative cancellation: applies
/// `f` to every item on `threads` scoped workers that claim indices from
/// a shared counter (dynamic self-scheduling — idle workers take over
/// remaining items regardless of which worker "owned" them). Results land
/// in input order; a cancelled run leaves `None` in the unvisited slots.
///
/// This is the engine's execution primitive, public so other crates
/// (e.g. `dlperf-distrib`) can fan custom scenario types across the same
/// machinery.
///
/// # Panics
/// Propagates panics from `f`.
pub fn par_map<S, R, F>(
    threads: usize,
    token: &CancellationToken,
    items: &[S],
    f: F,
) -> Vec<Option<R>>
where
    S: Sync,
    R: Send,
    F: Fn(usize, &S) -> R + Sync,
{
    par_map_with(threads, token, items, || (), |_, i, s| f(i, s))
}

/// [`par_map`] with a per-worker context: each worker (or the one
/// sequential loop) calls `init` once and threads the resulting value
/// mutably through every item it claims. This is how the sweep engine
/// hands each worker a reusable [`WalkScratch`] — the context lives
/// exactly as long as the worker, so scratch capacity amortizes across
/// all the items that worker steals, and contexts never cross threads.
///
/// The context must not influence results (the engine's contexts are
/// buffer pools, invisible by construction); under that condition the
/// determinism contract of [`par_map`] carries over unchanged.
///
/// # Panics
/// Propagates panics from `init` and `f`.
pub fn par_map_with<S, R, C, I, F>(
    threads: usize,
    token: &CancellationToken,
    items: &[S],
    init: I,
    f: F,
) -> Vec<Option<R>>
where
    S: Sync,
    R: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize, &S) -> R + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() <= 1 {
        // The sequential reference path: same claim order, same results.
        let mut ctx = init();
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            if token.is_cancelled() {
                out.push(None);
                continue;
            }
            out.push(Some(f(&mut ctx, i, item)));
        }
        return out;
    }

    // Cache-line padding keeps the hammered claim counter off whatever
    // line the channel internals or worker stacks land on.
    let next = CachePadded(AtomicUsize::new(0));
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, R)>();
    crossbeam::scope(|s| {
        for _ in 0..threads.min(items.len()) {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            let init = &init;
            s.spawn(move |_| {
                let mut ctx = init();
                loop {
                    let i = next.0.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() || token.is_cancelled() {
                        return;
                    }
                    let r = f(&mut ctx, i, &items[i]);
                    // The receiver outlives the scope; send cannot fail.
                    if tx.send((i, r)).is_err() {
                        unreachable!("sweep result channel closed");
                    }
                }
            });
        }
        drop(tx);
    })
    .expect("sweep worker panicked");
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in rx.iter() {
        out[i] = Some(r);
    }
    out
}

/// Applies a mutation list to a base graph — a deterministic pure
/// function of `(base, mutations)`, which is what makes sharing its
/// output across scenarios (and across the serve/offline boundary)
/// invisible to results.
///
/// # Errors
/// [`MutationError`] identifying the first transform that failed and why.
pub fn prepare_graph(base: &Graph, mutations: &[GraphMutation]) -> Result<Graph, MutationError> {
    let _span = dlperf_obs::span("sweep.prepare", dlperf_obs::SpanKind::Phase);
    let mut g = base.clone();
    for m in mutations {
        let r = match m {
            GraphMutation::ResizeBatch(b) => resize_batch(&mut g, *b).map(|_| ()),
            GraphMutation::FuseEmbeddingBags => fuse_embedding_bags(&mut g).map(|_| ()),
            GraphMutation::HoistAll => {
                for i in 0..g.node_count() {
                    let id = g.nodes()[i].id;
                    let _ = hoist_earliest(&mut g, id);
                }
                Ok(())
            }
            GraphMutation::HoistNode(i) => {
                if *i >= g.node_count() {
                    Err(TransformError::Precondition(format!(
                        "node position {i} out of range ({} nodes)",
                        g.node_count()
                    )))
                } else {
                    let id = g.nodes()[*i].id;
                    // An immovable node is a no-op, like HoistAll.
                    let _ = hoist_earliest(&mut g, id);
                    Ok(())
                }
            }
            GraphMutation::ReplaceOp { node, op } => {
                replace_op(&mut g, NodeId(*node), *op, format!("replaced:{op:?}"))
            }
        };
        if let Err(e) = r {
            return Err(MutationError::Transform { mutation: m.clone(), source: e });
        }
    }
    Ok(g)
}

/// Point-in-time counters of a [`PreparedStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PreparedStoreStats {
    /// Prepared graphs currently stored.
    pub graphs: usize,
    /// Incremental baselines currently stored (at most one per device).
    pub baselines: usize,
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Graphs dropped by the LRU-by-epoch capacity cap.
    pub evictions: u64,
}

/// A prepared graph (or the preparation error) plus the epoch stamp of
/// its last access.
type StampedGraph = (Arc<Result<Graph, MutationError>>, u64);

#[derive(Debug, Default)]
struct PreparedInner {
    base: Option<Arc<dlperf_graph::GraphIndex>>,
    /// Each prepared graph carries its last-access epoch stamp for LRU
    /// eviction under the capacity cap.
    graphs: HashMap<Vec<GraphMutation>, StampedGraph>,
    baselines: HashMap<usize, Arc<IncrementalPredictor>>,
    epoch: u64,
}

/// Prepared graphs and incremental baselines shared across runs — and,
/// via `Arc`, across engines and server workers — valid for a single base
/// graph. The base is identified by its cached
/// [`dlperf_graph::GraphIndex`] `Arc`: any structural mutation of the
/// base drops that cache (see `Graph::index`), so a changed pointer means
/// a changed base and clears the store. Holding the `Arc` keeps its
/// address from being reused by a later allocation. Everything stored is a
/// deterministic pure function of `(base, mutations)` / `(pipeline, base)`,
/// so reuse is invisible in results.
///
/// Like [`MemoCache`], the store can be capped
/// ([`PreparedStore::with_capacity`]): once `capacity` graphs are held,
/// inserting a new mutation list evicts the least-recently-accessed one.
/// Baselines are not capped — there is at most one per device. Eviction
/// changes only what gets re-prepared, never what a prepared graph
/// contains.
#[derive(Debug)]
pub struct PreparedStore {
    inner: Mutex<PreparedInner>,
    capacity: Option<usize>,
    obs: Arc<dlperf_obs::CounterGroup>,
    hits: dlperf_obs::CounterHandle,
    misses: dlperf_obs::CounterHandle,
    evictions: dlperf_obs::CounterHandle,
}

impl Default for PreparedStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PreparedStore {
    /// An empty, unbounded store.
    pub fn new() -> Self {
        Self::build(None)
    }

    /// An empty store holding at most `capacity` prepared graphs.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "prepared-store capacity must be positive");
        Self::build(Some(capacity))
    }

    fn build(capacity: Option<usize>) -> Self {
        let obs =
            dlperf_obs::CounterGroup::register("core.prepared", &["hits", "misses", "evictions"]);
        let hits = obs.handle("hits");
        let misses = obs.handle("misses");
        let evictions = obs.handle("evictions");
        PreparedStore {
            inner: Mutex::new(PreparedInner::default()),
            capacity,
            obs,
            hits,
            misses,
            evictions,
        }
    }

    /// The configured graph cap (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// This store's recorder counter group.
    pub fn counters(&self) -> &Arc<dlperf_obs::CounterGroup> {
        &self.obs
    }

    /// Clears the store unless it was built for `base_index`'s graph.
    pub fn rebase(&self, base_index: &Arc<dlperf_graph::GraphIndex>) {
        let mut inner = self.inner.lock().expect("prepared store poisoned");
        if inner.base.as_ref().is_none_or(|a| !Arc::ptr_eq(a, base_index)) {
            inner.base = Some(base_index.clone());
            inner.graphs.clear();
            inner.baselines.clear();
        }
    }

    /// The prepared graph for `mutations`, refreshing its LRU stamp.
    pub fn get(&self, mutations: &[GraphMutation]) -> Option<Arc<Result<Graph, MutationError>>> {
        let mut inner = self.inner.lock().expect("prepared store poisoned");
        inner.epoch += 1;
        let stamp = inner.epoch;
        match inner.graphs.get_mut(mutations) {
            Some(entry) => {
                entry.1 = stamp;
                self.hits.incr();
                Some(entry.0.clone())
            }
            None => {
                self.misses.incr();
                None
            }
        }
    }

    /// Stores a prepared graph, evicting the least-recently-accessed one
    /// first when a *new* mutation list would exceed the cap. Returns the
    /// stored `Arc` (the existing one if another worker raced the insert —
    /// both hold the identical pure-function result).
    pub fn insert(
        &self,
        mutations: Vec<GraphMutation>,
        graph: Arc<Result<Graph, MutationError>>,
    ) -> Arc<Result<Graph, MutationError>> {
        let mut inner = self.inner.lock().expect("prepared store poisoned");
        inner.epoch += 1;
        let stamp = inner.epoch;
        if let Some(entry) = inner.graphs.get_mut(&mutations) {
            entry.1 = stamp;
            return entry.0.clone();
        }
        if self.capacity.is_some_and(|cap| inner.graphs.len() >= cap) {
            if let Some(victim) =
                inner.graphs.iter().min_by_key(|(_, &(_, e))| e).map(|(k, _)| k.clone())
            {
                inner.graphs.remove(&victim);
                self.evictions.incr();
            }
        }
        inner.graphs.insert(mutations, (graph.clone(), stamp));
        graph
    }

    /// The incremental baseline checkpointed for `device`, if any.
    pub fn baseline(&self, device: usize) -> Option<Arc<IncrementalPredictor>> {
        self.inner.lock().expect("prepared store poisoned").baselines.get(&device).cloned()
    }

    /// Stores the incremental baseline for `device`.
    pub fn insert_baseline(&self, device: usize, baseline: Arc<IncrementalPredictor>) {
        self.inner
            .lock()
            .expect("prepared store poisoned")
            .baselines
            .insert(device, baseline);
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> PreparedStoreStats {
        let inner = self.inner.lock().expect("prepared store poisoned");
        PreparedStoreStats {
            graphs: inner.graphs.len(),
            baselines: inner.baselines.len(),
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
        }
    }

    /// Drops everything (base binding included) and zeroes the counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("prepared store poisoned");
        *inner = PreparedInner::default();
        self.hits.reset();
        self.misses.reset();
        self.evictions.reset();
    }
}

/// Default hard cap on each per-pipeline memo cache. Generous — a sweep
/// over thousands of scenarios stays far below it — but it turns the
/// engine's steady-state memory from "proportional to distinct queries
/// ever seen" into a constant, which is what a long-lived service needs.
pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 20;

/// The parallel what-if sweep engine. See the module docs.
pub struct SweepEngine {
    pipelines: Vec<Pipeline>,
    caches: Vec<Arc<MemoCache>>,
    prepared: Arc<PreparedStore>,
    threads: usize,
    use_cache: bool,
    use_incremental: bool,
    token: CancellationToken,
    /// Scenarios evaluated per supervised checkpoint step.
    chunk: usize,
    /// Parked [`WalkScratch`]es, checked out one per worker for the span
    /// of a `par_map_with` and returned on worker exit. Persisting the
    /// pool across runs is what makes *steady-state* sweeps (the serve
    /// workload: same engine, run after run) allocation-free on the
    /// pricing hot path — capacity grown in run N serves run N+1.
    scratch_pool: Mutex<Vec<WalkScratch>>,
}

/// A [`WalkScratch`] checked out of an engine's pool, returned on drop so
/// worker panics and early exits cannot leak grown capacity.
pub(crate) struct PooledScratch<'a> {
    pool: &'a Mutex<Vec<WalkScratch>>,
    scratch: Option<WalkScratch>,
}

impl<'a> PooledScratch<'a> {
    pub(crate) fn checkout(pool: &'a Mutex<Vec<WalkScratch>>) -> Self {
        let scratch = pool.lock().expect("scratch pool poisoned").pop().unwrap_or_default();
        PooledScratch { pool, scratch: Some(scratch) }
    }

    pub(crate) fn get(&mut self) -> &mut WalkScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.scratch.take() {
            if let Ok(mut pool) = self.pool.lock() {
                pool.push(s);
            }
        }
    }
}

impl SweepEngine {
    /// Wraps calibrated pipelines (one per candidate device). Thread count
    /// defaults to the machine's available parallelism; caching is on,
    /// with each per-pipeline cache capped at [`DEFAULT_MEMO_CAPACITY`].
    ///
    /// # Panics
    /// Panics if `pipelines` is empty.
    pub fn new(pipelines: Vec<Pipeline>) -> Self {
        assert!(!pipelines.is_empty(), "sweep engine needs at least one pipeline");
        let caches = pipelines
            .iter()
            .map(|_| Arc::new(MemoCache::with_capacity(DEFAULT_MEMO_CAPACITY)))
            .collect();
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        SweepEngine {
            pipelines,
            caches,
            prepared: Arc::new(PreparedStore::new()),
            threads,
            use_cache: true,
            use_incremental: true,
            token: CancellationToken::new(),
            chunk: 16,
            scratch_pool: Mutex::new(Vec::new()),
        }
    }

    /// Replaces the per-pipeline memo caches with capped ones (builder
    /// style); see [`MemoCache::with_capacity`].
    ///
    /// # Panics
    /// Panics if `capacity` is below the shard count (16).
    pub fn with_memo_capacity(mut self, capacity: usize) -> Self {
        self.caches =
            self.pipelines.iter().map(|_| Arc::new(MemoCache::with_capacity(capacity))).collect();
        self
    }

    /// Shares an externally owned prepared-graph store (builder style) —
    /// e.g. one store serving both a sweep engine and a request server.
    pub fn with_prepared_store(mut self, store: Arc<PreparedStore>) -> Self {
        self.prepared = store;
        self
    }

    /// The prepared-graph store this engine reads and fills.
    pub fn prepared_store(&self) -> &Arc<PreparedStore> {
        &self.prepared
    }

    /// Sets the worker-thread count (builder style). 1 = sequential.
    ///
    /// The effective count is capped at the machine's available
    /// parallelism: scenario pricing is CPU-bound, so oversubscribing a
    /// small host makes the sweep *slower* (context-switch and cache churn
    /// on the shared memo cache), not faster. Use
    /// [`SweepEngine::with_threads_exact`] to bypass the cap — e.g. in
    /// determinism tests, where scheduling chaos is the point.
    pub fn with_threads(mut self, threads: usize) -> Self {
        let cap = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        self.threads = threads.clamp(1, cap);
        self
    }

    /// Sets the worker-thread count with no available-parallelism cap
    /// (builder style). 1 = sequential.
    pub fn with_threads_exact(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables the incremental fast path (builder style; on by
    /// default). When on, cached runs checkpoint one baseline walk per
    /// referenced device and price each scenario by dirty-frontier
    /// re-prediction — bitwise identical to the full walk, so this toggle
    /// changes speed and [`SweepOutcome::incremental`] accounting only.
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.use_incremental = on;
        self
    }

    /// Enables or disables the kernel-model memo caches (builder style).
    pub fn with_cache(mut self, on: bool) -> Self {
        self.use_cache = on;
        self
    }

    /// Installs a cancellation token shared with a supervisor/watchdog
    /// (builder style).
    pub fn with_cancellation(mut self, token: CancellationToken) -> Self {
        self.token = token;
        self
    }

    /// Sets the scenarios-per-checkpoint granularity of supervised runs
    /// (builder style).
    ///
    /// # Panics
    /// Panics if `chunk` is zero.
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        assert!(chunk > 0, "checkpoint chunk must be positive");
        self.chunk = chunk;
        self
    }

    /// The calibrated pipelines, indexable by `Scenario::device`.
    pub fn pipelines(&self) -> &[Pipeline] {
        &self.pipelines
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Aggregate arena reuse stats over the engine's parked scratches —
    /// the observable zero-allocation proof: across steady-state runs
    /// `takes` keeps climbing while `misses` stays flat, meaning every
    /// buffer checkout on the pricing hot path was served from pooled
    /// capacity. (`high_water_f64s` and `pooled` are summed across
    /// scratches.)
    pub fn scratch_stats(&self) -> ArenaStats {
        let pool = self.scratch_pool.lock().expect("scratch pool poisoned");
        let mut agg = ArenaStats::default();
        for s in pool.iter() {
            let st = s.arena_stats();
            agg.takes += st.takes;
            agg.misses += st.misses;
            agg.high_water_f64s += st.high_water_f64s;
            agg.pooled += st.pooled;
        }
        agg
    }

    /// Merged cache counters across all per-device caches.
    pub fn cache_stats(&self) -> MemoCacheStats {
        let all: Vec<MemoCacheStats> = self.caches.iter().map(|c| c.stats()).collect();
        MemoCacheStats::merged(&all)
    }

    /// Clears all per-device caches (counters included) and the prepared
    /// graph / baseline store.
    pub fn clear_caches(&self) {
        for c in &self.caches {
            c.clear();
        }
        self.prepared.clear();
    }

    /// Prices one prepared graph on the scenario's pipeline, through the
    /// scenario device's incremental baseline when one is supplied. The
    /// returned stats are `Some` exactly when the incremental path served
    /// the prediction (values are bitwise identical either way).
    fn price(
        &self,
        s: &Scenario,
        prepared: &Result<Graph, MutationError>,
        baseline: Option<&IncrementalPredictor>,
        scratch: &mut WalkScratch,
    ) -> (ScenarioResult, Option<IncrementalStats>) {
        let _span =
            dlperf_obs::span_with(dlperf_obs::SpanKind::Work, || format!("scenario:{}", s.label));
        let counters = sweep_counters();
        counters.scenarios.incr();
        if s.device >= self.pipelines.len() {
            counters.errors.incr();
            return (
                ScenarioResult {
                    label: s.label.clone(),
                    prediction: None,
                    error: Some(format!(
                        "device index {} out of range ({} pipelines)",
                        s.device,
                        self.pipelines.len()
                    )),
                },
                None,
            );
        }
        let g = match prepared {
            Ok(g) => g,
            Err(e) => {
                counters.errors.incr();
                return (
                    ScenarioResult {
                        label: s.label.clone(),
                        prediction: None,
                        error: Some(e.to_string()),
                    },
                    None,
                )
            }
        };
        let pipeline = &self.pipelines[s.device];
        let mut stats = None;
        let pred = if let Some(b) = baseline {
            b.repredict_scratch(g, self.use_cache.then(|| &*self.caches[s.device]), scratch)
                .map(|(p, st)| {
                    stats = Some(st);
                    p
                })
        } else if self.use_cache {
            pipeline.predict_memoized_scratch(g, &self.caches[s.device], scratch)
        } else {
            pipeline.predict_scratch(g, scratch)
        };
        let result = match pred {
            Ok(p) => ScenarioResult { label: s.label.clone(), prediction: Some(p), error: None },
            Err(e) => {
                counters.errors.incr();
                ScenarioResult {
                    label: s.label.clone(),
                    prediction: None,
                    error: Some(format!("lowering failed: {e}")),
                }
            }
        };
        (result, stats)
    }

    /// Prices one scenario end to end (transform + predict) — the shared
    /// pure function of the naive (cache-off) and supervised paths.
    fn eval(&self, base: &Graph, s: &Scenario, scratch: &mut WalkScratch) -> ScenarioResult {
        self.price(s, &prepare_graph(base, &s.mutations), None, scratch).0
    }

    /// Runs the sweep on the configured thread count.
    pub fn run(&self, base: &Graph, scenarios: &[Scenario]) -> SweepOutcome {
        self.run_on(self.threads, base, scenarios)
    }

    /// Runs the sweep strictly sequentially (the bitwise reference path).
    pub fn run_sequential(&self, base: &Graph, scenarios: &[Scenario]) -> SweepOutcome {
        self.run_on(1, base, scenarios)
    }

    fn run_on(&self, threads: usize, base: &Graph, scenarios: &[Scenario]) -> SweepOutcome {
        let _span = dlperf_obs::span("sweep.run", dlperf_obs::SpanKind::Phase);
        sweep_counters().runs.incr();
        let start = Instant::now();
        let mut summary = IncrementalSummary::default();
        let results: Vec<Option<ScenarioResult>> = if self.use_cache {
            // Phase 1: prepare each distinct mutation list once, in
            // parallel — scenarios differing only in device share the
            // transformed graph, and lists already prepared by an earlier
            // run on this base are taken from the store as-is (their
            // cached graph index rides along, so re-sweeps also skip the
            // signature pass).
            let mut unique: Vec<&[GraphMutation]> = Vec::new();
            let mut index: HashMap<&[GraphMutation], usize> = HashMap::new();
            for s in scenarios {
                index.entry(s.mutations.as_slice()).or_insert_with(|| {
                    unique.push(s.mutations.as_slice());
                    unique.len() - 1
                });
            }
            let base_index = base.index();
            self.prepared.rebase(&base_index);
            let stored: Vec<Option<Arc<Result<Graph, MutationError>>>> =
                unique.iter().map(|muts| self.prepared.get(muts)).collect();
            let missing: Vec<&[GraphMutation]> = unique
                .iter()
                .zip(&stored)
                .filter(|(_, s)| s.is_none())
                .map(|(m, _)| *m)
                .collect();
            let fresh = par_map(threads, &self.token, &missing, |_, muts| {
                Arc::new(prepare_graph(base, muts))
            });
            // A `None` prepared slot means cancellation hit phase 1; the
            // dependent scenarios stay unvisited (`None`), matching what a
            // cancelled sequential run leaves behind. The `Arc` clones held
            // here keep this run's graphs alive even if a capped store
            // evicts them mid-run.
            let mut fresh_iter = fresh.into_iter();
            let prepared: Vec<Option<Arc<Result<Graph, MutationError>>>> = unique
                .iter()
                .zip(stored)
                .map(|(muts, slot)| match slot {
                    Some(g) => Some(g),
                    None => {
                        let g = fresh_iter.next().expect("one fresh slot per miss")?;
                        Some(self.prepared.insert(muts.to_vec(), g))
                    }
                })
                .collect();
            // One checkpointed baseline walk per device the scenario list
            // references (reused across runs); pricing then recomputes only
            // each scenario's dirty frontier. Skipped when the incremental
            // path is off or the base graph fails to lower (pricing falls
            // back to the plain memoized walk — same bits either way).
            let baselines: Vec<Option<Arc<IncrementalPredictor>>> = (0..self.pipelines.len())
                .map(|d| {
                    if !(self.use_incremental
                        && !self.token.is_cancelled()
                        && scenarios.iter().any(|s| s.device == d))
                    {
                        return None;
                    }
                    if let Some(b) = self.prepared.baseline(d) {
                        return Some(b);
                    }
                    let b = IncrementalPredictor::with_cache(
                        self.pipelines[d].predictor().clone(),
                        base.clone(),
                        &self.caches[d],
                    )
                    .ok()
                    .map(Arc::new)?;
                    self.prepared.insert_baseline(d, b.clone());
                    Some(b)
                })
                .collect();
            // Phase 2: price every scenario against its prepared graph,
            // each worker reusing one pooled scratch across all the
            // scenarios it claims.
            let priced: Vec<Option<(ScenarioResult, Option<IncrementalStats>)>> =
                par_map_with(
                    threads,
                    &self.token,
                    scenarios,
                    || PooledScratch::checkout(&self.scratch_pool),
                    |scratch, _, s| {
                        prepared[index[s.mutations.as_slice()]].as_ref().map(|graph| {
                            self.price(
                                s,
                                graph,
                                baselines.get(s.device).and_then(|b| b.as_deref()),
                                scratch.get(),
                            )
                        })
                    },
                )
                .into_iter()
                .map(Option::flatten)
                .collect();
            for slot in &priced {
                if let Some((_, Some(stats))) = slot {
                    summary.absorb(stats);
                }
            }
            priced.into_iter().map(|slot| slot.map(|(result, _)| result)).collect()
        } else {
            par_map_with(
                threads,
                &self.token,
                scenarios,
                || PooledScratch::checkout(&self.scratch_pool),
                |scratch, _, s| self.eval(base, s, scratch.get()),
            )
        };
        let cancelled = results.iter().any(|r| r.is_none());
        if cancelled {
            sweep_counters().cancelled.incr();
        }
        SweepOutcome {
            results,
            cancelled,
            threads,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            cache: self.use_cache.then(|| self.cache_stats()),
            incremental: (summary.scenarios > 0).then_some(summary),
        }
    }

    /// Runs the sweep under a [`Supervisor`]: scenarios are evaluated in
    /// chunks of [`SweepEngine::with_chunk`] size, each chunk one
    /// checkpointable step, so a killed sweep resumes from its last
    /// snapshot and still produces bitwise-identical results (every
    /// evaluation is a pure function; see the module docs).
    pub fn run_supervised(
        &self,
        base: &Graph,
        scenarios: &[Scenario],
        supervisor: &mut Supervisor,
    ) -> (Result<Vec<ScenarioResult>, SupervisorError>, RunReport) {
        let job = SweepJob { engine: self, base, scenarios };
        let (result, report) = supervisor.run(&job);
        (result.map(|state| state.results), report)
    }
}

impl std::fmt::Debug for SweepEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepEngine")
            .field("pipelines", &self.pipelines.len())
            .field("threads", &self.threads)
            .field("use_cache", &self.use_cache)
            .field("chunk", &self.chunk)
            .finish()
    }
}

/// Resumable progress of a supervised sweep.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SweepState {
    /// Results of the scenarios evaluated so far, in input order.
    results: Vec<ScenarioResult>,
}

/// A sweep packaged as a [`ResumableJob`]: step `i` always evaluates the
/// `i`-th chunk of the scenario list, independent of earlier steps.
struct SweepJob<'a> {
    engine: &'a SweepEngine,
    base: &'a Graph,
    scenarios: &'a [Scenario],
}

impl ResumableJob for SweepJob<'_> {
    type State = SweepState;
    type Output = SweepState;

    fn name(&self) -> &str {
        "core.sweep"
    }

    fn initial_state(&self) -> SweepState {
        SweepState::default()
    }

    fn step(&self, state: &mut SweepState, ctx: &JobContext) -> Result<StepOutcome, JobError> {
        ctx.check_cancelled()?;
        let done = state.results.len();
        let chunk =
            &self.scenarios[done..(done + self.engine.chunk).min(self.scenarios.len())];
        let results = par_map_with(
            self.engine.threads,
            &self.engine.token,
            chunk,
            || PooledScratch::checkout(&self.engine.scratch_pool),
            |scratch, _, s| self.engine.eval(self.base, s, scratch.get()),
        );
        for r in results {
            match r {
                Some(r) => state.results.push(r),
                None => return Err(JobError::Cancelled),
            }
        }
        if state.results.len() < self.scenarios.len() {
            Ok(StepOutcome::Continue)
        } else {
            Ok(StepOutcome::Done)
        }
    }

    fn finish(&self, state: SweepState) -> SweepState {
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_gpusim::DeviceSpec;
    use dlperf_kernels::CalibrationEffort;
    use dlperf_models::DlrmConfig;
    use dlperf_runtime::SupervisorConfig;

    fn engine() -> (SweepEngine, Graph) {
        let g = DlrmConfig {
            rows_per_table: vec![50_000; 4],
            ..DlrmConfig::default_config(256)
        }
        .build();
        let pipe = Pipeline::analyze(
            &DeviceSpec::v100(),
            std::slice::from_ref(&g),
            CalibrationEffort::Quick,
            6,
            21,
        );
        (SweepEngine::new(vec![pipe]), g)
    }

    fn bits(o: &SweepOutcome) -> Vec<(String, Option<u64>)> {
        o.expect_complete()
            .iter()
            .map(|r| (r.label.clone(), r.prediction.as_ref().map(|p| p.e2e_us.to_bits())))
            .collect()
    }

    #[test]
    fn matrix_enumerates_cross_product_deterministically() {
        let m = ScenarioMatrix::new()
            .device("V100", 0)
            .device("P100", 1)
            .batches(&[128, 256])
            .variant("base", vec![])
            .variant("hoisted", vec![GraphMutation::HoistAll]);
        let scenarios = m.build();
        assert_eq!(scenarios.len(), 8);
        assert_eq!(scenarios[0].label, "V100/b128/base");
        assert_eq!(scenarios[7].label, "P100/b256/hoisted");
        assert_eq!(scenarios, m.build(), "enumeration is deterministic");
        // No strategy axis → no tag, and serialized cells carry no key at
        // all, so pre-axis sweep JSON round-trips unchanged.
        assert!(scenarios.iter().all(|s| s.strategy.is_none()));
        let json = serde_json::to_string(&scenarios[0]).unwrap();
        assert!(!json.contains("strategy"), "{json}");
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, scenarios[0]);
    }

    #[test]
    fn strategy_axis_tags_cells_and_extends_labels() {
        let m = ScenarioMatrix::new()
            .device("V100", 0)
            .batches(&[128])
            .strategies(&["hybrid", "dp"]);
        let scenarios = m.build();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].label, "V100/b128/base/hybrid");
        assert_eq!(scenarios[1].label, "V100/b128/base/dp");
        assert_eq!(scenarios[1].strategy.as_deref(), Some("dp"));
        // The tag is pass-through on this engine: identical pricing.
        let (eng, g) = engine();
        let out = eng.run_sequential(&g, &scenarios);
        let b = bits(&out);
        assert_eq!(b[0].1, b[1].1, "strategy tag must not change single-GPU pricing");
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let (eng, g) = engine();
        let scenarios = ScenarioMatrix::new()
            .device("V100", 0)
            .batches(&[128, 256, 512])
            .variant("base", vec![])
            .variant("hoisted", vec![GraphMutation::HoistAll])
            .build();
        let seq = eng.run_sequential(&g, &scenarios);
        let par = eng.with_threads_exact(4).run(&g, &scenarios);
        assert_eq!(bits(&seq), bits(&par));
    }

    #[test]
    fn with_threads_caps_at_available_parallelism() {
        let (eng, _) = engine();
        let cap = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert_eq!(eng.with_threads(4096).threads(), cap);
        let (eng, _) = engine();
        assert_eq!(eng.with_threads_exact(4096).threads(), 4096);
    }

    #[test]
    fn incremental_on_off_bitwise_identical_with_summary() {
        let (eng, g) = engine();
        let mut scenarios = vec![Scenario::new("base", 0)];
        for i in 0..4 {
            scenarios.push(
                Scenario::new(format!("swap{i}"), 0).with(GraphMutation::ReplaceOp {
                    node: g.node_count() / 2 + i,
                    op: OpKind::Sigmoid,
                }),
            );
        }
        let on = eng.run_sequential(&g, &scenarios);
        let summary = on.incremental.expect("incremental path on by default");
        assert!(summary.scenarios >= 1 && summary.scenarios <= scenarios.len());
        assert!(summary.reused_nodes > summary.recomputed_nodes);
        assert!(summary.spliced >= 1, "the unmutated scenario must splice: {summary:?}");

        let off = eng.with_incremental(false).run_sequential(&g, &scenarios);
        assert!(off.incremental.is_none());
        assert_eq!(bits(&on), bits(&off));
    }

    #[test]
    fn scratch_pool_reuses_capacity_across_runs_without_changing_bits() {
        // Cache off so every run actually performs batched inference (the
        // arena consumer); a warm memo cache would answer run 2 entirely
        // from hits and leave the arena untouched.
        let (eng, g) = engine();
        let eng = eng.with_cache(false);
        let scenarios = ScenarioMatrix::new()
            .device("V100", 0)
            .batches(&[128, 256])
            .variant("base", vec![])
            .variant("hoisted", vec![GraphMutation::HoistAll])
            .build();
        let first = eng.run_sequential(&g, &scenarios);
        let warm = eng.scratch_stats();
        assert!(warm.takes > 0, "pricing must go through the pooled scratches");
        assert!(warm.pooled > 0, "arena buffers must be parked between runs");

        // Steady state: the same sweep re-run on the warmed engine serves
        // every buffer checkout from pooled capacity and prices the same
        // bits.
        let second = eng.run_sequential(&g, &scenarios);
        let steady = eng.scratch_stats();
        assert_eq!(bits(&first), bits(&second));
        assert!(steady.takes > warm.takes);
        assert_eq!(steady.misses, warm.misses, "steady-state sweep must not allocate: {steady:?}");
    }

    #[test]
    fn replace_and_hoist_mutations_price_and_bad_positions_error() {
        let (eng, g) = engine();
        let scenarios = vec![
            Scenario::new("swap", 0)
                .with(GraphMutation::ReplaceOp { node: g.node_count() / 2, op: OpKind::Sigmoid }),
            Scenario::new("hoist-one", 0).with(GraphMutation::HoistNode(g.node_count() - 2)),
            Scenario::new("hoist-oob", 0).with(GraphMutation::HoistNode(g.node_count() + 7)),
            Scenario::new("swap-oob", 0)
                .with(GraphMutation::ReplaceOp { node: g.node_count() + 7, op: OpKind::Relu }),
        ];
        let out = eng.run(&g, &scenarios);
        let rs = out.expect_complete();
        assert!(rs[0].prediction.is_some(), "{:?}", rs[0].error);
        assert!(rs[1].prediction.is_some(), "{:?}", rs[1].error);
        assert!(rs[2].error.as_deref().unwrap().contains("out of range"));
        assert!(rs[3].error.is_some());
    }

    #[test]
    fn cache_on_off_equivalent_and_counts_hits() {
        let (eng, g) = engine();
        let scenarios = ScenarioMatrix::new()
            .device("V100", 0)
            .batches(&[256, 512])
            .variant("base", vec![])
            .variant("hoisted", vec![GraphMutation::HoistAll])
            .build();
        let cached = eng.run(&g, &scenarios);
        let stats = cached.cache.expect("cache enabled");
        assert!(stats.hits > 0, "hoisted variant shares every kernel: {stats}");
        let uncached = eng.with_cache(false).run(&g, &scenarios);
        assert!(uncached.cache.is_none());
        assert_eq!(bits(&cached), bits(&uncached));
    }

    #[test]
    fn bad_scenarios_record_errors_not_panics() {
        let (eng, g) = engine();
        let scenarios = vec![
            Scenario::new("ok", 0),
            Scenario::new("bad-device", 7),
            Scenario::new("bad-resize", 0).with(GraphMutation::ResizeBatch(0)),
        ];
        let out = eng.run(&g, &scenarios);
        let rs = out.expect_complete();
        assert!(rs[0].prediction.is_some());
        assert!(rs[1].error.as_deref().unwrap().contains("out of range"));
        assert!(rs[2].error.is_some());
    }

    #[test]
    fn cancelled_token_short_circuits() {
        let (eng, g) = engine();
        let token = CancellationToken::new();
        token.cancel();
        let eng = eng.with_cancellation(token);
        let scenarios =
            ScenarioMatrix::new().device("V100", 0).batches(&[128, 256]).build();
        let out = eng.run(&g, &scenarios);
        assert!(out.cancelled);
        assert_eq!(out.completed(), 0);
    }

    #[test]
    fn supervised_sweep_matches_direct_run() {
        let (eng, g) = engine();
        let scenarios = ScenarioMatrix::new()
            .device("V100", 0)
            .batches(&[128, 256, 512])
            .variant("base", vec![])
            .build();
        let direct = eng.run(&g, &scenarios);
        let eng2 = eng.with_chunk(2);
        let mut sup = Supervisor::new(SupervisorConfig::default());
        let (res, report) = eng2.run_supervised(&g, &scenarios, &mut sup);
        let supervised = res.expect("supervised sweep completes");
        assert_eq!(report.steps_completed, 2, "3 scenarios over chunk=2");
        let direct_bits: Vec<Option<u64>> = direct
            .expect_complete()
            .iter()
            .map(|r| r.prediction.as_ref().map(|p| p.e2e_us.to_bits()))
            .collect();
        let sup_bits: Vec<Option<u64>> = supervised
            .iter()
            .map(|r| r.prediction.as_ref().map(|p| p.e2e_us.to_bits()))
            .collect();
        assert_eq!(direct_bits, sup_bits);
    }
}
