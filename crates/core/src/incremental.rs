//! Incremental E2E re-prediction with dirty-node propagation.
//!
//! A what-if sweep prices hundreds of graphs that differ from a shared
//! baseline by a handful of nodes. A full Algorithm 1 walk re-lowers and
//! re-prices every node anyway; this module checkpoints the baseline walk
//! once and, on re-prediction, recomputes only the **dirty frontier** —
//! the contiguous node span whose structural signatures changed — splicing
//! the recorded prefix clock state back in and reusing the baseline's
//! per-node cost bundles for the unchanged suffix.
//!
//! ## Why the result is bitwise identical to a full walk
//!
//! * Per-node cost bundles ([`NodeCosts`]) are pure functions of a node's
//!   structural signature (op, stream, input/output tensor ids + metadata)
//!   and the predictor's frozen registry/overheads. Equal signatures ⇒
//!   bitwise-equal bundles, so reusing a baseline bundle is invisible.
//! * The clock arithmetic lives in one place — [`WalkState::step`] — used
//!   by both the full and the incremental walk, so the incremental path
//!   replays the *same float operation sequence* over the same values.
//! * Prefix state is not re-derived arithmetically (float addition is not
//!   shift-invariant); it is **replayed** from recorded post-step scalars
//!   and the recorded stream/tensor writes, reproducing the exact bits the
//!   full walk would hold at that point.
//! * A suffix is *spliced* (the baseline's final prediction returned
//!   without walking it) only after proving bitwise state reconvergence at
//!   the suffix boundary: CPU/active/degraded scalars, every stream clock,
//!   and the readiness of every tensor any suffix node reads must all
//!   match the baseline's recorded state bit for bit. If any differs, the
//!   suffix is walked normally (still reusing its cost bundles).
//!
//! When nothing matches (e.g. a `ResizeBatch` rewrites every tensor's
//! metadata, dirtying all signatures) the incremental path degenerates to
//! exactly the full batch walk — correct, merely not faster — and reports
//! `full_fallback`.

use dlperf_graph::lower::{self, LowerError};
use dlperf_graph::{common_affix, Graph};
use dlperf_gpusim::KernelSpec;
use dlperf_kernels::{Confidence, MemoCache, MemoScratch};
use dlperf_nn::arena::ScratchArena;

use crate::predictor::{E2ePredictor, NodeCosts, Prediction, WalkScratch, WalkState};

/// What one incremental re-prediction did, for observability and bench
/// accounting. All node counts refer to the *new* graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncrementalStats {
    /// Leading nodes whose signatures matched the baseline (state replayed
    /// from the checkpoint instead of re-priced).
    pub prefix: usize,
    /// Trailing nodes whose signatures matched (cost bundles reused; walk
    /// skipped entirely when spliced).
    pub suffix: usize,
    /// Dirty nodes that were re-lowered and re-priced.
    pub recomputed: usize,
    /// Whether the suffix walk was skipped after proving bitwise state
    /// reconvergence at the suffix boundary.
    pub spliced: bool,
    /// Whether nothing was reusable and the walk degenerated to a full
    /// re-prediction.
    pub full_fallback: bool,
}

impl IncrementalStats {
    /// Mirrors this re-prediction's outcome into the process-wide
    /// `core.incremental` recorder counters.
    fn record(&self) {
        let c = incremental_counters();
        c.repredictions.incr();
        c.reused_nodes.add((self.prefix + self.suffix) as u64);
        c.recomputed_nodes.add(self.recomputed as u64);
        if self.spliced {
            c.spliced.incr();
        }
        if self.full_fallback {
            c.full_fallbacks.incr();
        }
    }
}

/// Process-wide incremental-reprediction counters; the per-call numbers
/// stay in [`IncrementalStats`], these aggregate across every predictor
/// instance for the recorder's snapshot.
struct IncrementalCounters {
    _group: std::sync::Arc<dlperf_obs::CounterGroup>,
    repredictions: dlperf_obs::CounterHandle,
    reused_nodes: dlperf_obs::CounterHandle,
    recomputed_nodes: dlperf_obs::CounterHandle,
    spliced: dlperf_obs::CounterHandle,
    full_fallbacks: dlperf_obs::CounterHandle,
}

fn incremental_counters() -> &'static IncrementalCounters {
    static G: std::sync::OnceLock<IncrementalCounters> = std::sync::OnceLock::new();
    G.get_or_init(|| {
        let group = dlperf_obs::CounterGroup::register(
            "core.incremental",
            &["repredictions", "reused_nodes", "recomputed_nodes", "spliced", "full_fallbacks"],
        );
        IncrementalCounters {
            repredictions: group.handle("repredictions"),
            reused_nodes: group.handle("reused_nodes"),
            recomputed_nodes: group.handle("recomputed_nodes"),
            spliced: group.handle("spliced"),
            full_fallbacks: group.handle("full_fallbacks"),
            _group: group,
        }
    })
}

/// A checkpointed Algorithm 1 walk over a baseline graph, supporting
/// bitwise-exact incremental re-prediction of mutated variants.
///
/// Construction runs (and records) one full walk; [`repredict`] then
/// prices any graph, reusing whatever prefix/suffix of the baseline
/// survives in the new graph's signature sequence.
///
/// [`repredict`]: IncrementalPredictor::repredict
#[derive(Debug, Clone)]
pub struct IncrementalPredictor {
    predictor: E2ePredictor,
    base: Graph,
    /// Structural signatures of the baseline nodes (from the graph index).
    sigs: Vec<u64>,
    /// Priced cost bundle of every baseline node.
    costs: Vec<NodeCosts>,
    /// CPU clock after each step.
    cpu_after: Vec<f64>,
    /// GPU active sum after each step.
    active_after: Vec<f64>,
    /// Degraded-kernel count after each step.
    degraded_after: Vec<usize>,
    /// The stream write of each step: `(stream, clock after the node's last
    /// kernel)`, `None` for kernel-less nodes. Replaying these in order
    /// reproduces the stream map at any node boundary.
    stream_after: Vec<Option<(usize, f64)>>,
    /// The readiness time each step assigned to its output tensors.
    ready_val: Vec<f64>,
    /// The baseline's full-walk prediction.
    prediction: Prediction,
}

impl IncrementalPredictor {
    /// Checkpoints a baseline walk, pricing kernels directly.
    ///
    /// # Errors
    /// Returns a [`LowerError`] if the baseline graph is malformed.
    pub fn new(predictor: E2ePredictor, base: Graph) -> Result<Self, LowerError> {
        Self::build(predictor, base, None)
    }

    /// Checkpoints a baseline walk, pricing kernels through `cache` (which
    /// must be dedicated to the predictor's registry). The same cache
    /// should then be passed to [`IncrementalPredictor::repredict`].
    ///
    /// # Errors
    /// Returns a [`LowerError`] if the baseline graph is malformed.
    pub fn with_cache(
        predictor: E2ePredictor,
        base: Graph,
        cache: &MemoCache,
    ) -> Result<Self, LowerError> {
        Self::build(predictor, base, Some(cache))
    }

    fn build(
        predictor: E2ePredictor,
        base: Graph,
        cache: Option<&MemoCache>,
    ) -> Result<Self, LowerError> {
        let costs = predictor.node_costs_batch(&base, |specs| eval(&predictor, cache, specs))?;
        let n = base.node_count();
        let mut state = WalkState::new();
        let mut cpu_after = Vec::with_capacity(n);
        let mut active_after = Vec::with_capacity(n);
        let mut degraded_after = Vec::with_capacity(n);
        let mut stream_after = Vec::with_capacity(n);
        let mut ready_val = Vec::with_capacity(n);
        for (node, c) in base.nodes().iter().zip(&costs) {
            state.step(node, c, predictor.kernel_gap(), predictor.launch());
            cpu_after.push(state.cpu);
            active_after.push(state.active);
            degraded_after.push(state.degraded);
            if c.kernels.is_empty() {
                stream_after.push(None);
                ready_val.push(state.cpu);
            } else {
                let clock = state
                    .stream_clock(node.stream)
                    .expect("a kernel-launching node touches its stream");
                stream_after.push(Some((node.stream, clock)));
                ready_val.push(clock);
            }
        }
        let prediction = state.finish();
        let sigs = base.index().signatures().to_vec();
        Ok(IncrementalPredictor {
            predictor,
            base,
            sigs,
            costs,
            cpu_after,
            active_after,
            degraded_after,
            stream_after,
            ready_val,
            prediction,
        })
    }

    /// The baseline's full-walk prediction.
    pub fn baseline_prediction(&self) -> Prediction {
        self.prediction
    }

    /// The wrapped predictor.
    pub fn predictor(&self) -> &E2ePredictor {
        &self.predictor
    }

    /// The baseline graph.
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// Prices `graph` incrementally against the baseline. Bitwise identical
    /// to `self.predictor().predict(graph)` on every [`Prediction`] field
    /// (see the module docs for the argument); `tests/incremental.rs` pins
    /// the property across random mutation sequences.
    ///
    /// Pass the same `cache` used at construction so dirty-node kernel
    /// queries keep feeding the shared memo cache.
    ///
    /// # Errors
    /// Returns a [`LowerError`] if a dirty node is malformed.
    pub fn repredict(
        &self,
        graph: &Graph,
        cache: Option<&MemoCache>,
    ) -> Result<(Prediction, IncrementalStats), LowerError> {
        let mut scratch = WalkScratch::new();
        self.repredict_scratch(graph, cache, &mut scratch)
    }

    /// [`IncrementalPredictor::repredict`] staging every intermediate —
    /// dirty-frontier specs, ranges, overheads and values, the replayed
    /// walk states, memo probing and MLP forward buffers — in `scratch`,
    /// so steady-state re-predictions of same-shaped mutations allocate
    /// nothing. Bitwise identical to the owning path: the same evaluator,
    /// the same recorded-write replay, the same frozen stepping sequence.
    ///
    /// # Errors
    /// Returns a [`LowerError`] if a dirty node is malformed.
    pub fn repredict_scratch(
        &self,
        graph: &Graph,
        cache: Option<&MemoCache>,
        scratch: &mut WalkScratch,
    ) -> Result<(Prediction, IncrementalStats), LowerError> {
        let _span = dlperf_obs::span("incremental.repredict", dlperf_obs::SpanKind::Work);
        let n_base = self.base.node_count();
        let n_new = graph.node_count();
        let new_index = graph.index();
        let (prefix, suffix) = common_affix(&self.sigs, new_index.signatures());
        let dirty_end = n_new - suffix;
        let mut stats = IncrementalStats {
            prefix,
            suffix,
            recomputed: dirty_end - prefix,
            spliced: false,
            full_fallback: prefix == 0 && suffix == 0 && n_new > 0,
        };

        // Structurally identical graph: the walk would replay the baseline
        // verbatim, so return its prediction directly.
        if prefix == n_new && n_base == n_new {
            stats.spliced = true;
            stats.record();
            return Ok((self.prediction, stats));
        }

        // Lower and price the dirty frontier in one batched evaluation.
        scratch.specs.clear();
        scratch.ranges.clear();
        scratch.oh.clear();
        scratch.values.clear();
        for node in &graph.nodes()[prefix..dirty_end] {
            let start = scratch.specs.len();
            scratch.specs.extend(lower::try_kernels(graph, node)?);
            scratch.ranges.push(start..scratch.specs.len());
            scratch.oh.push(self.predictor.overheads_of(node.op.overhead_key()));
        }
        eval_into(
            &self.predictor,
            cache,
            &scratch.specs,
            &mut scratch.memo,
            &mut scratch.arena,
            &mut scratch.values,
        );

        // Replay the recorded prefix state, then walk the dirty span.
        self.state_at_into(prefix, &mut scratch.state);
        let gap = self.predictor.kernel_gap();
        let launch = self.predictor.launch();
        for ((node, r), oh) in
            graph.nodes()[prefix..dirty_end].iter().zip(&scratch.ranges).zip(&scratch.oh)
        {
            scratch.state.step_parts(node, oh, &scratch.values[r.clone()], gap, launch);
        }

        if suffix > 0 {
            // Splice: if the state at the suffix boundary reconverged to the
            // baseline's bit for bit, the suffix walk would reproduce the
            // baseline's tail exactly — skip it.
            self.state_at_into(n_base - suffix, &mut scratch.base_state);
            if splice_matches(&scratch.state, &scratch.base_state, graph, dirty_end) {
                stats.spliced = true;
                stats.record();
                return Ok((self.prediction, stats));
            }
            // Otherwise walk the suffix, reusing its baseline cost bundles
            // (pure in the unchanged signatures).
            for (j, node) in graph.nodes().iter().enumerate().skip(dirty_end) {
                scratch.state.step(node, &self.costs[j + n_base - n_new], gap, launch);
            }
        }
        stats.record();
        Ok((scratch.state.finish(), stats))
    }

    /// Reconstructs the walk state after baseline nodes `0..upto` by
    /// restoring the recorded scalars and replaying the recorded stream and
    /// tensor-readiness writes — the exact values the full walk inserted,
    /// in the same last-write-wins order. Writes into `state` (reset
    /// first), reusing its container capacities.
    fn state_at_into(&self, upto: usize, state: &mut WalkState) {
        state.reset();
        if upto > 0 {
            state.cpu = self.cpu_after[upto - 1];
            state.active = self.active_after[upto - 1];
            state.degraded = self.degraded_after[upto - 1];
        }
        for ((node, stream_w), &ready) in self.base.nodes()[..upto]
            .iter()
            .zip(&self.stream_after)
            .zip(&self.ready_val)
        {
            if let Some((stream, clock)) = *stream_w {
                state.set_stream(stream, clock);
            }
            for &out in &node.outputs {
                state.set_ready(out, ready);
            }
        }
    }
}

/// Whether `state` (the incremental walk's state entering the suffix) and
/// `base_state` (the baseline's recorded state entering *its* suffix)
/// match on every quantity the suffix walk starting at new-graph node
/// `suffix_start` or the final [`WalkState::finish`] can observe.
fn splice_matches(
    state: &WalkState,
    base_state: &WalkState,
    graph: &Graph,
    suffix_start: usize,
) -> bool {
    if state.cpu.to_bits() != base_state.cpu.to_bits()
        || state.active.to_bits() != base_state.active.to_bits()
        || state.degraded != base_state.degraded
        || state.streams.len() != base_state.streams.len()
    {
        return false;
    }
    // Every stream clock feeds `finish()`'s max, so all must match.
    for &(stream, clock) in &state.streams {
        match base_state.stream_clock(stream) {
            Some(b) if b.to_bits() == clock.to_bits() => {}
            _ => return false,
        }
    }
    // Only tensors a suffix node reads can influence the tail; their
    // readiness (or absence) must agree. Stricter than necessary for
    // tensors rewritten inside the suffix before being read — safe.
    for node in &graph.nodes()[suffix_start..] {
        for t in &node.inputs {
            if state.ready_bits(*t) != base_state.ready_bits(*t) {
                return false;
            }
        }
    }
    true
}

/// Batched kernel evaluation, memoized when a cache is supplied — the one
/// evaluator both the baseline build and the dirty frontier use.
fn eval(
    predictor: &E2ePredictor,
    cache: Option<&MemoCache>,
    specs: &[KernelSpec],
) -> Vec<(f64, Confidence)> {
    match cache {
        Some(c) => predictor.registry().predict_batch_memoized(c, specs),
        None => predictor.registry().predict_batch_with_confidence(specs),
    }
}

/// The scratch-staged form of [`eval`]: appends predictions to `out`
/// through the caller's memo staging and arena instead of allocating.
fn eval_into(
    predictor: &E2ePredictor,
    cache: Option<&MemoCache>,
    specs: &[KernelSpec],
    memo: &mut MemoScratch,
    arena: &mut ScratchArena,
    out: &mut Vec<(f64, Confidence)>,
) {
    match cache {
        Some(c) => predictor.registry().predict_batch_memoized_into(c, specs, memo, arena, out),
        None => predictor.registry().predict_batch_with_confidence_into(specs, arena, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use dlperf_gpusim::DeviceSpec;
    use dlperf_graph::transform::{hoist_earliest, replace_op, resize_batch};
    use dlperf_graph::{NodeId, OpKind};
    use dlperf_kernels::CalibrationEffort;
    use dlperf_models::DlrmConfig;

    fn setup() -> (Graph, E2ePredictor) {
        let g = DlrmConfig {
            rows_per_table: vec![50_000; 4],
            ..DlrmConfig::default_config(256)
        }
        .build();
        let pipe = Pipeline::analyze(
            &DeviceSpec::v100(),
            std::slice::from_ref(&g),
            CalibrationEffort::Quick,
            6,
            23,
        );
        let predictor = pipe.predictor().clone();
        (g, predictor)
    }

    fn bits(p: &Prediction) -> [u64; 4] {
        [p.e2e_us.to_bits(), p.active_us.to_bits(), p.cpu_us.to_bits(), p.gpu_us.to_bits()]
    }

    #[test]
    fn identical_graph_splices_to_baseline() {
        let (g, predictor) = setup();
        let inc = IncrementalPredictor::new(predictor.clone(), g.clone()).unwrap();
        let (p, stats) = inc.repredict(&g, None).unwrap();
        assert_eq!(bits(&p), bits(&inc.baseline_prediction()));
        assert!(stats.spliced);
        assert_eq!(stats.recomputed, 0);
    }

    #[test]
    fn single_op_replacement_recomputes_a_narrow_frontier() {
        let (g, predictor) = setup();
        let inc = IncrementalPredictor::new(predictor.clone(), g.clone()).unwrap();
        let mut mutated = g.clone();
        let mid = NodeId(mutated.node_count() / 2);
        let op = mutated.node(mid).unwrap().op;
        let swapped = if op == OpKind::Relu { OpKind::Sigmoid } else { OpKind::Relu };
        replace_op(&mut mutated, mid, swapped, "swapped").unwrap();

        let (p, stats) = inc.repredict(&mutated, None).unwrap();
        let full = predictor.predict(&mutated).unwrap();
        assert_eq!(bits(&p), bits(&full), "incremental must be bitwise exact");
        assert_eq!(p.degraded_kernels, full.degraded_kernels);
        assert!(
            stats.recomputed < mutated.node_count(),
            "one swapped op must not dirty the whole graph: {stats:?}"
        );
        assert!(stats.prefix > 0 && stats.suffix > 0);
    }

    #[test]
    fn resize_falls_back_to_full_walk_and_stays_exact() {
        let (g, predictor) = setup();
        let inc = IncrementalPredictor::new(predictor.clone(), g.clone()).unwrap();
        let mut mutated = g.clone();
        resize_batch(&mut mutated, 512).unwrap();
        let (p, stats) = inc.repredict(&mutated, None).unwrap();
        let full = predictor.predict(&mutated).unwrap();
        assert_eq!(bits(&p), bits(&full));
        // A resize rewrites (almost) every tensor's metadata: no prefix
        // survives and the vast majority of nodes are re-priced.
        assert_eq!(stats.prefix, 0, "{stats:?}");
        assert!(stats.recomputed > mutated.node_count() * 9 / 10, "{stats:?}");
    }

    #[test]
    fn reorder_is_exact() {
        let (g, predictor) = setup();
        let inc = IncrementalPredictor::new(predictor.clone(), g.clone()).unwrap();
        let mut mutated = g.clone();
        let id = mutated.nodes()[mutated.node_count() - 2].id;
        let _ = hoist_earliest(&mut mutated, id);
        let (p, _) = inc.repredict(&mutated, None).unwrap();
        let full = predictor.predict(&mutated).unwrap();
        assert_eq!(bits(&p), bits(&full));
    }

    #[test]
    fn memoized_repredict_matches_uncached() {
        let (g, predictor) = setup();
        let cache = MemoCache::new();
        let inc = IncrementalPredictor::with_cache(predictor.clone(), g.clone(), &cache).unwrap();
        let mut mutated = g.clone();
        resize_batch(&mut mutated, 128).unwrap();
        let (cached, _) = inc.repredict(&mutated, Some(&cache)).unwrap();
        let plain = predictor.predict(&mutated).unwrap();
        assert_eq!(bits(&cached), bits(&plain));
        assert!(cache.stats().misses > 0);
    }
}
