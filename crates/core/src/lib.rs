//! # dlperf-core
//!
//! The paper's primary contribution: a critical-path-based end-to-end
//! performance model for GPU training of DLRM (and other DL models).
//!
//! * [`predictor`] — Algorithm 1: walks the execution graph keeping both a
//!   CPU and a GPU clock, combining per-kernel predictions from the
//!   [`dlperf_kernels::ModelRegistry`] with per-op overhead means from the
//!   [`dlperf_trace::OverheadStats`] database, so that device idle time
//!   caused by unhidden host overheads is part of the prediction.
//! * [`pipeline`] — the Fig. 3 two-track workflow: an *Analysis Track*
//!   (trace collection, overhead extraction, microbenchmarks, model
//!   training) producing reusable assets, and a *Prediction Track* that
//!   prices any execution graph in milliseconds of compute.
//! * [`baselines`] — `kernel_only` (GPU active time as E2E), a
//!   Habitat-like predictor, and an MLPredict-like predictor for the
//!   Fig. 10 comparison.
//! * [`report`] — error bookkeeping: the geomean/min/max statistics of
//!   Table V and the per-configuration rows of Fig. 9.
//! * [`codesign`] — §V-A: batch-size and device what-ifs, op-fusion
//!   evaluation, and embedding-table sharding load balance.
//!
//! ## Example
//!
//! ```no_run
//! use dlperf_core::pipeline::Pipeline;
//! use dlperf_gpusim::DeviceSpec;
//! use dlperf_kernels::CalibrationEffort;
//! use dlperf_models::DlrmConfig;
//!
//! let workloads = vec![DlrmConfig::default_config(1024).build()];
//! let pipeline = Pipeline::analyze(&DeviceSpec::v100(), &workloads, CalibrationEffort::Quick, 20, 7);
//! let pred = pipeline.predict(&workloads[0]).unwrap();
//! println!("predicted per-batch time: {:.0} us", pred.e2e_us);
//! ```

pub mod baselines;
pub mod codesign;
pub mod incremental;
pub mod ingest;
pub mod pipeline;
pub mod predictor;
pub mod report;
pub mod search;
pub mod sweep;

pub use incremental::{IncrementalPredictor, IncrementalStats};
pub use ingest::{
    collect_family_samples, family_medians, CalibrationPolicy, CorpusIngest, CorpusIngestJob,
    CorpusIngestState, FamilyFit, TraceCalibration,
};
pub use pipeline::{AnalysisJob, AnalysisReport, AnalysisState, Pipeline, PipelineError};
pub use predictor::{
    E2ePredictor, OverheadGranularity, PredictError, Prediction, T4Policy, WalkScratch,
};
pub use report::{ErrorSummary, PredictionRow};
pub use search::{
    Candidate, DeviceMoves, ExtraScorer, GraphMoves, MoveGenerator, NoExtra, OptimizationReport,
    OptimizationSearch, ScoredCandidate, SearchConfig, SearchError,
};
pub use sweep::{
    par_map, par_map_with, prepare_graph, GraphMutation, IncrementalSummary, MutationError,
    PreparedStore, PreparedStoreStats, Scenario, ScenarioMatrix, ScenarioResult, SweepEngine,
    SweepOutcome, SweepState, DEFAULT_MEMO_CAPACITY,
};
