//! Ranked optimization search over the unified what-if space.
//!
//! The paper's end product is not a latency number but a decision: which
//! change to the training setup buys the most time back. This module
//! unifies the axes that were previously swept separately — graph
//! rewrites ([`GraphMutation`]), device what-ifs (sibling [`Pipeline`]s,
//! e.g. built from `DeviceSpec::whatif_grid` scalings), and any axis a
//! higher layer contributes (the distrib crate plugs in sharding
//! rebalances and parallelism-strategy switches) — into one [`Candidate`]
//! type, and runs a beam search with branch-and-bound pruning over the
//! combined neighborhood, Daydream-style: enumerate what-ifs, price each
//! one *without running anything*, and emit the top-k "optimizations
//! worth doing" as an [`OptimizationReport`].
//!
//! The inner loop is [`IncrementalPredictor::repredict_scratch`]: each
//! device axis keeps one checkpointed baseline walk, and every candidate
//! whose mutation touches only part of the graph re-prices just its dirty
//! frontier (~16× cheaper warm than a full walk). Moves are generated
//! legality-first — the `graph::transform` legality predicates
//! ([`dlperf_graph::transform::legality`]) gate graph moves before any
//! clone-and-try — so the search wastes no evaluations on candidates that
//! cannot be built.
//!
//! **Determinism contract** (same as the sweep engine): move generation
//! is a deterministic function of the expanded candidate; children are
//! priced by `par_map_with` with results written to input-index slots;
//! beam selection and final ranking order by `f64::total_cmp` on the
//! scores with the candidate's generation index as the tie-break.
//! Consequently the report — ranking, scores, and bits — is identical at
//! any thread count, cache on or off. `tests/search.rs` pins this.
//!
//! **Pruning soundness:** pruning only decides which candidates are
//! *expanded further*, never how a priced candidate scores — every
//! evaluated candidate enters the ranking with its exact predicted time,
//! so a pruned branch can only hide deeper descendants, and the
//! incumbent-relative slack bound (`prune_slack`) makes that trade-off
//! explicit and configurable. See DESIGN.md §14 for the full argument.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use dlperf_graph::transform::{can_fuse_embedding_bags, can_resize_batch, hoistable_nodes};
use dlperf_graph::Graph;
use dlperf_kernels::MemoCache;
use dlperf_runtime::CancellationToken;

use crate::incremental::IncrementalPredictor;
use crate::pipeline::Pipeline;
use crate::predictor::WalkScratch;
use crate::sweep::{par_map_with, prepare_graph, GraphMutation, PooledScratch};

/// Process-wide search counters: candidate evaluations, branch-and-bound
/// prunes, and how many evaluations rode the incremental path vs. fell
/// back to a full walk (the bench gate floors the incremental fraction).
struct SearchCounters {
    _group: Arc<dlperf_obs::CounterGroup>,
    searches: dlperf_obs::CounterHandle,
    evals: dlperf_obs::CounterHandle,
    prunes: dlperf_obs::CounterHandle,
    incremental: dlperf_obs::CounterHandle,
    full: dlperf_obs::CounterHandle,
    errors: dlperf_obs::CounterHandle,
}

fn search_counters() -> &'static SearchCounters {
    static G: OnceLock<SearchCounters> = OnceLock::new();
    G.get_or_init(|| {
        let group = dlperf_obs::CounterGroup::register(
            "core.search",
            &["searches", "evals", "prunes", "incremental", "full", "errors"],
        );
        SearchCounters {
            searches: group.handle("searches"),
            evals: group.handle("evals"),
            prunes: group.handle("prunes"),
            incremental: group.handle("incremental"),
            full: group.handle("full"),
            errors: group.handle("errors"),
            _group: group,
        }
    })
}

/// The uninhabited default extra axis: a search space with no
/// higher-layer contribution. No value of this type ever exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoExtra {}

impl std::fmt::Display for NoExtra {
    fn fmt(&self, _f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {}
    }
}

/// One point of the unified what-if space: a device axis (which sibling
/// pipeline prices the candidate), an ordered graph-rewrite list, and an
/// optional extra axis contributed by a higher layer (`None` = that axis
/// at its baseline setting).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Candidate<X = NoExtra> {
    /// Index into the search's pipeline list.
    pub device: usize,
    /// Graph rewrites applied to the base graph, in order.
    pub mutations: Vec<GraphMutation>,
    /// Higher-layer axis value (e.g. a sharding/strategy move).
    pub extra: Option<X>,
}

impl<X> Candidate<X> {
    /// The root candidate: device 0, no rewrites, extra axis at baseline.
    pub fn baseline() -> Self {
        Candidate { device: 0, mutations: Vec::new(), extra: None }
    }
}

impl<X: std::fmt::Display> Candidate<X> {
    /// Human-readable description, e.g.
    /// `"fuse embedding bags + hoist node 7 [on device V100-sim]"`.
    pub fn describe(&self, device_labels: &[String]) -> String {
        let mut parts: Vec<String> = self.mutations.iter().map(|m| m.to_string()).collect();
        if let Some(x) = &self.extra {
            parts.push(x.to_string());
        }
        let mut s = if parts.is_empty() { "baseline".to_string() } else { parts.join(" + ") };
        if self.device != 0 {
            let label = device_labels
                .get(self.device)
                .cloned()
                .unwrap_or_else(|| format!("device {}", self.device));
            s.push_str(&format!(" [on {label}]"));
        }
        s
    }
}

/// A neighborhood generator: one axis's legal moves out of a candidate.
/// Implementations must be deterministic — same `(graph, candidate)` in,
/// same children in the same order out — or the search loses its bitwise
/// determinism guarantee.
pub trait MoveGenerator<X>: Sync {
    /// Child candidates one move away from `cand`. `graph` is the
    /// candidate's prepared (mutated) graph, for legality checks.
    fn expand(&self, graph: &Graph, cand: &Candidate<X>) -> Vec<Candidate<X>>;
}

/// Prices candidates on the extra axis — the hook through which a higher
/// layer (distrib) supplies its own cost model. Must be a deterministic
/// pure function of its arguments.
pub trait ExtraScorer<X>: Sync {
    /// Predicted end-to-end iteration time (µs) of `(mutations, extra)`,
    /// or a human-readable reason the combination cannot be priced.
    fn price(&self, mutations: &[GraphMutation], extra: &X) -> Result<f64, String>;
}

/// Graph-rewrite moves, legality-gated by the `graph::transform`
/// predicates: fusion whenever the graph still has fusable bags, batch
/// resizes to the configured targets, and hoists of the first
/// `max_hoists` movable nodes. Legality gating also bounds the depth
/// naturally — a fused graph has fewer than two bags left, so
/// `FuseEmbeddingBags` is never generated twice on one path.
#[derive(Debug, Clone)]
pub struct GraphMoves {
    /// Batch sizes `ResizeBatch` moves may target.
    pub batches: Vec<u64>,
    /// At most this many `HoistNode` moves per expansion.
    pub max_hoists: usize,
}

impl Default for GraphMoves {
    fn default() -> Self {
        GraphMoves { batches: Vec::new(), max_hoists: 4 }
    }
}

impl<X: Clone> MoveGenerator<X> for GraphMoves {
    fn expand(&self, graph: &Graph, cand: &Candidate<X>) -> Vec<Candidate<X>> {
        let mut out = Vec::new();
        let child = |m: GraphMutation| {
            let mut c = cand.clone();
            c.mutations.push(m);
            c
        };
        if can_fuse_embedding_bags(graph) {
            out.push(child(GraphMutation::FuseEmbeddingBags));
        }
        for &b in &self.batches {
            if can_resize_batch(graph, b)
                && !cand.mutations.iter().any(|m| matches!(m, GraphMutation::ResizeBatch(_)))
            {
                out.push(child(GraphMutation::ResizeBatch(b)));
            }
        }
        for pos in hoistable_nodes(graph).into_iter().take(self.max_hoists) {
            out.push(child(GraphMutation::HoistNode(pos)));
        }
        out
    }
}

/// Device what-if moves: re-price the candidate's graph on every sibling
/// pipeline (gpusim's contribution — callers build the sibling list from
/// `DeviceSpec::whatif_grid` scalings and calibrate one pipeline each).
#[derive(Debug, Clone)]
pub struct DeviceMoves {
    /// Number of pipelines in the search.
    pub devices: usize,
}

impl<X: Clone> MoveGenerator<X> for DeviceMoves {
    fn expand(&self, _graph: &Graph, cand: &Candidate<X>) -> Vec<Candidate<X>> {
        (0..self.devices)
            .filter(|&d| d != cand.device)
            .map(|d| Candidate { device: d, ..cand.clone() })
            .collect()
    }
}

/// Tuning knobs of an [`OptimizationSearch`]. The defaults favor small,
/// exhaustive-ish searches (beam 8, depth 3) — the regime where the
/// incremental inner loop keeps per-candidate cost near-constant.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Candidates expanded per depth level.
    pub beam_width: usize,
    /// Maximum moves composed on one path.
    pub max_depth: usize,
    /// Entries in the final report.
    pub top_k: usize,
    /// Worker threads for beam expansion (1 = the bitwise reference path).
    pub threads: usize,
    /// Whether kernel-model queries go through per-device memo caches.
    pub use_cache: bool,
    /// Branch-and-bound slack: a candidate predicted slower than the
    /// incumbent best by more than this fraction is pruned (not expanded
    /// further; its own score still ranks). `0.05` = keep exploring
    /// anything within 5% of the best time seen so far.
    pub prune_slack: f64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            beam_width: 8,
            max_depth: 3,
            top_k: 10,
            threads: 1,
            use_cache: true,
            prune_slack: 0.05,
        }
    }
}

/// A priced candidate in the report's ranking.
#[derive(Debug, Clone)]
pub struct ScoredCandidate<X = NoExtra> {
    /// The candidate itself.
    pub candidate: Candidate<X>,
    /// Human-readable description (see [`Candidate::describe`]).
    pub description: String,
    /// Predicted end-to-end iteration time (µs).
    pub e2e_us: f64,
    /// `baseline − e2e`: microseconds bought back per iteration
    /// (positive = faster than baseline).
    pub delta_us: f64,
    /// `baseline / e2e` (> 1 = faster than baseline).
    pub speedup: f64,
    /// Lower edge of the one-sigma confidence band (µs), from the pricing
    /// device's kernel-model calibration [`ErrorStats`]; `None` when the
    /// registry kept no stats (heuristic-only or legacy bundles).
    ///
    /// [`ErrorStats`]: dlperf_kernels::ErrorStats
    pub ci_low_us: Option<f64>,
    /// Upper edge of the one-sigma confidence band (µs).
    pub ci_high_us: Option<f64>,
    /// Whether the incremental predictor served this evaluation without a
    /// full-walk fallback.
    pub incremental: bool,
}

/// The search's answer: "optimizations worth doing", best first.
#[derive(Debug, Clone)]
pub struct OptimizationReport<X = NoExtra> {
    /// Predicted time of the unmodified baseline (µs), on device 0.
    pub baseline_e2e_us: f64,
    /// Top-k candidates, fastest predicted time first.
    pub ranked: Vec<ScoredCandidate<X>>,
    /// Candidates priced.
    pub evals: usize,
    /// Candidates cut by the branch-and-bound bound (priced, not expanded).
    pub prunes: usize,
    /// Evaluations served by the incremental path.
    pub incremental_evals: usize,
    /// Evaluations that fell back to a full walk.
    pub full_evals: usize,
    /// Wall-clock of the whole search (ms). Informational — not part of
    /// the determinism contract.
    pub wall_ms: f64,
    /// Worker threads used.
    pub threads: usize,
}

impl<X> OptimizationReport<X> {
    /// Fraction of evaluations served incrementally (0 when nothing ran).
    pub fn incremental_frac(&self) -> f64 {
        let total = self.incremental_evals + self.full_evals;
        if total == 0 {
            0.0
        } else {
            self.incremental_evals as f64 / total as f64
        }
    }
}

/// Why a search could not produce a report.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// The search was built with an empty pipeline list.
    NoPipelines,
    /// The base graph failed to lower on the named device.
    Lower {
        /// Index of the failing pipeline.
        device: usize,
        /// The lowering error, rendered.
        reason: String,
    },
    /// The cancellation token fired mid-search.
    Cancelled,
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::NoPipelines => write!(f, "optimization search needs at least one pipeline"),
            SearchError::Lower { device, reason } => {
                write!(f, "base graph failed to lower on device {device}: {reason}")
            }
            SearchError::Cancelled => write!(f, "search cancelled"),
        }
    }
}

impl std::error::Error for SearchError {}

/// The beam / branch-and-bound optimization search. Construct with the
/// pipeline list (device axis), optionally plug in an extra axis, then
/// [`OptimizationSearch::run`] against a base graph.
pub struct OptimizationSearch<'a, X = NoExtra> {
    pipelines: &'a [Pipeline],
    device_labels: Vec<String>,
    config: SearchConfig,
    graph_moves: GraphMoves,
    extra_gen: Option<&'a dyn MoveGenerator<X>>,
    extra_scorer: Option<&'a dyn ExtraScorer<X>>,
    token: CancellationToken,
    /// Pooled walk scratches, persisted across runs like the sweep
    /// engine's pool: steady-state searches are allocation-free on the
    /// pricing hot path.
    scratch_pool: Mutex<Vec<WalkScratch>>,
}

impl<'a, X> OptimizationSearch<'a, X>
where
    X: Clone + Eq + Hash + std::fmt::Display + Send + Sync,
{
    /// A search over `pipelines` (index 0 is the baseline device) with
    /// default config and no extra axis.
    pub fn new(pipelines: &'a [Pipeline]) -> Self {
        let device_labels = pipelines.iter().map(|p| p.device().name.clone()).collect();
        OptimizationSearch {
            pipelines,
            device_labels,
            config: SearchConfig::default(),
            graph_moves: GraphMoves::default(),
            extra_gen: None,
            extra_scorer: None,
            token: CancellationToken::new(),
            scratch_pool: Mutex::new(Vec::new()),
        }
    }

    /// Replaces the tuning knobs (builder style).
    pub fn with_config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the graph-move generator's knobs (builder style).
    pub fn with_graph_moves(mut self, moves: GraphMoves) -> Self {
        self.graph_moves = moves;
        self
    }

    /// Overrides the device labels used in descriptions (builder style).
    ///
    /// # Panics
    /// Panics if the label count does not match the pipeline count.
    pub fn with_device_labels(mut self, labels: Vec<String>) -> Self {
        assert_eq!(labels.len(), self.pipelines.len(), "one label per pipeline");
        self.device_labels = labels;
        self
    }

    /// Plugs in a higher layer's axis: its move generator and its scorer
    /// (builder style). Both must be deterministic.
    pub fn with_extra_axis(
        mut self,
        generator: &'a dyn MoveGenerator<X>,
        scorer: &'a dyn ExtraScorer<X>,
    ) -> Self {
        self.extra_gen = Some(generator);
        self.extra_scorer = Some(scorer);
        self
    }

    /// Installs a cancellation token honored between pricing batches
    /// (builder style).
    pub fn with_token(mut self, token: CancellationToken) -> Self {
        self.token = token;
        self
    }

    /// Runs the search. Deterministic: the report's ranking, scores, and
    /// bits are a pure function of `(pipelines, base, config, axes)` —
    /// thread count and cache state never show through.
    ///
    /// # Errors
    /// [`SearchError::NoPipelines`] for an empty device axis,
    /// [`SearchError::Lower`] when the base graph fails to lower, and
    /// [`SearchError::Cancelled`] when the token fires mid-search.
    pub fn run(&self, base: &Graph) -> Result<OptimizationReport<X>, SearchError> {
        let _span = dlperf_obs::span("search.run", dlperf_obs::SpanKind::Phase);
        let counters = search_counters();
        counters.searches.incr();
        let start = Instant::now();
        if self.pipelines.is_empty() {
            return Err(SearchError::NoPipelines);
        }

        // One memo cache and one checkpointed incremental baseline per
        // device: the baselines are the anchors every repredict splices
        // against, and building them is the only full walk the search
        // pays per device.
        let caches: Vec<Arc<MemoCache>> = self
            .pipelines
            .iter()
            .map(|_| Arc::new(MemoCache::with_capacity(crate::sweep::DEFAULT_MEMO_CAPACITY)))
            .collect();
        let baselines: Vec<Arc<IncrementalPredictor>> = self
            .pipelines
            .iter()
            .enumerate()
            .map(|(d, p)| {
                IncrementalPredictor::with_cache(p.predictor().clone(), base.clone(), &caches[d])
                    .map(Arc::new)
                    .map_err(|e| SearchError::Lower { device: d, reason: e.to_string() })
            })
            .collect::<Result<_, _>>()?;
        let baseline_e2e = baselines[0].baseline_prediction().e2e_us;

        // Per-device one-sigma relative error bands from the calibrated
        // kernel models, for the report's confidence intervals.
        let rel_err: Vec<Option<f64>> = self
            .pipelines
            .iter()
            .map(|p| p.predictor().registry().error_stats().map(|s| s.mean + s.std))
            .collect();

        let root: Candidate<X> = Candidate::baseline();
        let mut seen: HashSet<Candidate<X>> = HashSet::new();
        seen.insert(root.clone());
        // Frontier entries carry the candidate's prepared graph so the
        // next expansion can run legality checks without re-preparing.
        let base_arc = Arc::new(base.clone());
        let mut frontier: Vec<(Candidate<X>, Arc<Graph>)> = vec![(root, base_arc.clone())];
        // Prepared-graph sharing within the run: device moves and
        // diamond-shaped move orders reuse the same mutation list.
        let prepared: Mutex<HashMap<Vec<GraphMutation>, Arc<Graph>>> =
            Mutex::new(HashMap::from([(Vec::new(), base_arc)]));

        let device_moves = DeviceMoves { devices: self.pipelines.len() };
        let mut all_scored: Vec<ScoredCandidate<X>> = Vec::new();
        let mut evals = 0usize;
        let mut prunes = 0usize;
        let mut incremental_evals = 0usize;
        let mut full_evals = 0usize;
        let mut incumbent = baseline_e2e;

        for _depth in 0..self.config.max_depth {
            if self.token.is_cancelled() {
                return Err(SearchError::Cancelled);
            }
            // Expand the frontier in order; generators are deterministic
            // and the seen-set preserves first-generation order.
            let mut children: Vec<Candidate<X>> = Vec::new();
            for (cand, graph) in &frontier {
                let mut push = |c: Candidate<X>| {
                    if seen.insert(c.clone()) {
                        children.push(c);
                    }
                };
                for c in MoveGenerator::<X>::expand(&self.graph_moves, graph, cand) {
                    push(c);
                }
                for c in device_moves.expand(graph, cand) {
                    push(c);
                }
                if let Some(gen) = self.extra_gen {
                    for c in gen.expand(graph, cand) {
                        push(c);
                    }
                }
            }
            if children.is_empty() {
                break;
            }

            // Price every child in parallel, results slotted by input
            // index. Each worker reuses one pooled scratch.
            type Priced<X> = Result<(ScoredCandidate<X>, Arc<Graph>), String>;
            let priced: Vec<Option<Priced<X>>> = par_map_with(
                self.config.threads,
                &self.token,
                &children,
                || PooledScratch::checkout(&self.scratch_pool),
                |scratch, _, cand: &Candidate<X>| {
                    let graph = {
                        let hit = prepared.lock().expect("prepared map poisoned").get(&cand.mutations).cloned();
                        match hit {
                            Some(g) => g,
                            None => {
                                let g = Arc::new(
                                    prepare_graph(base, &cand.mutations).map_err(|e| e.to_string())?,
                                );
                                prepared
                                    .lock()
                                    .expect("prepared map poisoned")
                                    .entry(cand.mutations.clone())
                                    .or_insert_with(|| g.clone())
                                    .clone()
                            }
                        }
                    };
                    let (e2e, incremental) = match (&cand.extra, self.extra_scorer) {
                        (Some(x), Some(scorer)) => (scorer.price(&cand.mutations, x)?, false),
                        (Some(x), None) => {
                            return Err(format!("no scorer for extra axis move `{x}`"));
                        }
                        (None, _) => {
                            let cache = self.config.use_cache.then(|| &*caches[cand.device]);
                            let (p, stats) = baselines[cand.device]
                                .repredict_scratch(&graph, cache, scratch.get())
                                .map_err(|e| e.to_string())?;
                            (p.e2e_us, !stats.full_fallback)
                        }
                    };
                    let band = rel_err[cand.device].map(|r| e2e * r);
                    Ok((
                        ScoredCandidate {
                            description: cand.describe(&self.device_labels),
                            candidate: cand.clone(),
                            e2e_us: e2e,
                            delta_us: baseline_e2e - e2e,
                            speedup: baseline_e2e / e2e,
                            ci_low_us: band.map(|b| (e2e - b).max(0.0)),
                            ci_high_us: band.map(|b| e2e + b),
                            incremental,
                        },
                        graph,
                    ))
                },
            );
            if priced.iter().any(|p| p.is_none()) {
                return Err(SearchError::Cancelled);
            }

            // Collect scores in input order; failed candidates (illegal
            // combinations the legality gates could not see) are dropped.
            let mut scored_children: Vec<(usize, ScoredCandidate<X>, Arc<Graph>)> = Vec::new();
            for (i, slot) in priced.into_iter().enumerate() {
                match slot.expect("checked above") {
                    Ok((sc, g)) => scored_children.push((i, sc, g)),
                    Err(_) => counters.errors.incr(),
                }
            }
            evals += scored_children.len();
            counters.evals.add(scored_children.len() as u64);
            for (_, sc, _) in &scored_children {
                if sc.candidate.extra.is_none() {
                    if sc.incremental {
                        incremental_evals += 1;
                        counters.incremental.incr();
                    } else {
                        full_evals += 1;
                        counters.full.incr();
                    }
                }
            }
            for (_, sc, _) in &scored_children {
                if sc.e2e_us < incumbent {
                    incumbent = sc.e2e_us;
                }
            }

            // Beam + branch-and-bound: next frontier is the beam_width
            // best children within the incumbent-relative slack bound.
            let bound = incumbent * (1.0 + self.config.prune_slack);
            let mut next: Vec<(usize, ScoredCandidate<X>, Arc<Graph>)> = scored_children
                .iter()
                .filter(|(_, sc, _)| sc.e2e_us <= bound)
                .cloned()
                .collect();
            next.sort_by(|a, b| a.1.e2e_us.total_cmp(&b.1.e2e_us).then(a.0.cmp(&b.0)));
            next.truncate(self.config.beam_width);
            let cut = scored_children.len() - next.len();
            prunes += cut;
            counters.prunes.add(cut as u64);

            all_scored.extend(scored_children.into_iter().map(|(_, sc, _)| sc));
            frontier = next.into_iter().map(|(_, sc, g)| (sc.candidate, g)).collect();
            if frontier.is_empty() {
                break;
            }
        }

        // Final ranking: fastest predicted time first, generation order
        // as the tie-break (all_scored preserves it).
        let mut order: Vec<usize> = (0..all_scored.len()).collect();
        order.sort_by(|&a, &b| {
            all_scored[a].e2e_us.total_cmp(&all_scored[b].e2e_us).then(a.cmp(&b))
        });
        let ranked: Vec<ScoredCandidate<X>> = order
            .into_iter()
            .take(self.config.top_k)
            .map(|i| all_scored[i].clone())
            .collect();

        Ok(OptimizationReport {
            baseline_e2e_us: baseline_e2e,
            ranked,
            evals,
            prunes,
            incremental_evals,
            full_evals,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            threads: self.config.threads,
        })
    }
}
