//! Model-system co-design tools (§V-A): answer the paper's what-if
//! questions by transforming the execution graph and re-predicting —
//! "without actually running the computation on GPUs".

use dlperf_graph::lower::LowerError;
use dlperf_graph::transform::{fuse_embedding_bags, resize_batch, FusionReport, TransformError};
use dlperf_graph::Graph;
use dlperf_gpusim::KernelSpec;
use dlperf_kernels::ModelRegistry;

use crate::pipeline::Pipeline;
use crate::predictor::Prediction;

/// Errors raised by co-design evaluations.
#[derive(Debug)]
pub enum CodesignError {
    /// The graph transformation failed.
    Transform(TransformError),
    /// The transformed graph failed to lower.
    Lower(LowerError),
}

impl std::fmt::Display for CodesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodesignError::Transform(e) => write!(f, "transform failed: {e}"),
            CodesignError::Lower(e) => write!(f, "lowering failed: {e}"),
        }
    }
}

impl std::error::Error for CodesignError {}

impl From<TransformError> for CodesignError {
    fn from(e: TransformError) -> Self {
        CodesignError::Transform(e)
    }
}

impl From<LowerError> for CodesignError {
    fn from(e: LowerError) -> Self {
        CodesignError::Lower(e)
    }
}

/// Question 1 of the paper's introduction: how does changing the batch size
/// impact performance? Resizes a captured graph to each batch and
/// re-predicts.
///
/// # Errors
/// Fails if the graph carries no batch annotation or fails to lower.
pub fn batch_size_sweep(
    pipeline: &Pipeline,
    graph: &Graph,
    batches: &[u64],
) -> Result<Vec<(u64, Prediction)>, CodesignError> {
    let mut out = Vec::with_capacity(batches.len());
    for &b in batches {
        let mut g = graph.clone();
        resize_batch(&mut g, b)?;
        out.push((b, pipeline.predict(&g)?));
    }
    Ok(out)
}

/// Question 2: how much performance can be gained with new GPUs? Prices the
/// same graph on several calibrated pipelines.
///
/// # Errors
/// Fails if the graph fails to lower on any pipeline.
pub fn device_whatif(
    pipelines: &[Pipeline],
    graph: &Graph,
) -> Result<Vec<(String, Prediction)>, CodesignError> {
    pipelines
        .iter()
        .map(|p| Ok((p.device().name.clone(), p.predict(graph)?)))
        .collect()
}

/// Result of the Fig. 11 op-fusion what-if.
#[derive(Debug, Clone)]
pub struct FusionOutcome {
    /// Prediction for the original graph (separate embedding bags).
    pub before: Prediction,
    /// Prediction after fusing into one batched embedding op.
    pub after: Prediction,
    /// What the fusion rewrote.
    pub report: FusionReport,
}

impl FusionOutcome {
    /// Predicted speedup factor.
    pub fn speedup(&self) -> f64 {
        self.before.e2e_us / self.after.e2e_us
    }
}

/// Question 3: can op fusion improve performance? Applies the
/// embedding-bag → batched-embedding fusion and compares predictions.
///
/// # Errors
/// Fails if the graph has nothing to fuse or fails to lower.
pub fn fusion_whatif(pipeline: &Pipeline, graph: &Graph) -> Result<FusionOutcome, CodesignError> {
    let before = pipeline.predict(graph)?;
    let mut fused = graph.clone();
    let report = fuse_embedding_bags(&mut fused)?;
    let after = pipeline.predict(&fused)?;
    Ok(FusionOutcome { before, after, report })
}

// ---------------------------------------------------------------------------
// Question 4: embedding-table sharding load balance (multi-GPU data layout).
// ---------------------------------------------------------------------------

/// Greedy longest-processing-time assignment of tables (by row count) to
/// `shards` devices. Returns `assignment[table] = shard`.
///
/// # Panics
/// Panics if `shards` is zero or `tables` is empty.
pub fn greedy_lpt(tables: &[u64], shards: usize) -> Vec<usize> {
    assert!(shards > 0 && !tables.is_empty(), "need tables and at least one shard");
    let mut order: Vec<usize> = (0..tables.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(tables[i]));
    let mut load = vec![0u64; shards];
    let mut assignment = vec![0usize; tables.len()];
    for i in order {
        let (shard, _) = load.iter().enumerate().min_by_key(|(_, &l)| l).expect("non-empty");
        assignment[i] = shard;
        load[shard] += tables[i];
    }
    assignment
}

/// Round-robin assignment (the naive baseline).
///
/// # Panics
/// Panics if `shards` is zero.
pub fn round_robin(tables: &[u64], shards: usize) -> Vec<usize> {
    assert!(shards > 0, "need at least one shard");
    (0..tables.len()).map(|i| i % shards).collect()
}

/// Model-driven LPT: balances tables by their *predicted kernel time*
/// (forward + backward) rather than raw row count. This is the paper's
/// load-balancing use case: per-warp lookup traffic is dominated by `B·L·D`
/// regardless of table size, so balancing by rows (as [`greedy_lpt`] does)
/// can be badly off; balancing by predicted time cannot.
///
/// # Panics
/// Panics if `shards` is zero or `tables` is empty.
pub fn greedy_by_predicted_cost(
    registry: &ModelRegistry,
    tables: &[u64],
    shards: usize,
    batch: u64,
    lookups: u64,
    dim: u64,
) -> Vec<usize> {
    assert!(shards > 0 && !tables.is_empty(), "need tables and at least one shard");
    let cost = |rows: u64| {
        let fwd = KernelSpec::embedding_forward(batch, rows, 1, lookups, dim);
        let bwd = KernelSpec::embedding_backward(batch, rows, 1, lookups, dim);
        registry.try_predict(&fwd).expect("registry covers embedding kernels")
            + registry.try_predict(&bwd).expect("registry covers embedding kernels")
    };
    let costs: Vec<f64> = tables.iter().map(|&r| cost(r)).collect();
    let mut order: Vec<usize> = (0..tables.len()).collect();
    order.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]));
    let mut load = vec![0.0f64; shards];
    let mut assignment = vec![0usize; tables.len()];
    for i in order {
        let shard = load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(s, _)| s)
            .expect("non-empty");
        assignment[i] = shard;
        load[shard] += costs[i];
    }
    assignment
}

/// Predicted per-device embedding time (forward + backward, µs) under an
/// assignment, using the calibrated embedding kernel models. Devices with
/// no tables cost zero.
///
/// # Panics
/// Panics if the assignment length differs from the table count or refers
/// to a shard out of range.
pub fn shard_costs(
    registry: &ModelRegistry,
    tables: &[u64],
    assignment: &[usize],
    shards: usize,
    batch: u64,
    lookups: u64,
    dim: u64,
) -> Vec<f64> {
    assert_eq!(tables.len(), assignment.len(), "assignment covers every table");
    assert!(assignment.iter().all(|&s| s < shards), "shard index out of range");
    (0..shards)
        .map(|s| {
            let mine: Vec<u64> = tables
                .iter()
                .zip(assignment)
                .filter(|(_, &a)| a == s)
                .map(|(&t, _)| t)
                .collect();
            if mine.is_empty() {
                return 0.0;
            }
            let t = mine.len() as u64;
            let e_avg = (mine.iter().sum::<u64>() as f64 / t as f64).round().max(1.0) as u64;
            let fwd = KernelSpec::embedding_forward(batch, e_avg, t, lookups, dim);
            let bwd = KernelSpec::embedding_backward(batch, e_avg, t, lookups, dim);
            registry.try_predict(&fwd).expect("registry covers embedding kernels")
                + registry.try_predict(&bwd).expect("registry covers embedding kernels")
        })
        .collect()
}

/// Load imbalance of per-device costs: `max / mean` (1.0 = perfectly
/// balanced).
///
/// # Panics
/// Panics if `costs` is empty or all-zero.
pub fn imbalance(costs: &[f64]) -> f64 {
    assert!(!costs.is_empty(), "no costs to compare");
    let mean = costs.iter().sum::<f64>() / costs.len() as f64;
    assert!(mean > 0.0, "all shards idle");
    costs.iter().copied().fold(0.0f64, f64::max) / mean
}

/// Predicts the effect of *reordering*: hoisting every movable device op as
/// early as its dependencies allow (so its kernels enqueue before later
/// host overheads), and re-predicting. Returns `(before, after)`.
///
/// # Errors
/// Fails if the graph fails to lower.
pub fn reorder_whatif(
    pipeline: &Pipeline,
    graph: &Graph,
) -> Result<(Prediction, Prediction), CodesignError> {
    use dlperf_graph::transform::hoist_earliest;
    let before = pipeline.predict(graph)?;
    let mut g = graph.clone();
    // Hoist in execution order; each hoist preserves validity by
    // construction.
    for i in 0..g.node_count() {
        let id = g.nodes()[i].id;
        let _ = hoist_earliest(&mut g, id);
    }
    let after = pipeline.predict(&g)?;
    Ok((before, after))
}

// ---------------------------------------------------------------------------
// Iterative model tuning (§V-A a): latency-constrained configuration search.
// ---------------------------------------------------------------------------

/// One scored candidate of a latency-constrained search.
#[derive(Debug, Clone)]
pub struct TuningResult<C> {
    /// The candidate configuration.
    pub candidate: C,
    /// Its predicted per-batch time (µs).
    pub predicted_us: f64,
    /// The caller-supplied quality score (higher is better).
    pub score: f64,
}

/// The paper's *iterative model tuning* use case, generalized: evaluate a
/// set of candidate configurations against a latency budget using only the
/// performance model — "without actually running the code" — and return the
/// highest-scoring candidate that fits, plus every scored candidate for
/// inspection. This is exactly the inner loop the paper proposes donating
/// to a network-architecture search.
///
/// `build` maps a candidate to its execution graph; `score` defines model
/// quality (e.g. parameter count, embedding capacity).
///
/// # Errors
/// Propagates lowering failures from candidate graphs.
#[allow(clippy::type_complexity)]
pub fn latency_constrained_search<C: Clone>(
    pipeline: &Pipeline,
    candidates: &[C],
    budget_us: f64,
    build: impl Fn(&C) -> Graph,
    score: impl Fn(&C) -> f64,
) -> Result<(Option<TuningResult<C>>, Vec<TuningResult<C>>), CodesignError> {
    let mut scored = Vec::with_capacity(candidates.len());
    for c in candidates {
        let graph = build(c);
        let predicted_us = pipeline.predict(&graph)?.e2e_us;
        scored.push(TuningResult { candidate: c.clone(), predicted_us, score: score(c) });
    }
    let best = scored
        .iter()
        .filter(|r| r.predicted_us <= budget_us)
        .max_by(|a, b| a.score.total_cmp(&b.score))
        .cloned();
    Ok((best, scored))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_gpusim::DeviceSpec;
    use dlperf_kernels::CalibrationEffort;
    use dlperf_models::criteo::KAGGLE_TABLE_ROWS;
    use dlperf_models::DlrmConfig;

    fn quick_pipeline() -> (Pipeline, Graph) {
        let g = DlrmConfig {
            rows_per_table: vec![50_000; 4],
            ..DlrmConfig::default_config(256)
        }
        .build();
        let pipe =
            Pipeline::analyze(&DeviceSpec::v100(), std::slice::from_ref(&g), CalibrationEffort::Quick, 8, 17);
        (pipe, g)
    }

    #[test]
    fn batch_sweep_is_monotone_in_e2e() {
        let (pipe, g) = quick_pipeline();
        let sweep = batch_size_sweep(&pipe, &g, &[128, 512, 2048]).unwrap();
        assert_eq!(sweep.len(), 3);
        assert!(sweep[0].1.e2e_us < sweep[2].1.e2e_us);
        // Utilization grows with batch size (the Fig. 9 trend).
        assert!(sweep[2].1.utilization() > sweep[0].1.utilization());
    }

    #[test]
    fn fusion_predicts_speedup_for_bag_heavy_graph() {
        let (pipe, _) = quick_pipeline();
        let unfused = DlrmConfig {
            rows_per_table: vec![50_000; 16],
            embedding_dim: 64,
            bottom_mlp: vec![64, 64],
            top_mlp: vec![64, 1],
            ..DlrmConfig::default_config(256)
        }
        .with_batched_embedding(false)
        .build();
        let outcome = fusion_whatif(&pipe, &unfused).unwrap();
        assert_eq!(outcome.report.forward_bags_fused, 16);
        assert!(
            outcome.speedup() > 1.05,
            "fusion should pay off on 16 bags, got {:.3}",
            outcome.speedup()
        );
    }

    #[test]
    fn cost_driven_sharding_beats_naive_schemes_on_criteo() {
        // The §V-A load-balancing use case: balancing by predicted kernel
        // time beats both balancing by raw row count and round-robin.
        let (pipe, _) = quick_pipeline();
        let registry = pipe.predictor().registry();
        let tables = KAGGLE_TABLE_ROWS;
        let eval = |a: &[usize]| imbalance(&shard_costs(registry, &tables, a, 4, 2048, 1, 32));
        let by_cost = eval(&greedy_by_predicted_cost(registry, &tables, 4, 2048, 1, 32));
        let by_rows = eval(&greedy_lpt(&tables, 4));
        let rr = eval(&round_robin(&tables, 4));
        assert!(
            by_cost <= rr && by_cost <= by_rows,
            "cost-driven {by_cost:.3} vs rows-LPT {by_rows:.3} vs round-robin {rr:.3}"
        );
    }

    #[test]
    fn lpt_assignment_is_a_partition() {
        let a = greedy_lpt(&KAGGLE_TABLE_ROWS, 8);
        assert_eq!(a.len(), 26);
        assert!(a.iter().all(|&s| s < 8));
        // Each shard gets at least one table (26 tables over 8 shards).
        for s in 0..8 {
            assert!(a.contains(&s), "shard {s} left empty");
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        round_robin(&[1, 2], 0);
    }

    #[test]
    fn tuning_picks_largest_model_within_budget() {
        let (pipe, base) = quick_pipeline();
        // Candidates: embedding dims (larger = higher quality, slower).
        let candidates = [16u64, 32, 64, 128];
        let build = |&d: &u64| {
            DlrmConfig {
                embedding_dim: d,
                bottom_mlp: vec![512, 512, d],
                rows_per_table: vec![50_000; 4],
                ..DlrmConfig::default_config(256)
            }
            .build()
        };
        let baseline = pipe.predict(&base).unwrap().e2e_us;
        let (best, all) =
            latency_constrained_search(&pipe, &candidates, baseline, build, |&d| d as f64)
                .unwrap();
        assert_eq!(all.len(), 4);
        assert!(all.iter().all(|r| r.predicted_us > 0.0));
        let best = best.expect("some candidate fits the baseline budget");
        // The winner is the largest dim that still fits.
        for r in &all {
            if r.predicted_us <= baseline {
                assert!(best.score >= r.score);
            }
        }
    }

    #[test]
    fn tuning_reports_none_when_budget_impossible() {
        let (pipe, _) = quick_pipeline();
        let build = |&d: &u64| {
            DlrmConfig {
                embedding_dim: d,
                bottom_mlp: vec![512, 512, d],
                rows_per_table: vec![50_000; 4],
                ..DlrmConfig::default_config(256)
            }
            .build()
        };
        let (best, all) =
            latency_constrained_search(&pipe, &[32u64, 64], 1.0, build, |&d| d as f64).unwrap();
        assert!(best.is_none());
        assert_eq!(all.len(), 2);
    }
}
