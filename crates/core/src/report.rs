//! Error bookkeeping: the per-configuration rows of Fig. 9 and the
//! geomean/min/max aggregation of Table V.

use dlperf_trace::stats::geomean;
use serde::{Deserialize, Serialize};

/// One evaluated configuration: a (workload, device, batch) cell of Fig. 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionRow {
    /// Workload name.
    pub workload: String,
    /// Device name.
    pub device: String,
    /// Batch size.
    pub batch: u64,
    /// Measured E2E per-batch time (µs).
    pub measured_e2e_us: f64,
    /// Measured GPU active time (µs).
    pub measured_active_us: f64,
    /// Predicted E2E with individual overheads (µs).
    pub pred_e2e_us: f64,
    /// Predicted E2E with shared overheads (µs).
    pub pred_shared_e2e_us: f64,
    /// Predicted GPU active time (µs).
    pub pred_active_us: f64,
    /// The `kernel_only` baseline (µs).
    pub kernel_only_us: f64,
}

/// Relative error (signed), as a fraction.
pub fn rel_error(pred: f64, actual: f64) -> f64 {
    (pred - actual) / actual
}

impl PredictionRow {
    /// |error| of the GPU active-time prediction.
    pub fn active_error(&self) -> f64 {
        rel_error(self.pred_active_us, self.measured_active_us).abs()
    }

    /// |error| of the E2E prediction (individual overheads).
    pub fn e2e_error(&self) -> f64 {
        rel_error(self.pred_e2e_us, self.measured_e2e_us).abs()
    }

    /// |error| of the E2E prediction (shared overheads).
    pub fn shared_e2e_error(&self) -> f64 {
        rel_error(self.pred_shared_e2e_us, self.measured_e2e_us).abs()
    }

    /// |error| of the `kernel_only` baseline against the E2E time.
    pub fn kernel_only_error(&self) -> f64 {
        rel_error(self.kernel_only_us, self.measured_e2e_us).abs()
    }

    /// Measured GPU utilization.
    pub fn utilization(&self) -> f64 {
        self.measured_active_us / self.measured_e2e_us
    }
}

/// geomean/min/max of one error metric over a set of rows (one Table V
/// cell-triple).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Geometric mean of the absolute errors.
    pub geomean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Row count.
    pub count: usize,
}

impl ErrorSummary {
    /// Aggregates a slice of absolute errors.
    ///
    /// # Panics
    /// Panics if `errors` is empty.
    pub fn from_errors(errors: &[f64]) -> Self {
        assert!(!errors.is_empty(), "cannot summarize zero errors");
        ErrorSummary {
            geomean: geomean(errors),
            min: errors.iter().copied().fold(f64::INFINITY, f64::min),
            max: errors.iter().copied().fold(0.0, f64::max),
            count: errors.len(),
        }
    }

    /// Summarizes a metric over rows, optionally filtered to one device.
    pub fn over<'r>(
        rows: impl IntoIterator<Item = &'r PredictionRow>,
        device: Option<&str>,
        metric: impl Fn(&PredictionRow) -> f64,
    ) -> Option<Self> {
        let errs: Vec<f64> = rows
            .into_iter()
            .filter(|r| device.is_none_or(|d| r.device == d))
            .map(metric)
            .collect();
        if errs.is_empty() {
            None
        } else {
            Some(Self::from_errors(&errs))
        }
    }
}

impl std::fmt::Display for ErrorSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:6.2}% {:6.2}% {:6.2}%",
            self.geomean * 100.0,
            self.min * 100.0,
            self.max * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(device: &str, pred: f64, measured: f64) -> PredictionRow {
        PredictionRow {
            workload: "w".into(),
            device: device.into(),
            batch: 256,
            measured_e2e_us: measured,
            measured_active_us: measured * 0.6,
            pred_e2e_us: pred,
            pred_shared_e2e_us: pred * 1.05,
            pred_active_us: measured * 0.6 * 0.97,
            kernel_only_us: measured * 0.6,
        }
    }

    #[test]
    fn errors_computed_against_right_denominators() {
        let r = row("V100", 110.0, 100.0);
        assert!((r.e2e_error() - 0.10).abs() < 1e-12);
        assert!((r.kernel_only_error() - 0.40).abs() < 1e-12);
        assert!((r.active_error() - 0.03).abs() < 1e-12);
        assert!((r.utilization() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn summary_filters_by_device() {
        let rows = vec![row("V100", 110.0, 100.0), row("P100", 120.0, 100.0)];
        let all = ErrorSummary::over(&rows, None, PredictionRow::e2e_error).unwrap();
        assert_eq!(all.count, 2);
        assert!((all.max - 0.2).abs() < 1e-12);
        let v100 = ErrorSummary::over(&rows, Some("V100"), PredictionRow::e2e_error).unwrap();
        assert_eq!(v100.count, 1);
        assert!(ErrorSummary::over(&rows, Some("TITAN"), PredictionRow::e2e_error).is_none());
    }

    #[test]
    fn geomean_between_min_and_max() {
        let s = ErrorSummary::from_errors(&[0.01, 0.04, 0.16]);
        assert!(s.min <= s.geomean && s.geomean <= s.max);
        assert!((s.geomean - 0.04).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero errors")]
    fn empty_summary_panics() {
        ErrorSummary::from_errors(&[]);
    }
}
