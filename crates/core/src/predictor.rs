//! Algorithm 1: the critical-path E2E training-time predictor.
//!
//! For every op the predictor adds T1 (and T2 when the op launches kernels)
//! to the CPU clock; each kernel then starts at
//! `max(gpu_time + gap, cpu_time + T4/2, dependencies)` — so host overheads
//! that are not hidden behind running kernels become predicted device idle
//! time — and its predicted duration advances the GPU clock while T4/T5
//! advance the CPU clock. T3 closes the op. The predicted per-batch time is
//! `max(cpu_time, gpu_time)` at the end of the graph.
//!
//! Two generalizations over the paper's listing: multiple GPU clocks (one
//! per stream, honouring the *parallelize* transformation) and tensor-level
//! data dependencies (from the execution graph), both of which degenerate
//! to Algorithm 1 on single-stream graphs.

use dlperf_graph::lower::{self, LowerError};
use dlperf_graph::{Graph, Node, TensorId};
use dlperf_gpusim::KernelSpec;
use dlperf_kernels::{Confidence, MemoCache, MemoScratch, ModelRegistry};
use dlperf_nn::arena::ScratchArena;
use dlperf_nn::ArenaStats;
use dlperf_runtime::CancellationToken;
use dlperf_trace::{OverheadStats, OverheadType};
use serde::{Deserialize, Serialize};

/// Why a cancellable prediction did not produce a value.
#[derive(Debug)]
pub enum PredictError {
    /// The graph failed to lower (malformed shapes).
    Lower(LowerError),
    /// The walk observed its [`CancellationToken`] mid-flight — deadline
    /// expired or shutdown requested — and stopped within one op step.
    Cancelled,
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::Lower(e) => write!(f, "lowering failed: {e}"),
            PredictError::Cancelled => write!(f, "prediction cancelled before completion"),
        }
    }
}

impl std::error::Error for PredictError {}

impl From<LowerError> for PredictError {
    fn from(e: LowerError) -> Self {
        PredictError::Lower(e)
    }
}

/// Process-wide walk counters: how many Algorithm-1 walks ran and how many
/// nodes they stepped. Accumulated locally per walk (one atomic add each),
/// so the per-node hot loop carries no instrumentation.
struct WalkCounters {
    _group: std::sync::Arc<dlperf_obs::CounterGroup>,
    walks: dlperf_obs::CounterHandle,
    nodes: dlperf_obs::CounterHandle,
}

fn walk_counters() -> &'static WalkCounters {
    static G: std::sync::OnceLock<WalkCounters> = std::sync::OnceLock::new();
    G.get_or_init(|| {
        let group = dlperf_obs::CounterGroup::register("core.walk", &["walks", "nodes"]);
        let walks = group.handle("walks");
        let nodes = group.handle("nodes");
        WalkCounters { _group: group, walks, nodes }
    })
}

/// How T4 (CUDA runtime call time) is priced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum T4Policy {
    /// A fixed approximation for all runtime functions; the paper uses
    /// 10 µs on its platforms.
    Fixed(f64),
    /// The measured per-op mean from the overhead database.
    Measured,
}

/// Which granularity of the overhead database to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverheadGranularity {
    /// Per-(op type, overhead type) means — the paper's `E2E` setting.
    PerOp,
    /// Type-level means only — the coarsest ablation (one number per Tn).
    TypeOnly,
}

/// Output of one prediction.
///
/// Serializable so sweep checkpoints and golden snapshots can carry
/// predictions verbatim (every field round-trips bitwise through the
/// vendored JSON layer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted E2E per-batch training time (µs).
    pub e2e_us: f64,
    /// Predicted GPU active time: the sum of predicted kernel times (µs).
    pub active_us: f64,
    /// Final CPU clock (µs).
    pub cpu_us: f64,
    /// Final GPU clock (max across streams, µs).
    pub gpu_us: f64,
    /// Kernels priced by the degraded datasheet-roofline fallback because
    /// no calibrated model was registered for their family. Zero means the
    /// whole prediction is calibrated; non-zero predictions should be
    /// treated as best-effort estimates.
    pub degraded_kernels: usize,
}

impl Prediction {
    /// Predicted GPU utilization.
    pub fn utilization(&self) -> f64 {
        if self.e2e_us > 0.0 {
            (self.active_us / self.e2e_us).min(1.0)
        } else {
            0.0
        }
    }

    /// Whether every kernel was priced by a calibrated model.
    pub fn is_fully_calibrated(&self) -> bool {
        self.degraded_kernels == 0
    }
}

/// The E2E predictor: kernel models + overhead database + policies.
#[derive(Debug, Clone)]
pub struct E2ePredictor {
    registry: ModelRegistry,
    overheads: OverheadStats,
    t4_policy: T4Policy,
    granularity: OverheadGranularity,
    /// Device-side gap between dependent kernels (the paper's `+1` in
    /// Algorithm 1 line 11); 0 by default.
    kernel_gap_us: f64,
    /// Fraction of T4 after which a launched kernel may start on the device
    /// (Algorithm 1 uses `cpu_time + T4/2`, i.e. 0.5).
    launch_factor: f64,
}

impl E2ePredictor {
    /// Creates a predictor with the paper's defaults: per-op overheads and
    /// a fixed T4 approximation.
    pub fn new(registry: ModelRegistry, overheads: OverheadStats) -> Self {
        E2ePredictor {
            registry,
            overheads,
            t4_policy: T4Policy::Fixed(12.0),
            granularity: OverheadGranularity::PerOp,
            kernel_gap_us: 0.0,
            launch_factor: 0.5,
        }
    }

    /// Sets the T4 policy (builder style).
    pub fn with_t4_policy(mut self, policy: T4Policy) -> Self {
        self.t4_policy = policy;
        self
    }

    /// Sets the overhead-database granularity (builder style).
    pub fn with_granularity(mut self, granularity: OverheadGranularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Sets the inter-kernel device gap (builder style).
    pub fn with_kernel_gap(mut self, gap_us: f64) -> Self {
        self.kernel_gap_us = gap_us;
        self
    }

    /// Sets the launch-point factor: a kernel may start at
    /// `cpu_time + factor x T4` (builder style; Algorithm 1 uses 0.5).
    pub fn with_launch_factor(mut self, factor: f64) -> Self {
        assert!((0.0..=1.0).contains(&factor), "launch factor must be in [0, 1]");
        self.launch_factor = factor;
        self
    }

    /// Replaces the overhead database (e.g. swapping individual for shared).
    pub fn set_overheads(&mut self, overheads: OverheadStats) {
        self.overheads = overheads;
    }

    /// The kernel-model registry.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The overhead database this predictor reads — lets callers build a
    /// sibling predictor (e.g. a degraded roofline twin on the same
    /// device) from the same analysis products.
    pub fn overheads(&self) -> &OverheadStats {
        &self.overheads
    }

    fn overhead(&self, op_key: &str, ty: OverheadType) -> f64 {
        match self.granularity {
            OverheadGranularity::PerOp => self.overheads.mean_us(op_key, ty),
            OverheadGranularity::TypeOnly => {
                self.overheads.type_stat(ty).map(|s| s.mean_us).unwrap_or(0.0)
            }
        }
    }

    fn t4(&self, op_key: &str) -> f64 {
        match self.t4_policy {
            T4Policy::Fixed(v) => v,
            T4Policy::Measured => self.overhead(op_key, OverheadType::T4),
        }
    }

    /// The inter-kernel device gap (for the incremental walk).
    pub(crate) fn kernel_gap(&self) -> f64 {
        self.kernel_gap_us
    }

    /// The launch-point factor (for the incremental walk).
    pub(crate) fn launch(&self) -> f64 {
        self.launch_factor
    }

    /// Predicts the per-batch training time of `graph` (Algorithm 1).
    ///
    /// # Errors
    /// Returns a [`LowerError`] if an op's tensor shapes are inconsistent.
    pub fn predict(&self, graph: &Graph) -> Result<Prediction, LowerError> {
        self.predict_with_batch(graph, |specs| self.registry.predict_batch_with_confidence(specs))
    }

    /// Like [`E2ePredictor::predict`], but answering kernel-model queries
    /// from `cache` when possible (see [`MemoCache`] for why a hit is
    /// bitwise identical to a model evaluation). The cache must be
    /// dedicated to this predictor's registry.
    ///
    /// # Errors
    /// Returns a [`LowerError`] on malformed graphs.
    pub fn predict_memoized(
        &self,
        graph: &Graph,
        cache: &MemoCache,
    ) -> Result<Prediction, LowerError> {
        self.predict_with_batch(graph, |specs| self.registry.predict_batch_memoized(cache, specs))
    }

    /// Like [`E2ePredictor::predict_memoized`], but checking `token`
    /// between op steps: a cancellation (deadline watchdog, shutdown) is
    /// observed within one node's lowering or stepping and surfaces as
    /// [`PredictError::Cancelled`]. A run that completes is bitwise
    /// identical to the non-cancellable path — the checks read, never
    /// write, the walk state.
    ///
    /// # Errors
    /// [`PredictError::Lower`] on malformed graphs,
    /// [`PredictError::Cancelled`] when the token fired first.
    pub fn predict_memoized_cancellable(
        &self,
        graph: &Graph,
        cache: &MemoCache,
        token: &CancellationToken,
    ) -> Result<Prediction, PredictError> {
        self.predict_with_batch_inner(graph, Some(token), |specs| {
            self.registry.predict_batch_memoized(cache, specs)
        })
    }

    /// Like [`E2ePredictor::predict`], but staging every intermediate —
    /// kernel specs, per-node ranges and overheads, predicted values, the
    /// walk state itself, and the MLP forward buffers — in `scratch`.
    /// After the first call on a scratch, subsequent walks of graphs no
    /// larger than the high-water mark perform **zero** heap allocation.
    /// Bitwise identical to [`E2ePredictor::predict`]: same lowering
    /// order, same batched evaluation, same frozen stepping sequence.
    ///
    /// # Errors
    /// Returns a [`LowerError`] on malformed graphs.
    pub fn predict_scratch(
        &self,
        graph: &Graph,
        scratch: &mut WalkScratch,
    ) -> Result<Prediction, LowerError> {
        self.predict_scratch_inner(graph, None, scratch)
    }

    /// The scratch-backed form of [`E2ePredictor::predict_memoized`]:
    /// memo-cache probing reuses `scratch`'s key/slot staging, misses are
    /// evaluated through its arena, and the walk steps straight out of its
    /// flat values vec. Bitwise identical to the owning path.
    ///
    /// # Errors
    /// Returns a [`LowerError`] on malformed graphs.
    pub fn predict_memoized_scratch(
        &self,
        graph: &Graph,
        cache: &MemoCache,
        scratch: &mut WalkScratch,
    ) -> Result<Prediction, LowerError> {
        self.predict_scratch_inner(graph, Some(cache), scratch)
    }

    fn predict_scratch_inner(
        &self,
        graph: &Graph,
        cache: Option<&MemoCache>,
        scratch: &mut WalkScratch,
    ) -> Result<Prediction, LowerError> {
        let _span = dlperf_obs::span("walk", dlperf_obs::SpanKind::Work);
        scratch.specs.clear();
        scratch.ranges.clear();
        scratch.oh.clear();
        scratch.values.clear();
        for node in graph.nodes() {
            let start = scratch.specs.len();
            scratch.specs.extend(lower::try_kernels(graph, node)?);
            scratch.ranges.push(start..scratch.specs.len());
            scratch.oh.push(self.overheads_of(node.op.overhead_key()));
        }
        match cache {
            Some(cache) => self.registry.predict_batch_memoized_into(
                cache,
                &scratch.specs,
                &mut scratch.memo,
                &mut scratch.arena,
                &mut scratch.values,
            ),
            None => self.registry.predict_batch_with_confidence_into(
                &scratch.specs,
                &mut scratch.arena,
                &mut scratch.values,
            ),
        }
        scratch.state.reset();
        for ((node, r), oh) in graph.nodes().iter().zip(&scratch.ranges).zip(&scratch.oh) {
            scratch.state.step_parts(
                node,
                oh,
                &scratch.values[r.clone()],
                self.kernel_gap_us,
                self.launch_factor,
            );
        }
        let counters = walk_counters();
        counters.walks.incr();
        counters.nodes.add(graph.node_count() as u64);
        Ok(scratch.state.finish())
    }

    /// The five launch overheads of one op key. Pure in `op_key` given the
    /// predictor's frozen overhead database and policies.
    pub(crate) fn overheads_of(&self, op_key: &str) -> Overheads {
        Overheads {
            t1: self.overhead(op_key, OverheadType::T1),
            t2: self.overhead(op_key, OverheadType::T2),
            t3: self.overhead(op_key, OverheadType::T3),
            t4: self.t4(op_key),
            t5: self.overhead(op_key, OverheadType::T5),
        }
    }

    /// Assembles the cost bundle of one node from its op key and the
    /// already-evaluated kernel times. Pure in `(op key, kernels)`: two
    /// structurally identical nodes get bitwise identical bundles, the
    /// property incremental re-prediction's prefix/suffix reuse rests on.
    pub(crate) fn node_cost(&self, op_key: &str, kernels: Vec<(f64, Confidence)>) -> NodeCosts {
        NodeCosts { oh: self.overheads_of(op_key), kernels }
    }

    /// Lowers every node and prices all kernels in **one** evaluator call:
    /// the evaluator sees the concatenated kernel list of the whole graph
    /// (in node order), which lets it batch per-family MLP inference and
    /// memo-cache traffic instead of going kernel by kernel.
    ///
    /// # Errors
    /// Returns a [`LowerError`] on malformed graphs.
    pub(crate) fn node_costs_batch(
        &self,
        graph: &Graph,
        eval: impl FnOnce(&[KernelSpec]) -> Vec<(f64, Confidence)>,
    ) -> Result<Vec<NodeCosts>, LowerError> {
        match self.node_costs_batch_inner(graph, None, eval) {
            Ok(costs) => Ok(costs),
            Err(PredictError::Lower(e)) => Err(e),
            Err(PredictError::Cancelled) => unreachable!("no cancellation token supplied"),
        }
    }

    fn node_costs_batch_inner(
        &self,
        graph: &Graph,
        token: Option<&CancellationToken>,
        eval: impl FnOnce(&[KernelSpec]) -> Vec<(f64, Confidence)>,
    ) -> Result<Vec<NodeCosts>, PredictError> {
        let mut specs: Vec<KernelSpec> = Vec::new();
        let mut ranges: Vec<std::ops::Range<usize>> = Vec::with_capacity(graph.node_count());
        for node in graph.nodes() {
            if token.is_some_and(|t| t.is_cancelled()) {
                return Err(PredictError::Cancelled);
            }
            let start = specs.len();
            specs.extend(lower::try_kernels(graph, node)?);
            ranges.push(start..specs.len());
        }
        let mut values = eval(&specs).into_iter();
        Ok(graph
            .nodes()
            .iter()
            .zip(ranges)
            .map(|(node, r)| {
                let kernels: Vec<(f64, Confidence)> = values.by_ref().take(r.len()).collect();
                self.node_cost(node.op.overhead_key(), kernels)
            })
            .collect())
    }

    /// The Algorithm 1 walk in two phases: lower + batch-evaluate every
    /// kernel, then step the clocks node by node. The stepping arithmetic
    /// lives in [`WalkState::step`], shared with the incremental predictor
    /// so the two paths cannot drift.
    fn predict_with_batch(
        &self,
        graph: &Graph,
        eval: impl FnOnce(&[KernelSpec]) -> Vec<(f64, Confidence)>,
    ) -> Result<Prediction, LowerError> {
        match self.predict_with_batch_inner(graph, None, eval) {
            Ok(p) => Ok(p),
            Err(PredictError::Lower(e)) => Err(e),
            Err(PredictError::Cancelled) => unreachable!("no cancellation token supplied"),
        }
    }

    /// The walk with an optional cancellation token checked once per node
    /// in both phases, so a deadline expiring mid-walk is observed within
    /// one op step.
    fn predict_with_batch_inner(
        &self,
        graph: &Graph,
        token: Option<&CancellationToken>,
        eval: impl FnOnce(&[KernelSpec]) -> Vec<(f64, Confidence)>,
    ) -> Result<Prediction, PredictError> {
        let _span = dlperf_obs::span("walk", dlperf_obs::SpanKind::Work);
        let costs = self.node_costs_batch_inner(graph, token, eval)?;
        let mut state = WalkState::new();
        for (node, c) in graph.nodes().iter().zip(&costs) {
            if token.is_some_and(|t| t.is_cancelled()) {
                return Err(PredictError::Cancelled);
            }
            state.step(node, c, self.kernel_gap_us, self.launch_factor);
        }
        let counters = walk_counters();
        counters.walks.incr();
        counters.nodes.add(graph.node_count() as u64);
        Ok(state.finish())
    }

    /// Predicted GPU active time alone (the sum of kernel predictions) —
    /// the paper's `kernel_only` baseline quantity.
    ///
    /// # Errors
    /// Returns a [`LowerError`] on malformed graphs.
    pub fn predict_active(&self, graph: &Graph) -> Result<f64, LowerError> {
        let mut total = 0.0;
        for node in graph.nodes() {
            for k in lower::try_kernels(graph, node)? {
                total += self.registry.predict_with_confidence(&k).0;
            }
        }
        Ok(total)
    }
}

/// The five launch overheads of one node, `Copy` so scratch paths can
/// stage them in a flat reusable vec with no per-node allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Overheads {
    pub(crate) t1: f64,
    pub(crate) t2: f64,
    pub(crate) t3: f64,
    pub(crate) t4: f64,
    pub(crate) t5: f64,
}

/// The priced cost bundle of one node: its five launch overheads and the
/// predicted `(time, confidence)` of each kernel it launches, in launch
/// order. Pure in the node's structural signature — which is why the
/// incremental predictor may reuse a baseline node's bundle verbatim for
/// any structurally identical node.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct NodeCosts {
    pub(crate) oh: Overheads,
    pub(crate) kernels: Vec<(f64, Confidence)>,
}

/// Reusable scratch for repeated Algorithm-1 walks: every container a walk
/// touches, kept at high-water capacity across calls. One scratch serves
/// one walk at a time (methods take `&mut`); a sweep worker owns one and
/// reuses it for every scenario it prices, which is what makes the
/// steady-state sweep hot path allocation-free. Dropping a scratch simply
/// frees the buffers — there is no state that must be flushed.
#[derive(Debug, Default)]
pub struct WalkScratch {
    /// Concatenated kernel specs of the whole graph, in node order.
    pub(crate) specs: Vec<KernelSpec>,
    /// Per-node span into `specs` / `values`.
    pub(crate) ranges: Vec<std::ops::Range<usize>>,
    /// Predicted `(time, confidence)` per kernel, parallel to `specs`.
    pub(crate) values: Vec<(f64, Confidence)>,
    /// Per-node launch overheads, parallel to `ranges`.
    pub(crate) oh: Vec<Overheads>,
    /// The walk clocks, reset (not reallocated) per prediction.
    pub(crate) state: WalkState,
    /// Second state used by incremental splice-back verification.
    pub(crate) base_state: WalkState,
    /// Memo-cache probe staging (keys, slots, dedup tables).
    pub(crate) memo: MemoScratch,
    /// Arena backing the MLP forward buffers and feature matrices.
    pub(crate) arena: ScratchArena,
}

impl WalkScratch {
    /// An empty scratch; buffers grow to their high-water mark on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocation counters of the backing arena — the observable proof of
    /// buffer reuse: across steady-state walks `takes` climbs while
    /// `misses` stays flat.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }
}

/// "No readiness recorded" sentinel for the dense tensor-ready table.
/// Never a legitimate readiness value (those are finite, non-negative
/// clock times), and absorbed bitwise-neutrally by the `max` folds below:
/// `max(x, -inf) == x` and the fold still starts at `0.0`.
pub(crate) const NOT_READY: f64 = f64::NEG_INFINITY;

/// The mutable clock state of an Algorithm 1 walk. [`WalkState::step`] is
/// the *only* place the stepping arithmetic exists; the full predictor and
/// the incremental predictor both drive it, which is what makes incremental
/// re-prediction bitwise identical to a fresh walk by construction.
///
/// The containers are deliberately flat — a linear-scanned vec for the
/// handful of streams and a [`TensorId`]-indexed table for readiness —
/// because the walk and the incremental predictor's state replay are
/// container-bound, not float-bound, and hashing dominated both. Container
/// choice cannot affect results: every fold over them (`dep_ready`,
/// [`WalkState::finish`]) is a `max`, which is order-independent for the
/// finite non-negative values stored here.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct WalkState {
    pub(crate) cpu: f64,
    /// Per-stream GPU clock, keyed by stream id, in first-touch order.
    pub(crate) streams: Vec<(usize, f64)>,
    /// Readiness time per tensor, indexed by [`TensorId`]; [`NOT_READY`]
    /// where no producer has run.
    pub(crate) tensor_ready: Vec<f64>,
    pub(crate) active: f64,
    pub(crate) degraded: usize,
}

impl WalkState {
    pub(crate) fn new() -> Self {
        WalkState {
            cpu: 0.0,
            streams: Vec::new(),
            tensor_ready: Vec::new(),
            active: 0.0,
            degraded: 0,
        }
    }

    /// Returns the state to the fresh-walk initial value while keeping the
    /// stream and tensor-ready container capacities, so a reused state
    /// walks subsequent graphs without reallocating. A reset state is
    /// indistinguishable from [`WalkState::new`] to every reader: the
    /// tensor table is emptied, not zeroed, and `set_ready` re-grows it
    /// with [`NOT_READY`] exactly as a fresh walk would.
    pub(crate) fn reset(&mut self) {
        self.cpu = 0.0;
        self.streams.clear();
        self.tensor_ready.clear();
        self.active = 0.0;
        self.degraded = 0;
    }

    /// Sets a stream's clock, creating the slot on first touch.
    pub(crate) fn set_stream(&mut self, stream: usize, clock: f64) {
        match self.streams.iter_mut().find(|(s, _)| *s == stream) {
            Some(slot) => slot.1 = clock,
            None => self.streams.push((stream, clock)),
        }
    }

    /// The clock of `stream`, if any kernel has launched on it.
    pub(crate) fn stream_clock(&self, stream: usize) -> Option<f64> {
        self.streams.iter().find(|&&(s, _)| s == stream).map(|&(_, c)| c)
    }

    /// Records the readiness time of one tensor.
    pub(crate) fn set_ready(&mut self, t: TensorId, ready: f64) {
        if t.0 >= self.tensor_ready.len() {
            self.tensor_ready.resize(t.0 + 1, NOT_READY);
        }
        self.tensor_ready[t.0] = ready;
    }

    /// The recorded readiness bits of one tensor, `None` if unwritten.
    pub(crate) fn ready_bits(&self, t: TensorId) -> Option<u64> {
        self.tensor_ready
            .get(t.0)
            .map(|v| v.to_bits())
            .filter(|&b| b != NOT_READY.to_bits())
    }

    /// Advances the clocks over one node. The float operation sequence is
    /// frozen: any reordering (even an algebraically neutral one) changes
    /// low bits and breaks the determinism contract pinned by the golden
    /// snapshots.
    pub(crate) fn step(&mut self, node: &Node, costs: &NodeCosts, gap_us: f64, launch_factor: f64) {
        self.step_parts(node, &costs.oh, &costs.kernels, gap_us, launch_factor);
    }

    /// [`WalkState::step`] with the cost bundle passed as parts — overheads
    /// plus a borrowed kernel slice — so scratch-backed walks can step
    /// straight out of a flat reusable values vec without assembling
    /// per-node [`NodeCosts`]. Same float operation sequence, bitwise.
    pub(crate) fn step_parts(
        &mut self,
        node: &Node,
        oh: &Overheads,
        kernels: &[(f64, Confidence)],
        gap_us: f64,
        launch_factor: f64,
    ) {
        self.cpu += oh.t1;

        let dep_ready = node
            .inputs
            .iter()
            .map(|t| self.tensor_ready.get(t.0).copied().unwrap_or(NOT_READY))
            .fold(0.0f64, |a, b| a.max(b));

        let mut last_end: Option<f64> = None;
        if kernels.is_empty() {
            self.cpu += oh.t5;
        } else {
            self.cpu += oh.t2;
            let n = kernels.len();
            let si = match self.streams.iter().position(|&(s, _)| s == node.stream) {
                Some(i) => i,
                None => {
                    self.streams.push((node.stream, 0.0));
                    self.streams.len() - 1
                }
            };
            for (i, &(t_k, conf)) in kernels.iter().enumerate() {
                // Degraded fallback instead of a panic when a family
                // has no calibrated model; counted, not fatal.
                if conf == Confidence::Degraded {
                    self.degraded += 1;
                }
                self.active += t_k;
                let gpu = &mut self.streams[si].1;
                let start = (*gpu + gap_us).max(self.cpu + launch_factor * oh.t4).max(dep_ready);
                *gpu = start + t_k;
                last_end = Some(start + t_k);
                self.cpu += oh.t4;
                if i + 1 < n {
                    self.cpu += oh.t5;
                }
            }
            self.cpu += oh.t3;
        }

        let ready = last_end.unwrap_or(self.cpu);
        for &out in &node.outputs {
            self.set_ready(out, ready);
        }
    }

    /// Folds the final clock state into a [`Prediction`].
    pub(crate) fn finish(&self) -> Prediction {
        let gpu = self.streams.iter().fold(0.0f64, |a, &(_, b)| a.max(b));
        Prediction {
            e2e_us: self.cpu.max(gpu),
            active_us: self.active,
            cpu_us: self.cpu,
            gpu_us: gpu,
            degraded_kernels: self.degraded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_gpusim::DeviceSpec;
    use dlperf_kernels::CalibrationEffort;
    use dlperf_models::DlrmConfig;
    use dlperf_trace::engine::ExecutionEngine;
    use dlperf_trace::Trace;

    fn setup(batch: u64) -> (Graph, E2ePredictor, f64, f64) {
        let g = DlrmConfig {
            rows_per_table: vec![100_000; 4],
            ..DlrmConfig::default_config(batch)
        }
        .build();
        let dev = DeviceSpec::v100();
        let mut engine = ExecutionEngine::new(dev.clone(), 51);
        let runs = engine.run_iterations(&g, 30).unwrap();
        let measured = runs.iter().map(|r| r.e2e_us).sum::<f64>() / runs.len() as f64;
        let measured_active =
            runs.iter().map(|r| r.active_us()).sum::<f64>() / runs.len() as f64;
        let traces: Vec<Trace> = runs.into_iter().map(|r| r.trace).collect();
        let overheads = OverheadStats::extract(&traces, true);
        let registry = ModelRegistry::calibrate(&dev, CalibrationEffort::Quick, 9);
        (g, E2ePredictor::new(registry, overheads), measured, measured_active)
    }

    #[test]
    fn e2e_prediction_within_paper_band() {
        let (g, pred, measured, _) = setup(512);
        let p = pred.predict(&g).unwrap();
        let err = ((p.e2e_us - measured) / measured).abs();
        assert!(
            err < 0.25,
            "E2E error {:.1}% (pred {} vs measured {})",
            err * 100.0,
            p.e2e_us,
            measured
        );
    }

    #[test]
    fn active_prediction_within_band() {
        let (g, pred, _, measured_active) = setup(512);
        let active = pred.predict_active(&g).unwrap();
        let err = ((active - measured_active) / measured_active).abs();
        assert!(
            err < 0.25,
            "active error {:.1}% (pred {active} vs measured {measured_active})",
            err * 100.0
        );
    }

    #[test]
    fn kernel_only_underestimates_low_utilization_workloads() {
        // The Fig. 9 message: at small batch (low utilization) kernel_only
        // is far below the measured E2E time while the full model is close.
        let (g, pred, measured, _) = setup(128);
        let p = pred.predict(&g).unwrap();
        let kernel_only = pred.predict_active(&g).unwrap();
        let e2e_err = ((p.e2e_us - measured) / measured).abs();
        let ko_err = ((kernel_only - measured) / measured).abs();
        assert!(
            ko_err > 2.0 * e2e_err,
            "kernel_only err {:.1}% should far exceed E2E err {:.1}%",
            ko_err * 100.0,
            e2e_err * 100.0
        );
    }

    #[test]
    fn prediction_is_deterministic() {
        let (g, pred, _, _) = setup(256);
        assert_eq!(pred.predict(&g).unwrap(), pred.predict(&g).unwrap());
    }

    #[test]
    fn e2e_never_below_components() {
        let (g, pred, _, _) = setup(256);
        let p = pred.predict(&g).unwrap();
        assert!(p.e2e_us >= p.cpu_us.max(p.gpu_us) - 1e-9);
        assert!(p.gpu_us >= p.active_us - 1e-6, "gpu clock includes idle");
        assert!(p.utilization() > 0.0 && p.utilization() <= 1.0);
    }

    #[test]
    fn type_only_granularity_changes_prediction() {
        let (g, pred, _, _) = setup(256);
        let per_op = pred.predict(&g).unwrap().e2e_us;
        let coarse = pred
            .clone()
            .with_granularity(OverheadGranularity::TypeOnly)
            .predict(&g)
            .unwrap()
            .e2e_us;
        assert_ne!(per_op, coarse);
        // Both should still be the same order of magnitude.
        assert!((per_op / coarse - 1.0).abs() < 0.5);
    }

    #[test]
    fn cancellable_path_matches_plain_bitwise_and_observes_token() {
        let (g, pred, _, _) = setup(256);
        let cache = MemoCache::new();
        let token = CancellationToken::new();
        let plain = pred.predict_memoized(&g, &MemoCache::new()).unwrap();
        let cancellable = pred.predict_memoized_cancellable(&g, &cache, &token).unwrap();
        assert_eq!(plain.e2e_us.to_bits(), cancellable.e2e_us.to_bits());
        assert_eq!(plain, cancellable);

        token.cancel();
        match pred.predict_memoized_cancellable(&g, &cache, &token) {
            Err(PredictError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn token_fired_mid_walk_is_observed_within_one_step() {
        // Cancel from inside the kernel evaluator — i.e. after lowering,
        // before the first clock step — and require the typed error: the
        // stepping loop must notice the flag at its very next iteration.
        let (g, pred, _, _) = setup(256);
        let token = CancellationToken::new();
        let result = pred.predict_with_batch_inner(&g, Some(&token), |specs| {
            token.cancel();
            pred.registry().predict_batch_with_confidence(specs)
        });
        match result {
            Err(PredictError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn scratch_paths_match_owning_paths_bitwise_and_reuse_buffers() {
        let (g, pred, _, _) = setup(256);
        let plain = pred.predict(&g).unwrap();
        let mut scratch = WalkScratch::new();
        let s = pred.predict_scratch(&g, &mut scratch).unwrap();
        assert_eq!(plain.e2e_us.to_bits(), s.e2e_us.to_bits());
        assert_eq!(plain, s);

        let cache = MemoCache::new();
        let owned = pred.predict_memoized(&g, &MemoCache::new()).unwrap();
        let m = pred.predict_memoized_scratch(&g, &cache, &mut scratch).unwrap();
        assert_eq!(owned.e2e_us.to_bits(), m.e2e_us.to_bits());
        assert_eq!(owned, m);

        // Steady state: repeated walks of the same graph serve every
        // buffer checkout from pooled capacity — misses stay flat. Walk
        // uncached so batched inference (the arena consumer) actually
        // runs every iteration; a warm memo cache would skip it entirely.
        let misses = scratch.arena_stats().misses;
        let takes = scratch.arena_stats().takes;
        for _ in 0..5 {
            let again = pred.predict_scratch(&g, &mut scratch).unwrap();
            assert_eq!(again, s);
        }
        let after = scratch.arena_stats();
        assert_eq!(after.misses, misses, "steady-state walks must not allocate: {after:?}");
        assert!(after.takes > takes, "walks must actually go through the arena");
        assert!(after.high_water_f64s > 0);
    }

    #[test]
    fn measured_t4_policy_close_to_fixed() {
        let (g, pred, _, _) = setup(256);
        let fixed = pred.predict(&g).unwrap().e2e_us;
        let measured = pred
            .clone()
            .with_t4_policy(T4Policy::Measured)
            .predict(&g)
            .unwrap()
            .e2e_us;
        assert!((fixed / measured - 1.0).abs() < 0.2);
    }
}
