//! Algorithm 1: the critical-path E2E training-time predictor.
//!
//! For every op the predictor adds T1 (and T2 when the op launches kernels)
//! to the CPU clock; each kernel then starts at
//! `max(gpu_time + gap, cpu_time + T4/2, dependencies)` — so host overheads
//! that are not hidden behind running kernels become predicted device idle
//! time — and its predicted duration advances the GPU clock while T4/T5
//! advance the CPU clock. T3 closes the op. The predicted per-batch time is
//! `max(cpu_time, gpu_time)` at the end of the graph.
//!
//! Two generalizations over the paper's listing: multiple GPU clocks (one
//! per stream, honouring the *parallelize* transformation) and tensor-level
//! data dependencies (from the execution graph), both of which degenerate
//! to Algorithm 1 on single-stream graphs.

use std::collections::HashMap;

use dlperf_graph::lower::{self, LowerError};
use dlperf_graph::{Graph, TensorId};
use dlperf_gpusim::KernelSpec;
use dlperf_kernels::{Confidence, MemoCache, ModelRegistry};
use dlperf_trace::{OverheadStats, OverheadType};
use serde::{Deserialize, Serialize};

/// How T4 (CUDA runtime call time) is priced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum T4Policy {
    /// A fixed approximation for all runtime functions; the paper uses
    /// 10 µs on its platforms.
    Fixed(f64),
    /// The measured per-op mean from the overhead database.
    Measured,
}

/// Which granularity of the overhead database to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverheadGranularity {
    /// Per-(op type, overhead type) means — the paper's `E2E` setting.
    PerOp,
    /// Type-level means only — the coarsest ablation (one number per Tn).
    TypeOnly,
}

/// Output of one prediction.
///
/// Serializable so sweep checkpoints and golden snapshots can carry
/// predictions verbatim (every field round-trips bitwise through the
/// vendored JSON layer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted E2E per-batch training time (µs).
    pub e2e_us: f64,
    /// Predicted GPU active time: the sum of predicted kernel times (µs).
    pub active_us: f64,
    /// Final CPU clock (µs).
    pub cpu_us: f64,
    /// Final GPU clock (max across streams, µs).
    pub gpu_us: f64,
    /// Kernels priced by the degraded datasheet-roofline fallback because
    /// no calibrated model was registered for their family. Zero means the
    /// whole prediction is calibrated; non-zero predictions should be
    /// treated as best-effort estimates.
    pub degraded_kernels: usize,
}

impl Prediction {
    /// Predicted GPU utilization.
    pub fn utilization(&self) -> f64 {
        if self.e2e_us > 0.0 {
            (self.active_us / self.e2e_us).min(1.0)
        } else {
            0.0
        }
    }

    /// Whether every kernel was priced by a calibrated model.
    pub fn is_fully_calibrated(&self) -> bool {
        self.degraded_kernels == 0
    }
}

/// The E2E predictor: kernel models + overhead database + policies.
#[derive(Debug, Clone)]
pub struct E2ePredictor {
    registry: ModelRegistry,
    overheads: OverheadStats,
    t4_policy: T4Policy,
    granularity: OverheadGranularity,
    /// Device-side gap between dependent kernels (the paper's `+1` in
    /// Algorithm 1 line 11); 0 by default.
    kernel_gap_us: f64,
    /// Fraction of T4 after which a launched kernel may start on the device
    /// (Algorithm 1 uses `cpu_time + T4/2`, i.e. 0.5).
    launch_factor: f64,
}

impl E2ePredictor {
    /// Creates a predictor with the paper's defaults: per-op overheads and
    /// a fixed T4 approximation.
    pub fn new(registry: ModelRegistry, overheads: OverheadStats) -> Self {
        E2ePredictor {
            registry,
            overheads,
            t4_policy: T4Policy::Fixed(12.0),
            granularity: OverheadGranularity::PerOp,
            kernel_gap_us: 0.0,
            launch_factor: 0.5,
        }
    }

    /// Sets the T4 policy (builder style).
    pub fn with_t4_policy(mut self, policy: T4Policy) -> Self {
        self.t4_policy = policy;
        self
    }

    /// Sets the overhead-database granularity (builder style).
    pub fn with_granularity(mut self, granularity: OverheadGranularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Sets the inter-kernel device gap (builder style).
    pub fn with_kernel_gap(mut self, gap_us: f64) -> Self {
        self.kernel_gap_us = gap_us;
        self
    }

    /// Sets the launch-point factor: a kernel may start at
    /// `cpu_time + factor x T4` (builder style; Algorithm 1 uses 0.5).
    pub fn with_launch_factor(mut self, factor: f64) -> Self {
        assert!((0.0..=1.0).contains(&factor), "launch factor must be in [0, 1]");
        self.launch_factor = factor;
        self
    }

    /// Replaces the overhead database (e.g. swapping individual for shared).
    pub fn set_overheads(&mut self, overheads: OverheadStats) {
        self.overheads = overheads;
    }

    /// The kernel-model registry.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    fn overhead(&self, op_key: &str, ty: OverheadType) -> f64 {
        match self.granularity {
            OverheadGranularity::PerOp => self.overheads.mean_us(op_key, ty),
            OverheadGranularity::TypeOnly => {
                self.overheads.type_stat(ty).map(|s| s.mean_us).unwrap_or(0.0)
            }
        }
    }

    fn t4(&self, op_key: &str) -> f64 {
        match self.t4_policy {
            T4Policy::Fixed(v) => v,
            T4Policy::Measured => self.overhead(op_key, OverheadType::T4),
        }
    }

    /// Predicts the per-batch training time of `graph` (Algorithm 1).
    ///
    /// # Errors
    /// Returns a [`LowerError`] if an op's tensor shapes are inconsistent.
    pub fn predict(&self, graph: &Graph) -> Result<Prediction, LowerError> {
        self.predict_with(graph, |k| self.registry.predict_with_confidence(k))
    }

    /// Like [`E2ePredictor::predict`], but answering kernel-model queries
    /// from `cache` when possible (see [`MemoCache`] for why a hit is
    /// bitwise identical to a model evaluation). The cache must be
    /// dedicated to this predictor's registry.
    ///
    /// # Errors
    /// Returns a [`LowerError`] on malformed graphs.
    pub fn predict_memoized(
        &self,
        graph: &Graph,
        cache: &MemoCache,
    ) -> Result<Prediction, LowerError> {
        self.predict_with(graph, |k| self.registry.predict_memoized(cache, k))
    }

    /// The Algorithm 1 walk, parameterized over the kernel evaluator so
    /// the direct and memoized paths share one implementation.
    fn predict_with(
        &self,
        graph: &Graph,
        eval: impl Fn(&KernelSpec) -> (f64, Confidence),
    ) -> Result<Prediction, LowerError> {
        let mut cpu = 0.0f64;
        let mut streams: HashMap<usize, f64> = HashMap::new();
        let mut tensor_ready: HashMap<TensorId, f64> = HashMap::new();
        let mut active = 0.0f64;
        let mut degraded_kernels = 0usize;

        for node in graph.nodes() {
            let key = node.op.overhead_key();
            cpu += self.overhead(key, OverheadType::T1);

            let kernels = lower::try_kernels(graph, node)?;
            let dep_ready = node
                .inputs
                .iter()
                .filter_map(|t| tensor_ready.get(t))
                .fold(0.0f64, |a, &b| a.max(b));

            let mut last_end: Option<f64> = None;
            if kernels.is_empty() {
                cpu += self.overhead(key, OverheadType::T5);
            } else {
                cpu += self.overhead(key, OverheadType::T2);
                let t4 = self.t4(key);
                let n = kernels.len();
                for (i, k) in kernels.into_iter().enumerate() {
                    // Degraded fallback instead of a panic when a family
                    // has no calibrated model; counted, not fatal.
                    let (t_k, conf) = eval(&k);
                    if conf == Confidence::Degraded {
                        degraded_kernels += 1;
                    }
                    active += t_k;
                    let gpu = streams.entry(node.stream).or_insert(0.0);
                    let start = (*gpu + self.kernel_gap_us).max(cpu + self.launch_factor * t4).max(dep_ready);
                    *gpu = start + t_k;
                    last_end = Some(start + t_k);
                    cpu += t4;
                    if i + 1 < n {
                        cpu += self.overhead(key, OverheadType::T5);
                    }
                }
                cpu += self.overhead(key, OverheadType::T3);
            }

            let ready = last_end.unwrap_or(cpu);
            for &out in &node.outputs {
                tensor_ready.insert(out, ready);
            }
        }

        let gpu = streams.values().fold(0.0f64, |a, &b| a.max(b));
        Ok(Prediction {
            e2e_us: cpu.max(gpu),
            active_us: active,
            cpu_us: cpu,
            gpu_us: gpu,
            degraded_kernels,
        })
    }

    /// Predicted GPU active time alone (the sum of kernel predictions) —
    /// the paper's `kernel_only` baseline quantity.
    ///
    /// # Errors
    /// Returns a [`LowerError`] on malformed graphs.
    pub fn predict_active(&self, graph: &Graph) -> Result<f64, LowerError> {
        let mut total = 0.0;
        for node in graph.nodes() {
            for k in lower::try_kernels(graph, node)? {
                total += self.registry.predict_with_confidence(&k).0;
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_gpusim::DeviceSpec;
    use dlperf_kernels::CalibrationEffort;
    use dlperf_models::DlrmConfig;
    use dlperf_trace::engine::ExecutionEngine;
    use dlperf_trace::Trace;

    fn setup(batch: u64) -> (Graph, E2ePredictor, f64, f64) {
        let g = DlrmConfig {
            rows_per_table: vec![100_000; 4],
            ..DlrmConfig::default_config(batch)
        }
        .build();
        let dev = DeviceSpec::v100();
        let mut engine = ExecutionEngine::new(dev.clone(), 51);
        let runs = engine.run_iterations(&g, 30).unwrap();
        let measured = runs.iter().map(|r| r.e2e_us).sum::<f64>() / runs.len() as f64;
        let measured_active =
            runs.iter().map(|r| r.active_us()).sum::<f64>() / runs.len() as f64;
        let traces: Vec<Trace> = runs.into_iter().map(|r| r.trace).collect();
        let overheads = OverheadStats::extract(&traces, true);
        let registry = ModelRegistry::calibrate(&dev, CalibrationEffort::Quick, 9);
        (g, E2ePredictor::new(registry, overheads), measured, measured_active)
    }

    #[test]
    fn e2e_prediction_within_paper_band() {
        let (g, pred, measured, _) = setup(512);
        let p = pred.predict(&g).unwrap();
        let err = ((p.e2e_us - measured) / measured).abs();
        assert!(
            err < 0.25,
            "E2E error {:.1}% (pred {} vs measured {})",
            err * 100.0,
            p.e2e_us,
            measured
        );
    }

    #[test]
    fn active_prediction_within_band() {
        let (g, pred, _, measured_active) = setup(512);
        let active = pred.predict_active(&g).unwrap();
        let err = ((active - measured_active) / measured_active).abs();
        assert!(
            err < 0.25,
            "active error {:.1}% (pred {active} vs measured {measured_active})",
            err * 100.0
        );
    }

    #[test]
    fn kernel_only_underestimates_low_utilization_workloads() {
        // The Fig. 9 message: at small batch (low utilization) kernel_only
        // is far below the measured E2E time while the full model is close.
        let (g, pred, measured, _) = setup(128);
        let p = pred.predict(&g).unwrap();
        let kernel_only = pred.predict_active(&g).unwrap();
        let e2e_err = ((p.e2e_us - measured) / measured).abs();
        let ko_err = ((kernel_only - measured) / measured).abs();
        assert!(
            ko_err > 2.0 * e2e_err,
            "kernel_only err {:.1}% should far exceed E2E err {:.1}%",
            ko_err * 100.0,
            e2e_err * 100.0
        );
    }

    #[test]
    fn prediction_is_deterministic() {
        let (g, pred, _, _) = setup(256);
        assert_eq!(pred.predict(&g).unwrap(), pred.predict(&g).unwrap());
    }

    #[test]
    fn e2e_never_below_components() {
        let (g, pred, _, _) = setup(256);
        let p = pred.predict(&g).unwrap();
        assert!(p.e2e_us >= p.cpu_us.max(p.gpu_us) - 1e-9);
        assert!(p.gpu_us >= p.active_us - 1e-6, "gpu clock includes idle");
        assert!(p.utilization() > 0.0 && p.utilization() <= 1.0);
    }

    #[test]
    fn type_only_granularity_changes_prediction() {
        let (g, pred, _, _) = setup(256);
        let per_op = pred.predict(&g).unwrap().e2e_us;
        let coarse = pred
            .clone()
            .with_granularity(OverheadGranularity::TypeOnly)
            .predict(&g)
            .unwrap()
            .e2e_us;
        assert_ne!(per_op, coarse);
        // Both should still be the same order of magnitude.
        assert!((per_op / coarse - 1.0).abs() < 0.5);
    }

    #[test]
    fn measured_t4_policy_close_to_fixed() {
        let (g, pred, _, _) = setup(256);
        let fixed = pred.predict(&g).unwrap().e2e_us;
        let measured = pred
            .clone()
            .with_t4_policy(T4Policy::Measured)
            .predict(&g)
            .unwrap()
            .e2e_us;
        assert!((fixed / measured - 1.0).abs() < 0.2);
    }
}
