//! The Fig. 3 prediction pipeline.
//!
//! *Analysis Track* (run once per device): execute the input workloads on
//! the (simulated) hardware with profiling on, break down their traces,
//! extract T1–T5 overhead statistics, run the kernel microbenchmarks, and
//! fit the kernel performance models. The products — a
//! [`ModelRegistry`] and an [`OverheadStats`] database — are the reusable
//! assets (blue cylinders).
//!
//! *Prediction Track* (run per what-if): extract/transform an execution
//! graph and price it with Algorithm 1. No hardware needed.

use dlperf_gpusim::DeviceSpec;
use dlperf_graph::lower::LowerError;
use dlperf_graph::Graph;
use dlperf_kernels::{CalibrationEffort, ModelRegistry};
use dlperf_runtime::{
    JobContext, JobError, ResumableJob, RunReport, StepOutcome, Supervisor, SupervisorError,
};
use dlperf_trace::engine::{EngineError, ExecutionEngine};
use dlperf_trace::{OverheadStats, Trace};
use serde::{Deserialize, Serialize};

use crate::predictor::{E2ePredictor, Prediction};

/// Errors raised by the resilient analysis track.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// No workloads were given.
    NoWorkloads,
    /// Zero analysis iterations were requested.
    NoIterations,
    /// Every workload failed to execute; nothing could be analyzed.
    /// Carries each workload's name and failure.
    AllWorkloadsFailed(Vec<(String, EngineError)>),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::NoWorkloads => write!(f, "analysis needs at least one workload"),
            PipelineError::NoIterations => write!(f, "analysis needs at least one iteration"),
            PipelineError::AllWorkloadsFailed(fails) => {
                write!(f, "all {} workloads failed analysis:", fails.len())?;
                for (name, e) in fails {
                    write!(f, " [{name}: {e}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// What the resilient analysis track did with each workload.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Workloads analyzed successfully, in input order.
    pub analyzed: Vec<String>,
    /// Workloads skipped, each with the error that disqualified it.
    pub skipped: Vec<(String, EngineError)>,
}

impl AnalysisReport {
    /// Whether every input workload made it into the pipeline.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty()
    }

    /// One-line human-readable summary naming any skipped workloads.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!("analyzed {} workload(s), none skipped", self.analyzed.len())
        } else {
            let names: Vec<String> =
                self.skipped.iter().map(|(n, e)| format!("`{n}` ({e})")).collect();
            format!(
                "analyzed {} workload(s), skipped {}: {}",
                self.analyzed.len(),
                self.skipped.len(),
                names.join(", ")
            )
        }
    }
}

/// A calibrated pipeline: kernel models plus an overhead database for one
/// device, ready to price execution graphs.
#[derive(Debug, Clone)]
pub struct Pipeline {
    device: DeviceSpec,
    predictor: E2ePredictor,
    /// Per-workload overhead databases (workload name → stats), kept so the
    /// caller can switch between individual and shared overheads.
    per_workload: Vec<(String, OverheadStats)>,
}

impl Pipeline {
    /// Runs the analysis track: profiles each workload for `iters`
    /// iterations on `device`, extracts overheads, and calibrates the
    /// kernel models. The resulting predictor uses the *shared* (merged)
    /// overhead database by default.
    ///
    /// # Panics
    /// Panics if `workloads` is empty, `iters` is zero, or a workload fails
    /// to lower (malformed graph).
    pub fn analyze(
        device: &DeviceSpec,
        workloads: &[Graph],
        effort: CalibrationEffort,
        iters: usize,
        seed: u64,
    ) -> Self {
        let registry = ModelRegistry::calibrate(device, effort, seed ^ 0xabcd);
        Self::analyze_with_registry(device, workloads, registry, iters, seed)
    }

    /// Like [`Pipeline::analyze`] but reusing an already-calibrated kernel
    /// registry — calibration depends only on the device, so one registry
    /// serves any number of workload analyses.
    ///
    /// # Panics
    /// Same as [`Pipeline::analyze`].
    pub fn analyze_with_registry(
        device: &DeviceSpec,
        workloads: &[Graph],
        registry: ModelRegistry,
        iters: usize,
        seed: u64,
    ) -> Self {
        assert!(!workloads.is_empty(), "analysis needs at least one workload");
        assert!(iters > 0, "analysis needs at least one iteration");

        let _span = dlperf_obs::span_with(dlperf_obs::SpanKind::Phase, || {
            format!("pipeline.analyze/{}", device.name)
        });
        let mut per_workload = Vec::new();
        for (i, g) in workloads.iter().enumerate() {
            let _profile = dlperf_obs::span_with(dlperf_obs::SpanKind::Phase, || {
                format!("pipeline.profile/{}", g.name)
            });
            let mut engine = ExecutionEngine::new(device.clone(), seed.wrapping_add(i as u64));
            let runs = engine
                .run_iterations(g, iters)
                .unwrap_or_else(|e| panic!("workload `{}` failed to execute: {e}", g.name));
            let traces: Vec<Trace> = runs.into_iter().map(|r| r.trace).collect();
            per_workload.push((g.name.clone(), OverheadStats::extract(&traces, true)));
        }
        let shared = OverheadStats::merge(&per_workload.iter().map(|(_, s)| s).collect::<Vec<_>>());
        Pipeline {
            device: device.clone(),
            predictor: E2ePredictor::new(registry, shared),
            per_workload,
        }
    }

    /// The fault-tolerant analysis track: like [`Pipeline::analyze`], but
    /// one malformed workload no longer aborts the whole analysis — it is
    /// skipped, recorded, and named in the returned [`AnalysisReport`].
    ///
    /// # Errors
    /// Returns a typed [`PipelineError`] when the inputs are unusable
    /// (empty workload list, zero iterations) or *every* workload fails.
    pub fn analyze_resilient(
        device: &DeviceSpec,
        workloads: &[Graph],
        effort: CalibrationEffort,
        iters: usize,
        seed: u64,
    ) -> Result<(Self, AnalysisReport), PipelineError> {
        let registry = ModelRegistry::calibrate(device, effort, seed ^ 0xabcd);
        Self::analyze_resilient_with_registry(device, workloads, registry, iters, seed)
    }

    /// Like [`Pipeline::analyze_resilient`] but reusing an
    /// already-calibrated kernel registry.
    ///
    /// # Errors
    /// Same as [`Pipeline::analyze_resilient`].
    pub fn analyze_resilient_with_registry(
        device: &DeviceSpec,
        workloads: &[Graph],
        registry: ModelRegistry,
        iters: usize,
        seed: u64,
    ) -> Result<(Self, AnalysisReport), PipelineError> {
        if workloads.is_empty() {
            return Err(PipelineError::NoWorkloads);
        }
        if iters == 0 {
            return Err(PipelineError::NoIterations);
        }

        let _span = dlperf_obs::span_with(dlperf_obs::SpanKind::Phase, || {
            format!("pipeline.analyze/{}", device.name)
        });
        let mut report = AnalysisReport::default();
        let mut per_workload = Vec::new();
        for (i, g) in workloads.iter().enumerate() {
            let mut engine = ExecutionEngine::new(device.clone(), seed.wrapping_add(i as u64));
            match engine.run_iterations(g, iters) {
                Ok(runs) => {
                    let traces: Vec<Trace> = runs.into_iter().map(|r| r.trace).collect();
                    per_workload.push((g.name.clone(), OverheadStats::extract(&traces, true)));
                    report.analyzed.push(g.name.clone());
                }
                Err(e) => report.skipped.push((g.name.clone(), e)),
            }
        }
        if per_workload.is_empty() {
            return Err(PipelineError::AllWorkloadsFailed(report.skipped));
        }

        let shared = OverheadStats::merge(&per_workload.iter().map(|(_, s)| s).collect::<Vec<_>>());
        let pipeline = Pipeline {
            device: device.clone(),
            predictor: E2ePredictor::new(registry, shared),
            per_workload,
        };
        Ok((pipeline, report))
    }

    /// The supervised analysis track: like [`Pipeline::analyze_resilient`],
    /// but run under a [`Supervisor`] — one checkpointable step per
    /// workload, so a killed analysis resumes from its last snapshot and
    /// still produces a bitwise-identical pipeline (each workload's engine
    /// is seeded independently by its input index, and kernel calibration
    /// is a deterministic function of `(device, effort, seed)` redone at
    /// assembly time rather than checkpointed).
    ///
    /// Returns the run's [`RunReport`] alongside the result so callers see
    /// restarts, resumes, and checkpoint counts even on failure.
    pub fn analyze_supervised(
        device: &DeviceSpec,
        workloads: &[Graph],
        effort: CalibrationEffort,
        iters: usize,
        seed: u64,
        supervisor: &mut Supervisor,
    ) -> (Result<(Self, AnalysisReport), SupervisorError>, RunReport) {
        let job = AnalysisJob::new(device, workloads, iters, seed);
        let invalid = if workloads.is_empty() {
            Some(PipelineError::NoWorkloads)
        } else if iters == 0 {
            Some(PipelineError::NoIterations)
        } else {
            None
        };
        if let Some(why) = invalid {
            let name = job.name().to_string();
            return (
                Err(SupervisorError::Failed { job: name.clone(), why: why.to_string() }),
                RunReport { job: name, ..RunReport::default() },
            );
        }
        let (result, report) = supervisor.run(&job);
        let result = result.map(|state| {
            let registry = ModelRegistry::calibrate(device, effort, seed ^ 0xabcd);
            Self::assemble(device, registry, state)
        });
        (result, report)
    }

    /// Rebuilds a pipeline + report from a completed [`AnalysisState`].
    fn assemble(
        device: &DeviceSpec,
        registry: ModelRegistry,
        state: AnalysisState,
    ) -> (Self, AnalysisReport) {
        let per_workload: Vec<(String, OverheadStats)> = state
            .analyzed
            .into_iter()
            .map(|(name, json)| {
                // The state came out of a checksummed checkpoint (or straight
                // from `extract`); a parse failure here is a code bug.
                let stats = OverheadStats::from_json(&json)
                    .expect("checkpointed overhead stats must parse");
                (name, stats)
            })
            .collect();
        let report = AnalysisReport {
            analyzed: per_workload.iter().map(|(n, _)| n.clone()).collect(),
            skipped: state.skipped,
        };
        let shared = OverheadStats::merge(&per_workload.iter().map(|(_, s)| s).collect::<Vec<_>>());
        let pipeline = Pipeline {
            device: device.clone(),
            predictor: E2ePredictor::new(registry, shared),
            per_workload,
        };
        (pipeline, report)
    }

    /// Builds a pipeline from precomputed assets (e.g. a JSON overhead
    /// database from another session).
    pub fn from_assets(device: DeviceSpec, registry: ModelRegistry, overheads: OverheadStats) -> Self {
        Pipeline { device, predictor: E2ePredictor::new(registry, overheads), per_workload: Vec::new() }
    }

    /// The device this pipeline models.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The predictor (shared-overhead configuration).
    pub fn predictor(&self) -> &E2ePredictor {
        &self.predictor
    }

    /// A predictor bound to one workload's *individual* overhead database —
    /// the paper's `E2E` setting, vs the default `shared_E2E`.
    ///
    /// Returns `None` if that workload was not part of the analysis.
    pub fn predictor_for(&self, workload: &str) -> Option<E2ePredictor> {
        self.per_workload.iter().find(|(n, _)| n == workload).map(|(_, stats)| {
            let mut p = self.predictor.clone();
            p.set_overheads(stats.clone());
            p
        })
    }

    /// Names of the workloads analyzed.
    pub fn workloads(&self) -> Vec<&str> {
        self.per_workload.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Predicts with the shared overhead database.
    ///
    /// # Errors
    /// Returns a [`LowerError`] on malformed graphs.
    pub fn predict(&self, graph: &Graph) -> Result<Prediction, LowerError> {
        self.predictor.predict(graph)
    }

    /// Predicts with the shared overhead database, answering kernel-model
    /// queries from `cache` (which must be dedicated to this pipeline —
    /// cache keys do not include the device).
    ///
    /// # Errors
    /// Returns a [`LowerError`] on malformed graphs.
    pub fn predict_memoized(
        &self,
        graph: &Graph,
        cache: &dlperf_kernels::MemoCache,
    ) -> Result<Prediction, LowerError> {
        self.predictor.predict_memoized(graph, cache)
    }

    /// Scratch-backed forms of [`Pipeline::predict`] /
    /// [`Pipeline::predict_memoized`]: every intermediate lives in
    /// `scratch` (see [`crate::predictor::WalkScratch`]), so steady-state
    /// repeated predictions allocate nothing. Bitwise identical to the
    /// owning paths.
    ///
    /// # Errors
    /// Returns a [`LowerError`] on malformed graphs.
    pub fn predict_scratch(
        &self,
        graph: &Graph,
        scratch: &mut crate::predictor::WalkScratch,
    ) -> Result<Prediction, LowerError> {
        self.predictor.predict_scratch(graph, scratch)
    }

    /// See [`Pipeline::predict_scratch`].
    ///
    /// # Errors
    /// Returns a [`LowerError`] on malformed graphs.
    pub fn predict_memoized_scratch(
        &self,
        graph: &Graph,
        cache: &dlperf_kernels::MemoCache,
        scratch: &mut crate::predictor::WalkScratch,
    ) -> Result<Prediction, LowerError> {
        self.predictor.predict_memoized_scratch(graph, cache, scratch)
    }

    /// Like [`Pipeline::predict_memoized`], but honouring a cancellation
    /// token between op steps (see
    /// [`E2ePredictor::predict_memoized_cancellable`]); a completed run is
    /// bitwise identical to the non-cancellable path.
    ///
    /// # Errors
    /// [`crate::predictor::PredictError`] on malformed graphs or when the
    /// token fired mid-walk.
    pub fn predict_memoized_cancellable(
        &self,
        graph: &Graph,
        cache: &dlperf_kernels::MemoCache,
        token: &dlperf_runtime::CancellationToken,
    ) -> Result<Prediction, crate::predictor::PredictError> {
        self.predictor.predict_memoized_cancellable(graph, cache, token)
    }

    /// Predicts with the workload's individual overheads when available,
    /// falling back to shared.
    ///
    /// # Errors
    /// Returns a [`LowerError`] on malformed graphs.
    pub fn predict_individual(&self, graph: &Graph) -> Result<Prediction, LowerError> {
        match self.predictor_for(&graph.name) {
            Some(p) => p.predict(graph),
            None => self.predict(graph),
        }
    }

    /// Serializes the shared overhead database to JSON (the maintained
    /// "overhead database for large-scale predictions").
    pub fn shared_overheads_json(&self) -> String {
        // The predictor's stats are the shared merge by construction.
        let all: Vec<&OverheadStats> = self.per_workload.iter().map(|(_, s)| s).collect();
        OverheadStats::merge(&all).to_json()
    }
}

/// Resumable progress of the supervised analysis track.
///
/// Overhead statistics ride as their JSON form ([`OverheadStats::to_json`])
/// because `OverheadStats` round-trips bitwise through it and the
/// checkpoint envelope re-serializes the whole state anyway; errors ride as
/// typed [`EngineError`]s.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AnalysisState {
    /// `(workload name, OverheadStats JSON)` for each analyzed workload,
    /// in input order.
    analyzed: Vec<(String, String)>,
    /// Workloads skipped, each with the error that disqualified it.
    skipped: Vec<(String, EngineError)>,
}

/// The analysis track packaged as a [`ResumableJob`]: one step per input
/// workload, checkpointable between workloads. Step `i` always analyzes
/// workload `i` with engine seed `seed + i`, independent of how earlier
/// steps fared — the property that makes a resumed run bitwise identical
/// to an uninterrupted one.
pub struct AnalysisJob<'a> {
    device: &'a DeviceSpec,
    workloads: &'a [Graph],
    iters: usize,
    seed: u64,
}

impl<'a> AnalysisJob<'a> {
    /// Packages one analysis run. Input validation (non-empty workloads,
    /// non-zero iterations) is the caller's job — see
    /// [`Pipeline::analyze_supervised`].
    pub fn new(device: &'a DeviceSpec, workloads: &'a [Graph], iters: usize, seed: u64) -> Self {
        AnalysisJob { device, workloads, iters, seed }
    }
}

impl ResumableJob for AnalysisJob<'_> {
    type State = AnalysisState;
    type Output = AnalysisState;

    fn name(&self) -> &str {
        "core.analysis"
    }

    fn initial_state(&self) -> AnalysisState {
        AnalysisState::default()
    }

    fn step(&self, state: &mut AnalysisState, ctx: &JobContext) -> Result<StepOutcome, JobError> {
        ctx.check_cancelled()?;
        let i = state.analyzed.len() + state.skipped.len();
        debug_assert_eq!(i as u64, ctx.step, "analysis state out of sync with supervisor step");
        let g = &self.workloads[i];
        let mut engine =
            ExecutionEngine::new(self.device.clone(), self.seed.wrapping_add(i as u64));
        match engine.run_iterations(g, self.iters) {
            Ok(runs) => {
                let traces: Vec<Trace> = runs.into_iter().map(|r| r.trace).collect();
                state
                    .analyzed
                    .push((g.name.clone(), OverheadStats::extract(&traces, true).to_json()));
            }
            Err(e) => state.skipped.push((g.name.clone(), e)),
        }
        if state.analyzed.len() + state.skipped.len() < self.workloads.len() {
            return Ok(StepOutcome::Continue);
        }
        if state.analyzed.is_empty() {
            // Retrying cannot help: every workload failed deterministically.
            return Err(JobError::Failed(
                PipelineError::AllWorkloadsFailed(state.skipped.clone()).to_string(),
            ));
        }
        Ok(StepOutcome::Done)
    }

    fn finish(&self, state: AnalysisState) -> AnalysisState {
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_kernels::CalibrationEffort;
    use dlperf_models::DlrmConfig;

    fn small(name_batch: u64) -> Graph {
        DlrmConfig {
            rows_per_table: vec![50_000; 4],
            ..DlrmConfig::default_config(name_batch)
        }
        .build()
    }

    #[test]
    fn analyze_then_predict_round_trips() {
        let dev = DeviceSpec::v100();
        let workloads = vec![small(256), DlrmConfig::ddp_config(256).build()];
        let pipe = Pipeline::analyze(&dev, &workloads, CalibrationEffort::Quick, 10, 3);
        assert_eq!(pipe.workloads().len(), 2);
        let p = pipe.predict(&workloads[0]).unwrap();
        assert!(p.e2e_us > 0.0);
        let pi = pipe.predict_individual(&workloads[0]).unwrap();
        assert!(pi.e2e_us > 0.0);
        assert_ne!(p.e2e_us, pi.e2e_us, "shared and individual overheads should differ");
    }

    #[test]
    fn predictor_for_unknown_workload_is_none() {
        let dev = DeviceSpec::v100();
        let workloads = vec![small(128)];
        let pipe = Pipeline::analyze(&dev, &workloads, CalibrationEffort::Quick, 5, 4);
        assert!(pipe.predictor_for("nonexistent").is_none());
    }

    #[test]
    fn overhead_db_exports_json() {
        let dev = DeviceSpec::p100();
        let pipe = Pipeline::analyze(&dev, &[small(128)], CalibrationEffort::Quick, 5, 5);
        let json = pipe.shared_overheads_json();
        assert!(OverheadStats::from_json(&json).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_workloads_panic() {
        Pipeline::analyze(&DeviceSpec::v100(), &[], CalibrationEffort::Quick, 5, 0);
    }

    /// A graph whose only op cannot lower (AddMm with one input).
    fn malformed(name: &str) -> Graph {
        use dlperf_graph::{OpKind, TensorMeta};
        let mut g = Graph::new(name);
        let x = g.add_tensor(TensorMeta::activation(&[8, 8]));
        let y = g.add_tensor(TensorMeta::activation(&[8, 8]));
        g.add_op(OpKind::AddMm, vec![x], vec![y]);
        g
    }

    #[test]
    fn resilient_analysis_skips_and_names_malformed_workload() {
        let dev = DeviceSpec::v100();
        let workloads = vec![small(128), malformed("broken-graph"), small(256)];
        let (pipe, report) =
            Pipeline::analyze_resilient(&dev, &workloads, CalibrationEffort::Quick, 5, 6)
                .expect("two good workloads remain");
        assert_eq!(pipe.workloads().len(), 2);
        assert_eq!(report.analyzed.len(), 2);
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].0, "broken-graph");
        assert!(report.summary().contains("broken-graph"), "summary: {}", report.summary());
        // The surviving pipeline still predicts.
        assert!(pipe.predict(&workloads[0]).unwrap().e2e_us > 0.0);
    }

    #[test]
    fn supervised_analysis_matches_resilient_bitwise() {
        let dev = DeviceSpec::v100();
        let workloads = vec![small(128), malformed("broken-graph"), small(256)];
        let (pipe_a, report_a) =
            Pipeline::analyze_resilient(&dev, &workloads, CalibrationEffort::Quick, 5, 6)
                .expect("two good workloads remain");

        let mut sup = Supervisor::new(dlperf_runtime::SupervisorConfig::default());
        let (res, run) =
            Pipeline::analyze_supervised(&dev, &workloads, CalibrationEffort::Quick, 5, 6, &mut sup);
        let (pipe_b, report_b) = res.expect("supervised analysis succeeds");

        assert_eq!(run.steps_completed, 3);
        assert_eq!(report_a.analyzed, report_b.analyzed);
        assert_eq!(report_a.skipped, report_b.skipped);
        for g in [&workloads[0], &workloads[2]] {
            let a = pipe_a.predict(g).unwrap();
            let b = pipe_b.predict(g).unwrap();
            assert_eq!(a.e2e_us.to_bits(), b.e2e_us.to_bits(), "shared prediction for {}", g.name);
            let ia = pipe_a.predict_individual(g).unwrap();
            let ib = pipe_b.predict_individual(g).unwrap();
            assert_eq!(ia.e2e_us.to_bits(), ib.e2e_us.to_bits(), "individual for {}", g.name);
        }
    }

    #[test]
    fn supervised_analysis_killed_and_resumed_is_bitwise_identical() {
        use dlperf_faults::{FaultInjector, FaultPlan};
        use dlperf_runtime::{FileStore, Supervisor, SupervisorConfig};

        let dev = DeviceSpec::v100();
        let workloads = vec![small(128), small(192), small(256)];
        let (effort, iters, seed) = (CalibrationEffort::Quick, 5, 7);

        // Reference: uninterrupted run.
        let mut sup = Supervisor::new(SupervisorConfig::default());
        let (res, _) =
            Pipeline::analyze_supervised(&dev, &workloads, effort, iters, seed, &mut sup);
        let (pipe_ref, _) = res.expect("uninterrupted run succeeds");

        let dir = std::env::temp_dir().join("dlperf-core-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("analysis.ckpt.json");
        std::fs::remove_file(&path).ok();

        // Run A: a chaos plan kills the worker partway through and the
        // restart budget is zero, so the run dies with a checkpoint behind.
        let cfg = SupervisorConfig { max_restarts: 0, ..SupervisorConfig::default() };
        let mut sup_a = Supervisor::with_store(cfg, Box::new(FileStore::new(&path)));
        // Plan seed 10 draws no kill for step 0 and a kill for step 1 at
        // this probability, so the run dies with exactly one step behind it.
        sup_a.set_fault_injector(FaultInjector::new(
            FaultPlan::healthy(10).with_worker_faults(0.0, 0.9, 0.0),
        ));
        let (res_a, report_a) =
            Pipeline::analyze_supervised(&dev, &workloads, effort, iters, seed, &mut sup_a);
        assert!(res_a.is_err(), "the kill must take the run down");
        assert!(
            report_a.steps_completed > 0 && report_a.steps_completed < 3,
            "the kill must land mid-run (completed {}), adjust the plan seed",
            report_a.steps_completed
        );
        assert!(path.exists(), "a checkpoint must survive the kill");

        // Run B: a fresh supervisor (fresh process, in effect) resumes from
        // the checkpoint and completes.
        let mut sup_b =
            Supervisor::with_store(SupervisorConfig::default(), Box::new(FileStore::new(&path)));
        let (res_b, report_b) =
            Pipeline::analyze_supervised(&dev, &workloads, effort, iters, seed, &mut sup_b);
        let (pipe_b, analysis_b) = res_b.expect("resumed run completes");
        assert_eq!(report_b.resumed_from_step, Some(report_a.steps_completed));
        assert!(analysis_b.is_clean());
        assert!(!path.exists(), "checkpoint is cleared after success");

        for g in &workloads {
            let r = pipe_ref.predict(g).unwrap();
            let b = pipe_b.predict(g).unwrap();
            assert_eq!(r.e2e_us.to_bits(), b.e2e_us.to_bits(), "prediction for {}", g.name);
        }
    }

    #[test]
    fn supervised_analysis_typed_errors() {
        let dev = DeviceSpec::v100();
        let mut sup = Supervisor::new(dlperf_runtime::SupervisorConfig::default());
        let (res, _) =
            Pipeline::analyze_supervised(&dev, &[], CalibrationEffort::Quick, 5, 0, &mut sup);
        match res {
            Err(SupervisorError::Failed { why, .. }) => assert!(why.contains("workload")),
            other => panic!("expected Failed, got {other:?}"),
        }
        let (res, _) = Pipeline::analyze_supervised(
            &dev,
            &[small(64)],
            CalibrationEffort::Quick,
            0,
            0,
            &mut sup,
        );
        match res {
            Err(SupervisorError::Failed { why, .. }) => assert!(why.contains("iteration")),
            other => panic!("expected Failed, got {other:?}"),
        }
        let (res, _) = Pipeline::analyze_supervised(
            &dev,
            &[malformed("only")],
            CalibrationEffort::Quick,
            3,
            0,
            &mut sup,
        );
        match res {
            Err(SupervisorError::Failed { why, .. }) => assert!(why.contains("only")),
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn resilient_analysis_typed_errors() {
        let dev = DeviceSpec::v100();
        assert_eq!(
            Pipeline::analyze_resilient(&dev, &[], CalibrationEffort::Quick, 5, 0).err(),
            Some(PipelineError::NoWorkloads)
        );
        assert_eq!(
            Pipeline::analyze_resilient(&dev, &[small(64)], CalibrationEffort::Quick, 0, 0).err(),
            Some(PipelineError::NoIterations)
        );
        match Pipeline::analyze_resilient(&dev, &[malformed("only")], CalibrationEffort::Quick, 3, 0)
        {
            Err(PipelineError::AllWorkloadsFailed(fails)) => {
                assert_eq!(fails.len(), 1);
                assert_eq!(fails[0].0, "only");
            }
            other => panic!("expected AllWorkloadsFailed, got {other:?}"),
        }
    }
}
