//! The Fig. 3 prediction pipeline.
//!
//! *Analysis Track* (run once per device): execute the input workloads on
//! the (simulated) hardware with profiling on, break down their traces,
//! extract T1–T5 overhead statistics, run the kernel microbenchmarks, and
//! fit the kernel performance models. The products — a
//! [`ModelRegistry`] and an [`OverheadStats`] database — are the reusable
//! assets (blue cylinders).
//!
//! *Prediction Track* (run per what-if): extract/transform an execution
//! graph and price it with Algorithm 1. No hardware needed.

use dlperf_gpusim::DeviceSpec;
use dlperf_graph::lower::LowerError;
use dlperf_graph::Graph;
use dlperf_kernels::{CalibrationEffort, ModelRegistry};
use dlperf_trace::engine::ExecutionEngine;
use dlperf_trace::{OverheadStats, Trace};

use crate::predictor::{E2ePredictor, Prediction};

/// A calibrated pipeline: kernel models plus an overhead database for one
/// device, ready to price execution graphs.
#[derive(Debug, Clone)]
pub struct Pipeline {
    device: DeviceSpec,
    predictor: E2ePredictor,
    /// Per-workload overhead databases (workload name → stats), kept so the
    /// caller can switch between individual and shared overheads.
    per_workload: Vec<(String, OverheadStats)>,
}

impl Pipeline {
    /// Runs the analysis track: profiles each workload for `iters`
    /// iterations on `device`, extracts overheads, and calibrates the
    /// kernel models. The resulting predictor uses the *shared* (merged)
    /// overhead database by default.
    ///
    /// # Panics
    /// Panics if `workloads` is empty, `iters` is zero, or a workload fails
    /// to lower (malformed graph).
    pub fn analyze(
        device: &DeviceSpec,
        workloads: &[Graph],
        effort: CalibrationEffort,
        iters: usize,
        seed: u64,
    ) -> Self {
        let registry = ModelRegistry::calibrate(device, effort, seed ^ 0xabcd);
        Self::analyze_with_registry(device, workloads, registry, iters, seed)
    }

    /// Like [`Pipeline::analyze`] but reusing an already-calibrated kernel
    /// registry — calibration depends only on the device, so one registry
    /// serves any number of workload analyses.
    ///
    /// # Panics
    /// Same as [`Pipeline::analyze`].
    pub fn analyze_with_registry(
        device: &DeviceSpec,
        workloads: &[Graph],
        registry: ModelRegistry,
        iters: usize,
        seed: u64,
    ) -> Self {
        assert!(!workloads.is_empty(), "analysis needs at least one workload");
        assert!(iters > 0, "analysis needs at least one iteration");

        let mut per_workload = Vec::new();
        for (i, g) in workloads.iter().enumerate() {
            let mut engine = ExecutionEngine::new(device.clone(), seed.wrapping_add(i as u64));
            let runs = engine
                .run_iterations(g, iters)
                .unwrap_or_else(|e| panic!("workload `{}` failed to execute: {e}", g.name));
            let traces: Vec<Trace> = runs.into_iter().map(|r| r.trace).collect();
            per_workload.push((g.name.clone(), OverheadStats::extract(&traces, true)));
        }
        let shared = OverheadStats::merge(&per_workload.iter().map(|(_, s)| s).collect::<Vec<_>>());
        Pipeline {
            device: device.clone(),
            predictor: E2ePredictor::new(registry, shared),
            per_workload,
        }
    }

    /// Builds a pipeline from precomputed assets (e.g. a JSON overhead
    /// database from another session).
    pub fn from_assets(device: DeviceSpec, registry: ModelRegistry, overheads: OverheadStats) -> Self {
        Pipeline { device, predictor: E2ePredictor::new(registry, overheads), per_workload: Vec::new() }
    }

    /// The device this pipeline models.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The predictor (shared-overhead configuration).
    pub fn predictor(&self) -> &E2ePredictor {
        &self.predictor
    }

    /// A predictor bound to one workload's *individual* overhead database —
    /// the paper's `E2E` setting, vs the default `shared_E2E`.
    ///
    /// Returns `None` if that workload was not part of the analysis.
    pub fn predictor_for(&self, workload: &str) -> Option<E2ePredictor> {
        self.per_workload.iter().find(|(n, _)| n == workload).map(|(_, stats)| {
            let mut p = self.predictor.clone();
            p.set_overheads(stats.clone());
            p
        })
    }

    /// Names of the workloads analyzed.
    pub fn workloads(&self) -> Vec<&str> {
        self.per_workload.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Predicts with the shared overhead database.
    ///
    /// # Errors
    /// Returns a [`LowerError`] on malformed graphs.
    pub fn predict(&self, graph: &Graph) -> Result<Prediction, LowerError> {
        self.predictor.predict(graph)
    }

    /// Predicts with the workload's individual overheads when available,
    /// falling back to shared.
    ///
    /// # Errors
    /// Returns a [`LowerError`] on malformed graphs.
    pub fn predict_individual(&self, graph: &Graph) -> Result<Prediction, LowerError> {
        match self.predictor_for(&graph.name) {
            Some(p) => p.predict(graph),
            None => self.predict(graph),
        }
    }

    /// Serializes the shared overhead database to JSON (the maintained
    /// "overhead database for large-scale predictions").
    pub fn shared_overheads_json(&self) -> String {
        // The predictor's stats are the shared merge by construction.
        let all: Vec<&OverheadStats> = self.per_workload.iter().map(|(_, s)| s).collect();
        OverheadStats::merge(&all).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_kernels::CalibrationEffort;
    use dlperf_models::DlrmConfig;

    fn small(name_batch: u64) -> Graph {
        DlrmConfig {
            rows_per_table: vec![50_000; 4],
            ..DlrmConfig::default_config(name_batch)
        }
        .build()
    }

    #[test]
    fn analyze_then_predict_round_trips() {
        let dev = DeviceSpec::v100();
        let workloads = vec![small(256), DlrmConfig::ddp_config(256).build()];
        let pipe = Pipeline::analyze(&dev, &workloads, CalibrationEffort::Quick, 10, 3);
        assert_eq!(pipe.workloads().len(), 2);
        let p = pipe.predict(&workloads[0]).unwrap();
        assert!(p.e2e_us > 0.0);
        let pi = pipe.predict_individual(&workloads[0]).unwrap();
        assert!(pi.e2e_us > 0.0);
        assert_ne!(p.e2e_us, pi.e2e_us, "shared and individual overheads should differ");
    }

    #[test]
    fn predictor_for_unknown_workload_is_none() {
        let dev = DeviceSpec::v100();
        let workloads = vec![small(128)];
        let pipe = Pipeline::analyze(&dev, &workloads, CalibrationEffort::Quick, 5, 4);
        assert!(pipe.predictor_for("nonexistent").is_none());
    }

    #[test]
    fn overhead_db_exports_json() {
        let dev = DeviceSpec::p100();
        let pipe = Pipeline::analyze(&dev, &[small(128)], CalibrationEffort::Quick, 5, 5);
        let json = pipe.shared_overheads_json();
        assert!(OverheadStats::from_json(&json).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_workloads_panic() {
        Pipeline::analyze(&DeviceSpec::v100(), &[], CalibrationEffort::Quick, 5, 0);
    }
}
