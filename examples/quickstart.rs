//! Quickstart: calibrate the pipeline on the three paper DLRM configs and
//! predict their per-batch training time, comparing against the simulated
//! measurement.
//!
//! Run with `cargo run --release --example quickstart`.

use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::kernels::CalibrationEffort;
use dlrm_perf_model::models::DlrmConfig;
use dlrm_perf_model::trace::engine::ExecutionEngine;

fn main() {
    let device = DeviceSpec::v100();
    let batch = 2048;
    let workloads: Vec<_> = DlrmConfig::paper_configs(batch).iter().map(|c| c.build()).collect();

    println!("== Analysis track: profiling {} workloads on {} ==", workloads.len(), device.name);
    let pipeline = Pipeline::analyze(&device, &workloads, CalibrationEffort::Quick, 30, 42);

    println!("\n== Prediction track ==");
    println!(
        "{:14} {:>12} {:>12} {:>8} {:>8}",
        "workload", "measured/us", "predicted/us", "err", "util"
    );
    for graph in &workloads {
        let mut engine = ExecutionEngine::new(device.clone(), 7);
        engine.set_profiling(false); // the paper compares against non-profiled runs
        let measured = engine.measure_e2e(graph, 20).expect("workload executes");
        let pred = pipeline.predict_individual(graph).expect("workload lowers");
        println!(
            "{:14} {:12.0} {:12.0} {:+7.1}% {:7.0}%",
            graph.name,
            measured,
            pred.e2e_us,
            (pred.e2e_us - measured) / measured * 100.0,
            pred.utilization() * 100.0
        );
    }
    println!("\nThe prediction needed no further execution — only the graph.");
}
