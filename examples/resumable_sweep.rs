//! A resumable microbenchmark + grid-search sweep, built for kill/resume
//! verification: run it to completion once, then run it again while
//! SIGKILLing the process mid-sweep a few times, resume, and diff the two
//! output digests — they must be byte-identical. CI does exactly that.
//!
//! ```text
//! cargo run --release --example resumable_sweep -- \
//!     --checkpoint /tmp/sweep.ckpt --out /tmp/sweep.digest [--step-delay-ms 200]
//! ```
//!
//! `--checkpoint` is the snapshot file prefix (two supervised stages, two
//! files); `--out` receives a digest of every result f64 as raw bits, so a
//! diff catches even 1-ulp divergence; `--step-delay-ms` slows each step
//! down to give an external killer a window to land mid-run.

use std::error::Error;
use std::time::Duration;

use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::kernels::microbench::{gemm_specs, MicrobenchHarness};
use dlrm_perf_model::kernels::mlbased::dataset_of;
use dlrm_perf_model::nn::gridsearch::{GridSearchJob, SearchSpace};
use dlrm_perf_model::runtime::{
    FileStore, JobContext, JobError, ResumableJob, Supervisor, SupervisorConfig, StepOutcome,
};

/// Wraps a job with an artificial per-step delay so an external SIGKILL
/// has a window to land between checkpoints.
struct Throttled<J> {
    inner: J,
    delay: Duration,
}

impl<J: ResumableJob> ResumableJob for Throttled<J> {
    type State = J::State;
    type Output = J::Output;

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn initial_state(&self) -> Self::State {
        self.inner.initial_state()
    }

    fn step(&self, state: &mut Self::State, ctx: &JobContext) -> Result<StepOutcome, JobError> {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.inner.step(state, ctx)
    }

    fn finish(&self, state: Self::State) -> Self::Output {
        self.inner.finish(state)
    }
}

fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn main() -> Result<(), Box<dyn Error>> {
    let checkpoint = flag("--checkpoint").unwrap_or_else(|| "/tmp/resumable-sweep.ckpt".into());
    let out = flag("--out").unwrap_or_else(|| "/tmp/resumable-sweep.digest".into());
    let delay =
        Duration::from_millis(flag("--step-delay-ms").map(|v| v.parse()).transpose()?.unwrap_or(0));

    let device = DeviceSpec::v100();
    let mut digest = String::new();

    // Stage 1: chunked microbenchmark sweep, checkpointed per chunk.
    let harness = MicrobenchHarness::new(&device, 42, 15, 8);
    let specs = gemm_specs(64, 10);
    let mut sup = Supervisor::with_store(
        SupervisorConfig::default(),
        Box::new(FileStore::new(format!("{checkpoint}.microbench"))),
    );
    let job = Throttled { inner: harness.job(&specs), delay };
    let (samples, report) = sup.run(&job);
    let samples = samples?;
    eprintln!("{}", report.summary());
    for s in &samples {
        digest.push_str(&format!("sample {:016x}\n", s.time_us.to_bits()));
    }

    // Stage 2: grid search over the sweep, checkpointed per configuration.
    let data = dataset_of(&samples);
    let space = SearchSpace {
        layers: vec![3],
        widths: vec![16, 32],
        optimizers: vec![dlrm_perf_model::nn::OptimizerKind::Adam],
        learning_rates: vec![1e-3, 5e-3],
    };
    let mut sup = Supervisor::with_store(
        SupervisorConfig::default(),
        Box::new(FileStore::new(format!("{checkpoint}.grid"))),
    );
    let job = Throttled { inner: GridSearchJob::new(&data, &space, 60, 7), delay };
    let (result, report) = sup.run(&job);
    let result = result?;
    eprintln!("{}", report.summary());
    for (hp, mape) in &result.trials {
        digest.push_str(&format!(
            "trial layers={} width={} lr={:016x} mape={:016x}\n",
            hp.num_layers,
            hp.width,
            hp.learning_rate.to_bits(),
            mape.to_bits()
        ));
    }
    digest.push_str(&format!(
        "best layers={} width={} lr={:016x} val_mape={:016x}\n",
        result.best.num_layers,
        result.best.width,
        result.best.learning_rate.to_bits(),
        result.model.val_mape.to_bits()
    ));

    std::fs::write(&out, &digest)?;
    eprintln!("digest written to {out}");
    Ok(())
}
