//! What-if analysis (§V-A / intro questions 1–2): how do batch size and a
//! GPU upgrade change DLRM's per-batch time — answered purely from the
//! execution graph, never re-running the model.
//!
//! The full batch × device matrix runs through the parallel sweep engine
//! with memoized kernel models; the run is bitwise identical to a
//! sequential uncached sweep, just faster (both are run and compared).
//!
//! Run with `cargo run --release --example whatif_batch_and_device`.
//!
//! Set `DLPERF_SELF_TRACE=/path/to/selftrace.json` to record the sweep
//! through the `dlperf-obs` recorder and write a self-trace the `trace`
//! crate can re-ingest (the model profiling itself); a short host/device
//! breakdown of the recording is printed at the end.

use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::core::sweep::{GraphMutation, ScenarioMatrix, SweepEngine};
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::kernels::CalibrationEffort;
use dlrm_perf_model::models::DlrmConfig;
use dlrm_perf_model::obs;
use dlrm_perf_model::trace::event_tree::EventTree;
use dlrm_perf_model::trace::ChromeTraceSink;

fn main() {
    let self_trace = std::env::var("DLPERF_SELF_TRACE").ok();
    let sink = self_trace.as_ref().map(|_| {
        let sink = ChromeTraceSink::install("whatif_batch_and_device", "host");
        obs::enable();
        sink
    });

    let graph = DlrmConfig::default_config(1024).build();
    let batches = [128u64, 256, 512, 1024, 2048, 4096];
    let devices = DeviceSpec::paper_devices();

    // One calibrated pipeline per candidate GPU.
    let pipelines: Vec<Pipeline> = devices
        .iter()
        .map(|dev| {
            println!("calibrating {} ...", dev.name);
            Pipeline::analyze(dev, std::slice::from_ref(&graph), CalibrationEffort::Quick, 15, 11)
        })
        .collect();

    let mut matrix = ScenarioMatrix::new();
    for (i, dev) in devices.iter().enumerate() {
        matrix = matrix.device(&dev.name, i);
    }
    // Two graph variants per cell: as-captured, and with every movable op
    // hoisted as early as dependencies allow (the §V-A reordering what-if).
    // The hoist is an expensive transform; scenarios differing only in
    // device share its prepared graph inside the engine.
    let scenarios = matrix
        .batches(&batches)
        .variant("base", vec![])
        .variant("hoisted", vec![GraphMutation::HoistAll])
        .build();

    // Reference: one thread, no memo cache — then the engine as shipped.
    let sequential = SweepEngine::new(pipelines.clone())
        .with_cache(false)
        .run_sequential(&graph, &scenarios);
    let parallel = SweepEngine::new(pipelines).with_threads(4).run(&graph, &scenarios);

    println!("\n== Batch × device × variant what-if matrix (per-batch E2E time) ==");
    println!("{:>34} {:>12} {:>14} {:>8}", "scenario", "e2e/us", "us-per-sample", "util");
    for (s, r) in scenarios.iter().zip(parallel.expect_complete()) {
        let p = r.expect_prediction();
        let b: u64 = s
            .label
            .split("/b")
            .nth(1)
            .and_then(|t| t.split('/').next())
            .and_then(|t| t.parse().ok())
            .unwrap_or(1);
        println!(
            "{:>34} {:>12.0} {:>14.3} {:>7.0}%",
            s.label,
            p.e2e_us,
            p.e2e_us / b as f64,
            p.utilization() * 100.0
        );
    }

    let identical = scenarios.iter().enumerate().all(|(i, _)| {
        let a = sequential.results[i].as_ref().unwrap();
        let b = parallel.results[i].as_ref().unwrap();
        a.prediction.as_ref().map(|p| p.e2e_us.to_bits())
            == b.prediction.as_ref().map(|p| p.e2e_us.to_bits())
    });
    let stats = parallel.cache.as_ref().expect("cache enabled");
    println!("\n== Sweep engine ==");
    println!("scenarios:        {}", scenarios.len());
    println!("bitwise identical to sequential uncached: {identical}");
    println!("cache:            {stats}");
    println!(
        "wall clock:       {:.1} ms parallel+cached vs {:.1} ms sequential uncached ({:.2}x)",
        parallel.wall_ms,
        sequential.wall_ms,
        sequential.wall_ms / parallel.wall_ms
    );
    println!("\nNote how the faster GPU helps less at low utilization: the CPU");
    println!("overheads, not the kernels, are the bottleneck the model exposes.");

    if let (Some(path), Some(sink)) = (self_trace, sink) {
        obs::disable();
        let snapshot = obs::flush();
        obs::clear_sinks();
        sink.write_json(&path).expect("self-trace written");

        // Re-ingest the trace we just wrote through the ordinary analysis
        // pipeline: the model's own run, mined like a profiler trace.
        let traces = ChromeTraceSink::parse_json(
            &std::fs::read_to_string(&path).expect("self-trace readable"),
        )
        .expect("self-trace parses");
        let mut ops = 0usize;
        let mut host_us = 0.0;
        let mut device_us = 0.0;
        for t in &traces {
            let tree = EventTree::build(t);
            ops += tree.ops.len();
            host_us += t.span_us;
            device_us += tree.total_device_time_us();
        }
        println!("\n== Self-trace ({path}) ==");
        println!("threads recorded: {}", traces.len());
        println!("top-level ops:    {ops}");
        println!("host span:        {host_us:.0} us  (sum over threads)");
        println!("work attributed:  {device_us:.0} us");
        let walks = snapshot
            .counters
            .iter()
            .find(|c| c.group == "core.walk" && c.name == "walks")
            .map_or(0, |c| c.value);
        println!("walk count:       {walks}");
    }
}
