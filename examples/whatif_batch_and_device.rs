//! What-if analysis (§V-A / intro questions 1–2): how do batch size and a
//! GPU upgrade change DLRM's per-batch time — answered purely from the
//! execution graph, never re-running the model.
//!
//! The full batch × device matrix runs through the parallel sweep engine
//! with memoized kernel models; the run is bitwise identical to a
//! sequential uncached sweep, just faster (both are run and compared).
//!
//! Run with `cargo run --release --example whatif_batch_and_device`.

use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::core::sweep::{GraphMutation, ScenarioMatrix, SweepEngine};
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::kernels::CalibrationEffort;
use dlrm_perf_model::models::DlrmConfig;

fn main() {
    let graph = DlrmConfig::default_config(1024).build();
    let batches = [128u64, 256, 512, 1024, 2048, 4096];
    let devices = DeviceSpec::paper_devices();

    // One calibrated pipeline per candidate GPU.
    let pipelines: Vec<Pipeline> = devices
        .iter()
        .map(|dev| {
            println!("calibrating {} ...", dev.name);
            Pipeline::analyze(dev, std::slice::from_ref(&graph), CalibrationEffort::Quick, 15, 11)
        })
        .collect();

    let mut matrix = ScenarioMatrix::new();
    for (i, dev) in devices.iter().enumerate() {
        matrix = matrix.device(&dev.name, i);
    }
    // Two graph variants per cell: as-captured, and with every movable op
    // hoisted as early as dependencies allow (the §V-A reordering what-if).
    // The hoist is an expensive transform; scenarios differing only in
    // device share its prepared graph inside the engine.
    let scenarios = matrix
        .batches(&batches)
        .variant("base", vec![])
        .variant("hoisted", vec![GraphMutation::HoistAll])
        .build();

    // Reference: one thread, no memo cache — then the engine as shipped.
    let sequential = SweepEngine::new(pipelines.clone())
        .with_cache(false)
        .run_sequential(&graph, &scenarios);
    let parallel = SweepEngine::new(pipelines).with_threads(4).run(&graph, &scenarios);

    println!("\n== Batch × device × variant what-if matrix (per-batch E2E time) ==");
    println!("{:>34} {:>12} {:>14} {:>8}", "scenario", "e2e/us", "us-per-sample", "util");
    for (s, r) in scenarios.iter().zip(parallel.expect_complete()) {
        let p = r.expect_prediction();
        let b: u64 = s
            .label
            .split("/b")
            .nth(1)
            .and_then(|t| t.split('/').next())
            .and_then(|t| t.parse().ok())
            .unwrap_or(1);
        println!(
            "{:>34} {:>12.0} {:>14.3} {:>7.0}%",
            s.label,
            p.e2e_us,
            p.e2e_us / b as f64,
            p.utilization() * 100.0
        );
    }

    let identical = scenarios.iter().enumerate().all(|(i, _)| {
        let a = sequential.results[i].as_ref().unwrap();
        let b = parallel.results[i].as_ref().unwrap();
        a.prediction.as_ref().map(|p| p.e2e_us.to_bits())
            == b.prediction.as_ref().map(|p| p.e2e_us.to_bits())
    });
    let stats = parallel.cache.as_ref().expect("cache enabled");
    println!("\n== Sweep engine ==");
    println!("scenarios:        {}", scenarios.len());
    println!("bitwise identical to sequential uncached: {identical}");
    println!("cache:            {stats}");
    println!(
        "wall clock:       {:.1} ms parallel+cached vs {:.1} ms sequential uncached ({:.2}x)",
        parallel.wall_ms,
        sequential.wall_ms,
        sequential.wall_ms / parallel.wall_ms
    );
    println!("\nNote how the faster GPU helps less at low utilization: the CPU");
    println!("overheads, not the kernels, are the bottleneck the model exposes.");
}
