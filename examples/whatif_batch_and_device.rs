//! What-if analysis (§V-A / intro questions 1–2): how do batch size and a
//! GPU upgrade change DLRM's per-batch time — answered purely from the
//! execution graph, never re-running the model.
//!
//! Run with `cargo run --release --example whatif_batch_and_device`.

use dlrm_perf_model::core::codesign::{batch_size_sweep, device_whatif};
use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::kernels::CalibrationEffort;
use dlrm_perf_model::models::DlrmConfig;

fn main() {
    let graph = DlrmConfig::default_config(1024).build();

    // One calibrated pipeline per candidate GPU.
    let pipelines: Vec<Pipeline> = DeviceSpec::paper_devices()
        .iter()
        .map(|dev| {
            println!("calibrating {} ...", dev.name);
            Pipeline::analyze(dev, std::slice::from_ref(&graph), CalibrationEffort::Quick, 15, 11)
        })
        .collect();

    println!("\n== Question 1: batch-size sweep on V100 ==");
    println!("{:>8} {:>12} {:>14} {:>8}", "batch", "e2e/us", "us-per-sample", "util");
    let sweep = batch_size_sweep(&pipelines[0], &graph, &[128, 256, 512, 1024, 2048, 4096])
        .expect("graph is batch-annotated");
    for (b, p) in sweep {
        println!(
            "{:8} {:12.0} {:14.3} {:7.0}%",
            b,
            p.e2e_us,
            p.e2e_us / b as f64,
            p.utilization() * 100.0
        );
    }

    println!("\n== Question 2: device upgrade at batch 1024 ==");
    println!("{:>12} {:>12} {:>8}", "device", "e2e/us", "util");
    for (name, p) in device_whatif(&pipelines, &graph).expect("graph lowers everywhere") {
        println!("{name:>12} {:12.0} {:7.0}%", p.e2e_us, p.utilization() * 100.0);
    }
    println!("\nNote how the faster GPU helps less at low utilization: the CPU");
    println!("overheads, not the kernels, are the bottleneck the model exposes.");
}
