//! Bottleneck hunting: where does DLRM's device idle time come from, and
//! what do fusion + reordering buy? Combines the idle-gap attribution, the
//! run comparison, and the reorder what-if — the "identify bottlenecks"
//! workflow of the paper's introduction.
//!
//! Run with `cargo run --release --example bottleneck_analysis`.

use dlrm_perf_model::core::codesign::reorder_whatif;
use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::graph::transform::fuse_embedding_bags;
use dlrm_perf_model::kernels::CalibrationEffort;
use dlrm_perf_model::models::DlrmConfig;
use dlrm_perf_model::trace::engine::ExecutionEngine;
use dlrm_perf_model::trace::{compare, gaps};

fn main() {
    let device = DeviceSpec::v100();
    let unfused = DlrmConfig {
        rows_per_table: vec![200_000; 12],
        ..DlrmConfig::default_config(512)
    }
    .with_batched_embedding(false)
    .build();

    // 1. Measure and attribute idle time.
    let mut engine = ExecutionEngine::new(device.clone(), 2);
    engine.set_profiling(false);
    let before = engine.run(&unfused).expect("executes");
    let report = gaps::attribute_idle(&before, 1.0);
    println!(
        "== {} @512: {:.0} us/iter, {:.0} us idle ==",
        unfused.name, before.e2e_us, report.total_idle_us
    );
    println!("ops causing the most device idle time:");
    for (op, idle) in report.per_op.iter().take(5) {
        println!("  {op:30} {idle:8.1} us");
    }

    // 2. The worklist points at the embedding bags: fuse them and diff.
    let mut fused = unfused.clone();
    fuse_embedding_bags(&mut fused).expect("fusable");
    let after = engine.run(&fused).expect("executes");
    let cmp = compare::compare(&before, &after);
    println!(
        "\n== after embedding-bag fusion: {:.2}x faster ==",
        cmp.speedup()
    );
    println!("largest per-op device-time changes:");
    for d in cmp.deltas.iter().take(5) {
        println!(
            "  {:30} {:>8.1} -> {:>8.1} us  (x{} -> x{})",
            d.op_key, d.before_us, d.after_us, d.count.0, d.count.1
        );
    }

    // 3. Reordering what-if on the fused graph, priced by the model alone.
    let pipeline =
        Pipeline::analyze(&device, std::slice::from_ref(&fused), CalibrationEffort::Quick, 15, 4);
    let (base, hoisted) = reorder_whatif(&pipeline, &fused).expect("lowers");
    println!(
        "\n== reorder what-if (hoist ops to their earliest legal slot) ==\npredicted: {:.0} -> {:.0} us ({:+.2}%)",
        base.e2e_us,
        hoisted.e2e_us,
        (hoisted.e2e_us - base.e2e_us) / base.e2e_us * 100.0
    );
    println!("\nAll three analyses used the same captured execution graph.");
}
