//! Train an ML-based kernel performance model the way the paper does:
//! microbenchmark sweep → Table II grid search → evaluate GMAE on a
//! held-out sweep.
//!
//! Run with `cargo run --release --example train_kernel_model`.
//! Pass `--full-grid` to search the complete 280-configuration Table II
//! space instead of the reduced one (slow).

use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::kernels::error::ErrorStats;
use dlrm_perf_model::kernels::microbench::{gemm_specs, Microbenchmark};
use dlrm_perf_model::kernels::mlbased::{dataset_of, features, MlKernelModel};
use dlrm_perf_model::nn::gridsearch::{grid_search, SearchSpace};

fn main() {
    let full = std::env::args().any(|a| a == "--full-grid");
    let device = DeviceSpec::v100();

    println!("sweeping {} GEMM shapes on {} ...", 600, device.name);
    let mut mb = Microbenchmark::new(&device, 1, 15);
    let train_samples = mb.measure(&gemm_specs(600, 10));
    let eval_samples = mb.measure(&gemm_specs(150, 999));

    let space = if full { SearchSpace::paper() } else { SearchSpace::reduced() };
    println!(
        "grid-searching {} configurations (MSE loss, log-preprocessed features) ...",
        space.configurations().len()
    );
    let data = dataset_of(&train_samples);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let result = grid_search(&data, &space, 120, threads, 42);

    println!("\nbest configuration: {:?}", result.best);
    println!("validation MAPE: {:.2}%", result.model.val_mape * 100.0);
    for (hp, err) in result.trials.iter().take(8) {
        println!(
            "  layers={} width={:4} {}@{:<7.0e} -> val MAPE {:5.2}%",
            hp.num_layers,
            hp.width,
            hp.optimizer,
            hp.learning_rate,
            err * 100.0
        );
    }

    // Wrap into a kernel model and evaluate on the held-out sweep.
    let cfg = dlrm_perf_model::nn::train::TrainConfig {
        hidden_layers: result.best.num_layers,
        width: result.best.width,
        optimizer: result.best.optimizer,
        learning_rate: result.best.learning_rate,
        epochs: 200,
        ..Default::default()
    };
    let model = MlKernelModel::train(&train_samples, &cfg, 7);
    let preds: Vec<f64> = eval_samples.iter().map(|s| model.predict(&s.kernel)).collect();
    let actual: Vec<f64> = eval_samples.iter().map(|s| s.time_us).collect();
    let stats = ErrorStats::try_from_pairs(&preds, &actual).expect("held-out samples are well-formed");
    println!("\nheld-out evaluation: {stats}");
    println!("feature vector of a 1024x1024x1024 GEMM: {:?}", features(&eval_samples[0].kernel));
}
