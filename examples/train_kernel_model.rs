//! Train an ML-based kernel performance model the way the paper does:
//! microbenchmark sweep → Table II grid search → evaluate GMAE on a
//! held-out sweep. The sweep runs through the chunked [`MicrobenchHarness`]
//! and the search under a [`Supervisor`], so both stages checkpoint their
//! progress and every fallible call propagates a typed error — nothing in
//! this example panics on bad input.
//!
//! Run with `cargo run --release --example train_kernel_model`.
//! Pass `--full-grid` to search the complete 280-configuration Table II
//! space instead of the reduced one (slow).

use std::error::Error;

use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::kernels::error::ErrorStats;
use dlrm_perf_model::kernels::microbench::{gemm_specs, MicrobenchHarness};
use dlrm_perf_model::kernels::mlbased::{dataset_of, features, MlKernelModel};
use dlrm_perf_model::nn::gridsearch::{grid_search_supervised, SearchSpace};
use dlrm_perf_model::runtime::{Supervisor, SupervisorConfig};

fn main() -> Result<(), Box<dyn Error>> {
    let full = std::env::args().any(|a| a == "--full-grid");
    let device = DeviceSpec::v100();

    println!("sweeping {} GEMM shapes on {} ...", 600, device.name);
    let harness = MicrobenchHarness::new(&device, 1, 15, 64);
    let mut sup = Supervisor::new(SupervisorConfig::default());
    let (train_samples, report) = harness.measure_supervised(&gemm_specs(600, 10), &mut sup);
    let train_samples = train_samples?;
    println!("  {}", report.summary());
    let eval_samples = harness.measure(&gemm_specs(150, 999));

    let space = if full { SearchSpace::paper() } else { SearchSpace::reduced() };
    println!(
        "grid-searching {} configurations (MSE loss, log-preprocessed features) ...",
        space.configurations().len()
    );
    let data = dataset_of(&train_samples);
    let (result, report) = grid_search_supervised(&data, &space, 120, 42, &mut sup);
    let result = result?;
    println!("  {}", report.summary());

    println!("\nbest configuration: {:?}", result.best);
    println!("validation MAPE: {:.2}%", result.model.val_mape * 100.0);
    for (hp, err) in result.trials.iter().take(8) {
        println!(
            "  layers={} width={:4} {}@{:<7.0e} -> val MAPE {:5.2}%",
            hp.num_layers,
            hp.width,
            hp.optimizer,
            hp.learning_rate,
            err * 100.0
        );
    }

    // Wrap into a kernel model and evaluate on the held-out sweep.
    let cfg = dlrm_perf_model::nn::train::TrainConfig {
        hidden_layers: result.best.num_layers,
        width: result.best.width,
        optimizer: result.best.optimizer,
        learning_rate: result.best.learning_rate,
        epochs: 200,
        ..Default::default()
    };
    let model = MlKernelModel::train(&train_samples, &cfg, 7);
    let preds: Vec<f64> = eval_samples.iter().map(|s| model.predict(&s.kernel)).collect();
    let actual: Vec<f64> = eval_samples.iter().map(|s| s.time_us).collect();
    let stats = ErrorStats::try_from_pairs(&preds, &actual)?;
    println!("\nheld-out evaluation: {stats}");
    println!("feature vector of a 1024x1024x1024 GEMM: {:?}", features(&eval_samples[0].kernel));
    Ok(())
}
