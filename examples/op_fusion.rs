//! The Fig. 11 op-fusion case study: a DLRM variant with separate
//! `embedding_bag` ops per table (left side of the figure) is fused into a
//! single batched embedding op (right side), and the performance model
//! prices both variants without running either.
//!
//! Run with `cargo run --release --example op_fusion`.

use dlrm_perf_model::core::codesign::fusion_whatif;
use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::kernels::CalibrationEffort;
use dlrm_perf_model::models::DlrmConfig;
use dlrm_perf_model::trace::engine::ExecutionEngine;

fn main() {
    let device = DeviceSpec::v100();
    // Many tables with separate bag ops: heavy per-op overhead, the fusion
    // target the paper's trace analysis flags.
    let config = DlrmConfig {
        rows_per_table: vec![200_000; 16],
        ..DlrmConfig::default_config(1024)
    }
    .with_batched_embedding(false);
    let unfused = config.build();

    let pipeline =
        Pipeline::analyze(&device, std::slice::from_ref(&unfused), CalibrationEffort::Quick, 20, 5);

    let outcome = fusion_whatif(&pipeline, &unfused).expect("graph contains fusable bags");
    println!("== Predicted (no execution needed) ==");
    println!(
        "separate bags : {:9.0} us/batch ({} embedding_bag ops + cat)",
        outcome.before.e2e_us, outcome.report.forward_bags_fused
    );
    println!("batched op    : {:9.0} us/batch", outcome.after.e2e_us);
    println!("speedup       : {:.2}x", outcome.speedup());

    // Cross-check the what-if against the simulated hardware.
    let mut fused_graph = unfused.clone();
    dlrm_perf_model::graph::transform::fuse_embedding_bags(&mut fused_graph).expect("fusable");
    let mut engine = ExecutionEngine::new(device.clone(), 3);
    let before = engine.measure_e2e(&unfused, 15).expect("executes");
    let mut engine = ExecutionEngine::new(device, 3);
    let after = engine.measure_e2e(&fused_graph, 15).expect("executes");
    println!("\n== Measured on the simulated device ==");
    println!("separate bags : {before:9.0} us/batch");
    println!("batched op    : {after:9.0} us/batch");
    println!("speedup       : {:.2}x", before / after);
}
