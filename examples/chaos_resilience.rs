//! Chaos sweep: how gracefully does the simulated cluster — and the
//! prediction stack above it — degrade as fault intensity rises from a
//! healthy fleet to full chaos (stragglers, thermal throttling, host
//! jitter, and flaky collectives all at once)? And when the faults target
//! the *workers themselves* (kills, panics), does the supervised runtime
//! contain them without changing a single result bit?
//!
//! Every fallible call propagates a typed error; nothing in this example
//! panics on bad input.
//!
//! Run with `cargo run --release --example chaos_resilience`.

use std::error::Error;

use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::distrib::{DistributedDlrm, MultiGpuEngine, ShardingPlan};
use dlrm_perf_model::faults::{FaultInjector, FaultPlan};
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::graph::{Graph, OpKind, TensorMeta};
use dlrm_perf_model::kernels::{CalibrationEffort, ModelRegistry};
use dlrm_perf_model::models::DlrmConfig;
use dlrm_perf_model::runtime::{Supervisor, SupervisorConfig};

fn main() -> Result<(), Box<dyn Error>> {
    let device = DeviceSpec::v100();
    let cfg = DlrmConfig::default_config(2048);
    let plan = ShardingPlan::round_robin(cfg.rows_per_table.len(), 4);
    let job = DistributedDlrm::new(cfg, plan)?;

    // 1. Fault-intensity sweep over the lockstep cluster engine, with a
    //    retry deadline so flaky collectives degrade instead of stalling.
    println!("== chaos sweep: hybrid-parallel DLRM @2048 on 4x V100 ==");
    println!(
        "{:>9} {:>12} {:>10} {:>8} {:>10} {:>7}",
        "intensity", "e2e (us)", "comm (us)", "retries", "+retry us", "drops"
    );
    let mut healthy_e2e = 0.0;
    for intensity in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut engine =
            MultiGpuEngine::with_faults(device.clone(), 42, FaultPlan::chaos(1337, intensity));
        engine.set_retry_deadline_us(Some(5_000.0));
        // Average a few lockstep iterations so retry noise settles.
        let iters = 4;
        let mut e2e = 0.0;
        let mut comm = 0.0;
        let mut retries = 0;
        let mut added = 0.0;
        let mut drops = 0;
        let mut notes = Vec::new();
        for _ in 0..iters {
            let r = engine.run(&job)?;
            e2e += r.e2e_us / iters as f64;
            comm += r.comm_us.iter().sum::<f64>() / iters as f64;
            retries += r.collective_retries;
            added += r.retry_added_us;
            drops += r.dropped_collectives.iter().filter(|d| **d).count();
            if notes.is_empty() {
                notes = r.degradation;
            }
        }
        if intensity == 0.0 {
            healthy_e2e = e2e;
        }
        println!(
            "{:>9.2} {:>12.0} {:>10.0} {:>8} {:>10.0} {:>7}",
            intensity, e2e, comm, retries, added, drops
        );
        for note in notes.iter().take(3) {
            println!("          | {note}");
        }
    }
    let mut engine = MultiGpuEngine::with_faults(device.clone(), 42, FaultPlan::chaos(1337, 1.0));
    let wild = engine.run(&job)?;
    println!("full-chaos / healthy e2e ratio: {:.2}x\n", wild.e2e_us / healthy_e2e);

    // 2. Missing kernel models: predictions carry on, tagged Degraded.
    println!("== graceful degradation: empty model registry ==");
    let workloads = vec![DlrmConfig::default_config(512).build()];
    let (pipe, _) = Pipeline::analyze_resilient_with_registry(
        &device,
        &workloads,
        ModelRegistry::empty(device.clone()),
        10,
        7,
    )?;
    let p = pipe.predict(&workloads[0])?;
    println!(
        "{}: {:.0} us/batch with {} kernels priced by datasheet roofline (fully calibrated: {})\n",
        workloads[0].name,
        p.e2e_us,
        p.degraded_kernels,
        p.is_fully_calibrated()
    );

    // 3. One malformed workload among N: skipped and named, not fatal.
    println!("== resilient pipeline: malformed workload among healthy ones ==");
    let mut poisoned = Graph::new("poisoned-graph");
    let x = poisoned.add_tensor(TensorMeta::activation(&[32, 32]));
    let y = poisoned.add_tensor(TensorMeta::activation(&[32, 32]));
    poisoned.add_op(OpKind::AddMm, vec![x], vec![y]); // AddMm needs 3 inputs
    let mixed = vec![
        DlrmConfig::default_config(256).build(),
        poisoned,
        DlrmConfig::ddp_config(256).build(),
    ];
    let (pipe, report) =
        Pipeline::analyze_resilient(&device, &mixed, CalibrationEffort::Quick, 10, 7)?;
    println!("{}", report.summary());
    for name in pipe.workloads() {
        println!("  analyzed: {name}");
    }

    // 4. Worker-level chaos under the supervisor: the fault plan kills and
    //    panics analysis workers mid-run, the supervisor restarts them from
    //    checkpoints, and the finished pipeline is bitwise identical to an
    //    undisturbed one.
    println!("\n== supervised analysis under worker chaos (kills + panics) ==");
    let calm = vec![DlrmConfig::default_config(256).build(), DlrmConfig::ddp_config(256).build(),
        DlrmConfig::default_config(512).build()];
    let mut quiet = Supervisor::new(SupervisorConfig::default());
    let (res, _) =
        Pipeline::analyze_supervised(&device, &calm, CalibrationEffort::Quick, 10, 7, &mut quiet);
    let (pipe_quiet, _) = res?;

    let mut chaotic = Supervisor::new(SupervisorConfig::default());
    chaotic.set_fault_injector(FaultInjector::new(
        // Plan seed 2 draws a kill and then a panic across this run's
        // (step, attempt) sites — two injected faults, both survived.
        FaultPlan::healthy(2).with_worker_faults(0.2, 0.2, 0.0),
    ));
    let (res, run) =
        Pipeline::analyze_supervised(&device, &calm, CalibrationEffort::Quick, 10, 7, &mut chaotic);
    let (pipe_chaos, _) = res?;
    println!("{}", run.summary());
    for r in &run.restarts {
        println!("  restart #{}: at step {}, cause: {}", r.attempt, r.at_step, r.cause);
    }
    let a = pipe_quiet.predict(&calm[0])?;
    let b = pipe_chaos.predict(&calm[0])?;
    println!(
        "prediction with {} injected fault(s): {:.2} us vs quiet {:.2} us — bitwise equal: {}",
        run.injected_faults,
        b.e2e_us,
        a.e2e_us,
        a.e2e_us.to_bits() == b.e2e_us.to_bits()
    );
    Ok(())
}
