//! Chaos sweep: how gracefully does the simulated cluster — and the
//! prediction stack above it — degrade as fault intensity rises from a
//! healthy fleet to full chaos (stragglers, thermal throttling, host
//! jitter, and flaky collectives all at once)?
//!
//! Run with `cargo run --release --example chaos_resilience`.

use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::distrib::{DistributedDlrm, MultiGpuEngine, ShardingPlan};
use dlrm_perf_model::faults::FaultPlan;
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::graph::{Graph, OpKind, TensorMeta};
use dlrm_perf_model::kernels::{CalibrationEffort, ModelRegistry};
use dlrm_perf_model::models::DlrmConfig;

fn main() {
    let device = DeviceSpec::v100();
    let cfg = DlrmConfig::default_config(2048);
    let plan = ShardingPlan::round_robin(cfg.rows_per_table.len(), 4);
    let job = DistributedDlrm::new(cfg, plan).expect("valid 4-GPU job");

    // 1. Fault-intensity sweep over the lockstep cluster engine.
    println!("== chaos sweep: hybrid-parallel DLRM @2048 on 4x V100 ==");
    println!(
        "{:>9} {:>12} {:>10} {:>8} {:>10} {:>7}",
        "intensity", "e2e (us)", "comm (us)", "retries", "+retry us", "drops"
    );
    let mut healthy_e2e = 0.0;
    for intensity in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut engine =
            MultiGpuEngine::with_faults(device.clone(), 42, FaultPlan::chaos(1337, intensity));
        // Average a few lockstep iterations so retry noise settles.
        let iters = 4;
        let mut e2e = 0.0;
        let mut comm = 0.0;
        let mut retries = 0;
        let mut added = 0.0;
        let mut drops = 0;
        let mut notes = Vec::new();
        for _ in 0..iters {
            let r = engine.run(&job).expect("faulted run still succeeds");
            e2e += r.e2e_us / iters as f64;
            comm += r.comm_us.iter().sum::<f64>() / iters as f64;
            retries += r.collective_retries;
            added += r.retry_added_us;
            drops += r.dropped_collectives.iter().filter(|d| **d).count();
            if notes.is_empty() {
                notes = r.degradation;
            }
        }
        if intensity == 0.0 {
            healthy_e2e = e2e;
        }
        println!(
            "{:>9.2} {:>12.0} {:>10.0} {:>8} {:>10.0} {:>7}",
            intensity, e2e, comm, retries, added, drops
        );
        for note in notes.iter().take(3) {
            println!("          | {note}");
        }
    }
    let mut engine = MultiGpuEngine::with_faults(device.clone(), 42, FaultPlan::chaos(1337, 1.0));
    let wild = engine.run(&job).expect("full-chaos run");
    println!("full-chaos / healthy e2e ratio: {:.2}x\n", wild.e2e_us / healthy_e2e);

    // 2. Missing kernel models: predictions carry on, tagged Degraded.
    println!("== graceful degradation: empty model registry ==");
    let workloads = vec![DlrmConfig::default_config(512).build()];
    let (pipe, _) = Pipeline::analyze_resilient_with_registry(
        &device,
        &workloads,
        ModelRegistry::empty(device.clone()),
        10,
        7,
    )
    .expect("analysis succeeds without any calibrated kernel model");
    let p = pipe.predict(&workloads[0]).expect("prediction succeeds");
    println!(
        "{}: {:.0} us/batch with {} kernels priced by datasheet roofline (fully calibrated: {})\n",
        workloads[0].name,
        p.e2e_us,
        p.degraded_kernels,
        p.is_fully_calibrated()
    );

    // 3. One malformed workload among N: skipped and named, not fatal.
    println!("== resilient pipeline: malformed workload among healthy ones ==");
    let mut poisoned = Graph::new("poisoned-graph");
    let x = poisoned.add_tensor(TensorMeta::activation(&[32, 32]));
    let y = poisoned.add_tensor(TensorMeta::activation(&[32, 32]));
    poisoned.add_op(OpKind::AddMm, vec![x], vec![y]); // AddMm needs 3 inputs
    let mixed = vec![
        DlrmConfig::default_config(256).build(),
        poisoned,
        DlrmConfig::ddp_config(256).build(),
    ];
    let (pipe, report) =
        Pipeline::analyze_resilient(&device, &mixed, CalibrationEffort::Quick, 10, 7)
            .expect("healthy workloads survive the poisoned one");
    println!("{}", report.summary());
    for name in pipe.workloads() {
        println!("  analyzed: {name}");
    }
}
