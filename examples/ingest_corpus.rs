//! Fault-tolerant trace-corpus ingestion, built for kill/resume
//! verification: generate a deterministic corpus (a fixed fraction of
//! files mangled by the trace fault injector), ingest it under a
//! supervisor with file-backed checkpoints and injected per-file worker
//! panics, and write a digest of everything the ingestion recovered.
//! Run it to completion once, then run it again while SIGKILLing the
//! process mid-corpus a few times, resume, and diff the two digests —
//! they must be byte-identical. The `trace-chaos` CI job does exactly
//! that.
//!
//! ```text
//! cargo run --release --example ingest_corpus -- \
//!     --dir /tmp/ingest-corpus --checkpoint /tmp/ingest.ckpt \
//!     --out /tmp/ingest.digest --quarantine /tmp/quarantine.json \
//!     [--files 48] [--events 220] [--step-delay-ms 200] [--bench BENCH_ingest.json]
//! ```
//!
//! The corpus is regenerated from its seed on every invocation (same
//! seed, same bytes), so a killed-and-restarted run reads the exact
//! corpus the dead run left behind. `--quarantine` receives the
//! per-file accounting as JSON (the CI artifact); `--bench` receives
//! echoed throughput/peak-RSS context in the `BENCH_*.json` key format.

use std::collections::BTreeMap;
use std::error::Error;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use dlrm_perf_model::core::{CalibrationPolicy, CorpusIngestJob, TraceCalibration};
use dlrm_perf_model::faults::{FaultInjector, FaultPlan, TraceFaultPlan};
use dlrm_perf_model::gpusim::KernelFamily;
use dlrm_perf_model::runtime::{
    FileStore, JobContext, JobError, ResumableJob, StepOutcome, Supervisor, SupervisorConfig,
};
use dlrm_perf_model::trace::ingest::IngestLimits;
use dlrm_perf_model::trace::{EventCat, Trace, TraceEvent};

/// Families the synthetic corpus draws from, with reference durations
/// the calibration fit is computed against.
const FAMILIES: [(KernelFamily, f64); 4] = [
    (KernelFamily::Gemm, 40.0),
    (KernelFamily::Memcpy, 12.0),
    (KernelFamily::Elementwise, 6.0),
    (KernelFamily::Concat, 9.0),
];

/// Scale the synthetic durations carry over the reference — what the
/// calibration fit should recover despite the corpus corruption.
const TRUE_SCALE: f64 = 1.17;

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// A deterministic synthetic iteration trace (same construction as the
/// `tests/ingest.rs` acceptance corpus).
fn synthetic_trace(file: u64, part: u64, n_events: usize) -> Trace {
    let mut rng = file
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(part.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1);
    let mut events = Vec::with_capacity(n_events);
    let mut corr = 0u64;
    for i in 0..n_events {
        let ts = i as f64 * 2.0;
        let ev = match i % 3 {
            0 => TraceEvent {
                name: "addmm".into(),
                cat: EventCat::Op,
                ts_us: ts,
                dur_us: 1.5,
                stream: 0,
                op_index: i / 3,
                correlation: 0,
                op_key: "AddMm".into(),
            },
            1 => {
                corr = (file << 32) | (part << 24) | (i as u64 + 1);
                TraceEvent {
                    name: "cudaLaunchKernel".into(),
                    cat: EventCat::Runtime,
                    ts_us: ts,
                    dur_us: 0.8,
                    stream: 0,
                    op_index: i / 3,
                    correlation: corr,
                    op_key: String::new(),
                }
            }
            _ => {
                let draw = xorshift(&mut rng);
                let (family, base_us) = FAMILIES[(draw % 4) as usize];
                let noise = 0.9 + 0.2 * ((draw >> 16) % 1000) as f64 / 1000.0;
                TraceEvent {
                    name: format!("{family}_kernel"),
                    cat: EventCat::Kernel,
                    ts_us: ts,
                    dur_us: base_us * TRUE_SCALE * noise,
                    stream: 7,
                    op_index: i / 3,
                    correlation: corr,
                    op_key: String::new(),
                }
            }
        };
        events.push(ev);
    }
    Trace {
        workload: format!("synth-{file}-{part}"),
        device: "simdev".into(),
        events,
        span_us: n_events as f64 * 2.0 + 10.0,
    }
}

/// Writes the deterministic corpus: every fourth file a two-trace JSON
/// array, the rest single objects, ~40% of files mangled by the trace
/// fault injector. Returns the file paths and how many were mangled.
fn write_corpus(
    dir: &Path,
    n_files: usize,
    events_per_file: usize,
    seed: u64,
) -> std::io::Result<(Vec<PathBuf>, usize)> {
    std::fs::create_dir_all(dir)?;
    let mangler = FaultInjector::new(FaultPlan::healthy(seed).with_trace_faults(TraceFaultPlan {
        truncate_prob: 0.08,
        bitflip_prob: 0.08,
        duplicate_prob: 0.08,
        reorder_prob: 0.08,
        garbage_prob: 0.08,
    }));
    let mut paths = Vec::new();
    let mut mangled = 0usize;
    for file in 0..n_files as u64 {
        let doc = if file.is_multiple_of(4) {
            let half = events_per_file / 2;
            let a = synthetic_trace(file, 0, half);
            let b = synthetic_trace(file, 1, events_per_file - half);
            format!("[{},{}]", a.to_json(), b.to_json())
        } else {
            synthetic_trace(file, 0, events_per_file).to_json()
        };
        let mut bytes = doc.into_bytes();
        if mangler.mangle_trace_bytes(0xC0_FFEE, file, &mut bytes).is_some() {
            mangled += 1;
        }
        let path = dir.join(format!("iter-{file:03}.trace.json"));
        std::fs::write(&path, &bytes)?;
        paths.push(path);
    }
    Ok((paths, mangled))
}

/// Wraps a job with an artificial per-step delay so an external SIGKILL
/// has a window to land between checkpoints.
struct Throttled<J> {
    inner: J,
    delay: Duration,
}

impl<J: ResumableJob> ResumableJob for Throttled<J> {
    type State = J::State;
    type Output = J::Output;

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn initial_state(&self) -> Self::State {
        self.inner.initial_state()
    }

    fn step(&self, state: &mut Self::State, ctx: &JobContext) -> Result<StepOutcome, JobError> {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.inner.step(state, ctx)
    }

    fn finish(&self, state: Self::State) -> Self::Output {
        self.inner.finish(state)
    }
}

fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// Peak resident set size of this process in KiB (Linux `VmHWM`;
/// 0 where /proc is unavailable).
fn peak_rss_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace().nth(1).and_then(|v| v.parse().ok())
            })
        })
        .unwrap_or(0)
}

fn main() -> Result<(), Box<dyn Error>> {
    let dir = PathBuf::from(flag("--dir").unwrap_or_else(|| "/tmp/dlperf-ingest-corpus".into()));
    let checkpoint = flag("--checkpoint").unwrap_or_else(|| "/tmp/ingest-corpus.ckpt".into());
    let out = flag("--out").unwrap_or_else(|| "/tmp/ingest-corpus.digest".into());
    let quarantine = flag("--quarantine");
    let bench = flag("--bench");
    let n_files: usize = flag("--files").map(|v| v.parse()).transpose()?.unwrap_or(48);
    let events: usize = flag("--events").map(|v| v.parse()).transpose()?.unwrap_or(220);
    let seed: u64 = flag("--seed").map(|v| v.parse()).transpose()?.unwrap_or(0xDEAD_BEEF);
    let delay =
        Duration::from_millis(flag("--step-delay-ms").map(|v| v.parse()).transpose()?.unwrap_or(0));

    let (paths, mangled) = write_corpus(&dir, n_files, events, seed)?;
    eprintln!("corpus: {n_files} files ({mangled} mangled) under {}", dir.display());

    let job = CorpusIngestJob::new(paths, IngestLimits::default())
        .with_threads(4)
        .with_chunk(4)
        .with_fault_injector(FaultInjector::new(
            FaultPlan::healthy(seed ^ 0xF00D).with_worker_faults(0.10, 0.0, 0.0),
        ));
    let mut sup = Supervisor::with_store(
        SupervisorConfig::default(),
        Box::new(FileStore::new(&checkpoint)),
    );
    let started = Instant::now();
    let (result, report) = sup.run(&Throttled { inner: job, delay });
    let ingest = result?;
    let wall = started.elapsed();
    eprintln!("{}", report.summary());
    eprintln!("{}", ingest.report.summary());

    // Digest: every bit of the recovered corpus. A resumed run must
    // reproduce this file byte for byte.
    let mut digest = format!("corpus {:016x}\n", ingest.digest);
    for (family, durs) in &ingest.samples {
        digest.push_str(&format!("family {family} n={}\n", durs.len()));
        for d in durs {
            digest.push_str(&format!("  {:016x}\n", d.to_bits()));
        }
    }
    let reference: BTreeMap<KernelFamily, f64> = FAMILIES.into_iter().collect();
    let cal = TraceCalibration::fit(&ingest.samples, &reference, &CalibrationPolicy::default());
    for fit in &cal.fits {
        digest.push_str(&format!(
            "fit {} scale={:016x} samples={} rejected={} {:?}\n",
            fit.family,
            fit.scale.to_bits(),
            fit.samples,
            fit.rejected_outliers,
            fit.confidence
        ));
    }
    std::fs::write(&out, &digest)?;
    eprintln!("digest written to {out}");

    if let Some(path) = quarantine {
        std::fs::write(&path, ingest.report.to_json())?;
        eprintln!("quarantine report written to {path}");
    }

    // Echoed context for the bench gate: throughput and memory are
    // recorded so CI logs explain the run, never gated (wall-clock on
    // shared runners is too noisy to floor).
    if let Some(path) = bench {
        let accepted = ingest.report.events_accepted();
        let mut doc: BTreeMap<String, String> = BTreeMap::new();
        doc.insert("ingest_files".into(), ingest.report.files.len().to_string());
        doc.insert("ingest_files_mangled".into(), mangled.to_string());
        doc.insert(
            "ingest_files_quarantined".into(),
            ingest.report.quarantined_files().to_string(),
        );
        doc.insert("ingest_events_accepted".into(), accepted.to_string());
        doc.insert("ingest_events_skipped".into(), ingest.skips().total().to_string());
        doc.insert("ingest_wall_ms".into(), format!("{:.3}", wall.as_secs_f64() * 1e3));
        doc.insert(
            "ingest_events_per_sec".into(),
            format!("{:.0}", accepted as f64 / wall.as_secs_f64().max(1e-9)),
        );
        doc.insert(
            "ingest_peak_buffer_bytes".into(),
            ingest.report.peak_buffer_bytes().to_string(),
        );
        doc.insert("ingest_peak_rss_kib".into(), peak_rss_kib().to_string());
        std::fs::write(&path, serde_json::to_string(&doc)?)?;
        eprintln!("bench context written to {path}");
    }
    Ok(())
}
