//! Multi-GPU what-if (the paper's §V-B extension): predict how hybrid-
//! parallel DLRM training scales from 1 to 8 GPUs and how much the
//! embedding-sharding plan matters — all without a cluster.
//!
//! Run with `cargo run --release --example multigpu_scaling`.

use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::distrib::{DistributedDlrm, DistributedPredictor, MultiGpuEngine, ShardingPlan};
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::kernels::CalibrationEffort;
use dlrm_perf_model::models::DlrmConfig;

fn main() {
    let device = DeviceSpec::v100();
    let batch = 4096;
    let cfg = DlrmConfig::default_config(batch);

    // Calibrate once on single-rank segments.
    let probe = DistributedDlrm::new(cfg.clone(), ShardingPlan::round_robin(8, 1)).unwrap();
    println!("calibrating {} ...", device.name);
    let pipe = Pipeline::analyze(&device, &probe.segments(0), CalibrationEffort::Quick, 15, 3);
    let predictor = DistributedPredictor::new(pipe.predictor().clone(), device.clone());

    println!("\n== Scaling curve (global batch {batch}, NVLink cluster) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>10}",
        "GPUs", "pred/us", "measured/us", "speedup", "comm"
    );
    let mut base = None;
    for world in [1usize, 2, 4, 8] {
        let job = DistributedDlrm::new(
            cfg.clone(),
            ShardingPlan::round_robin(cfg.rows_per_table.len(), world),
        )
        .unwrap();
        let p = predictor.predict(&job).unwrap();
        let mut engine = MultiGpuEngine::new(device.clone(), 7);
        let m = engine.measure_e2e(&job, 8).unwrap();
        let base_t = *base.get_or_insert(p.e2e_us);
        println!(
            "{:>6} {:>12.0} {:>12.0} {:>9.2}x {:>9.1}%",
            world,
            p.e2e_us,
            m,
            base_t / p.e2e_us,
            p.comm_share() * 100.0
        );
    }

    println!("\n== Sharding plans at 4 GPUs ==");
    let plans: [(&str, ShardingPlan); 2] = [
        ("round-robin", ShardingPlan::round_robin(8, 4)),
        ("all-on-gpu0 (worst)", ShardingPlan::new(vec![0; 8], 4).unwrap()),
    ];
    for (name, plan) in plans {
        let job = DistributedDlrm::new(cfg.clone(), plan).unwrap();
        let p = predictor.predict(&job).unwrap();
        println!("{name:22} predicted {:>9.0} us/iter", p.e2e_us);
    }
    println!("\nThe predictor exposes both the comm overhead of scaling out and the");
    println!("straggler cost of a bad sharding plan — before provisioning any GPU.");
}
