//! Multi-GPU what-if (the paper's §V-B extension): predict how hybrid-
//! parallel DLRM training scales from 1 to 8 GPUs and how much the
//! embedding-sharding plan matters — all without a cluster.
//!
//! The (world size × sharding plan) matrix runs through the distributed
//! sweep (`dlperf_distrib::sweep`), which fans scenarios across threads
//! and shares one memoized kernel-model cache; the hand-rolled loop this
//! replaced re-evaluated every data-parallel MLP segment per plan.
//!
//! Run with `cargo run --release --example multigpu_scaling`.

use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::distrib::{
    enumerate_plans, sweep_shardings, DistributedDlrm, DistributedPredictor, MultiGpuEngine,
    ShardingPlan,
};
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::kernels::CalibrationEffort;
use dlrm_perf_model::models::DlrmConfig;
use dlrm_perf_model::runtime::CancellationToken;
use std::time::Instant;

fn main() {
    let device = DeviceSpec::v100();
    let batch = 4096;
    let cfg = DlrmConfig::default_config(batch);
    let tables = cfg.rows_per_table.len();

    // Calibrate once on single-rank segments.
    let probe = DistributedDlrm::new(cfg.clone(), ShardingPlan::round_robin(tables, 1)).unwrap();
    println!("calibrating {} ...", device.name);
    let pipe = Pipeline::analyze(&device, &probe.segments(0), CalibrationEffort::Quick, 15, 3);
    let predictor = DistributedPredictor::new(pipe.predictor().clone(), device.clone());

    // The full sweep: every world size × candidate plan, through the
    // parallel memoized engine, with a sequential run as the reference.
    let scenarios = enumerate_plans(tables, &[1, 2, 4, 8]);
    let token = CancellationToken::new();
    let t0 = Instant::now();
    let sequential = sweep_shardings(&predictor, &cfg, &scenarios, 1, &token);
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let parallel = sweep_shardings(&predictor, &cfg, &scenarios, 4, &token);
    let par_ms = t0.elapsed().as_secs_f64() * 1e3;

    println!("\n== Scaling curve (global batch {batch}, NVLink cluster, round-robin) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>10}",
        "GPUs", "pred/us", "measured/us", "speedup", "comm"
    );
    let mut base = None;
    for world in [1usize, 2, 4, 8] {
        let label = format!("w{world}/round_robin");
        let p = parallel
            .results
            .iter()
            .flatten()
            .find(|r| r.label == label)
            .and_then(|r| r.prediction.as_ref())
            .expect("round-robin scenario priced");
        let job = DistributedDlrm::new(
            cfg.clone(),
            ShardingPlan::round_robin(tables, world),
        )
        .unwrap();
        let mut engine = MultiGpuEngine::new(device.clone(), 7);
        let m = engine.measure_e2e(&job, 8).unwrap();
        let base_t = *base.get_or_insert(p.e2e_us);
        println!(
            "{:>6} {:>12.0} {:>12.0} {:>9.2}x {:>9.1}%",
            world,
            p.e2e_us,
            m,
            base_t / p.e2e_us,
            p.comm_share() * 100.0
        );
    }

    println!("\n== Sharding plans across the sweep ==");
    for r in parallel.results.iter().flatten() {
        match &r.prediction {
            Some(p) => println!("{:22} predicted {:>9.0} us/iter", r.label, p.e2e_us),
            None => println!("{:22} failed: {}", r.label, r.error.as_deref().unwrap_or("?")),
        }
    }
    if let Some(best) = parallel.best() {
        println!("best plan: {}", best.label);
    }

    let identical = sequential
        .results
        .iter()
        .zip(&parallel.results)
        .all(|(a, b)| match (a, b) {
            (Some(a), Some(b)) => {
                a.prediction.as_ref().map(|p| p.e2e_us.to_bits())
                    == b.prediction.as_ref().map(|p| p.e2e_us.to_bits())
            }
            _ => false,
        });
    println!("\n== Sweep engine ==");
    println!("scenarios:        {}", scenarios.len());
    println!("bitwise identical to sequential: {identical}");
    println!("cache:            {}", parallel.cache);
    println!(
        "wall clock:       {par_ms:.1} ms parallel vs {seq_ms:.1} ms sequential ({:.2}x)",
        seq_ms / par_ms
    );
    println!("\nThe predictor exposes both the comm overhead of scaling out and the");
    println!("straggler cost of a bad sharding plan — before provisioning any GPU.");
}
