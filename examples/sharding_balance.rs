//! Embedding-table sharding load balance (§V-A c): given the 26 Criteo
//! tables and four devices, compare three sharding schemes by *predicted*
//! per-device embedding time — the multi-GPU planning use case the paper
//! describes, evaluated without any hardware.
//!
//! Run with `cargo run --release --example sharding_balance`.

use dlrm_perf_model::core::codesign::{
    greedy_by_predicted_cost, greedy_lpt, imbalance, round_robin, shard_costs,
};
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::kernels::{CalibrationEffort, ModelRegistry};
use dlrm_perf_model::models::criteo::KAGGLE_TABLE_ROWS;

fn main() {
    let device = DeviceSpec::v100();
    println!("calibrating kernel models for {} ...", device.name);
    let registry = ModelRegistry::calibrate(&device, CalibrationEffort::Quick, 23);

    let (shards, batch, lookups, dim) = (4usize, 2048u64, 1u64, 32u64);
    let tables = KAGGLE_TABLE_ROWS;

    let schemes: [(&str, Vec<usize>); 3] = [
        ("round-robin", round_robin(&tables, shards)),
        ("LPT by rows", greedy_lpt(&tables, shards)),
        (
            "LPT by predicted cost",
            greedy_by_predicted_cost(&registry, &tables, shards, batch, lookups, dim),
        ),
    ];

    println!(
        "\n{:22} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "gpu0/us", "gpu1/us", "gpu2/us", "gpu3/us", "imbalance"
    );
    for (name, assignment) in schemes {
        let costs = shard_costs(&registry, &tables, &assignment, shards, batch, lookups, dim);
        println!(
            "{:22} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.3}",
            name,
            costs[0],
            costs[1],
            costs[2],
            costs[3],
            imbalance(&costs)
        );
    }
    println!("\nBalancing by raw row count is misleading: lookup cost is dominated");
    println!("by B x L x D traffic per table, which the kernel model prices correctly.");
}
