//! Differential-accuracy suite: the predictor stack vs the `gpusim`
//! oracle.
//!
//! Two layers of ground truth, mirroring the paper's evaluation:
//!
//! * **Per-kernel-family** (Table IV): a calibrated [`ModelRegistry`]
//!   against the noiseless analytic kernel times of [`Gpu`], over a fixed
//!   zoo of kernel shapes chosen *off* the microbenchmark grids so the
//!   models must interpolate. GMAE per family under a pinned threshold.
//! * **End-to-end** (Table V): [`Pipeline::predict`] against the
//!   [`ExecutionEngine`]'s measured iteration time over a fixed workload
//!   zoo, geometric-mean relative error under a pinned threshold.
//!
//! Thresholds are pinned from measured Quick-effort behaviour with margin
//! (roughly 1.5× the observed value at the time of pinning): a regression
//! that doubles any family's error fails loudly, while calibration noise
//! across seeds does not flake. Everything here is seeded and
//! deterministic.

use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::gpusim::{DeviceSpec, Gpu, KernelSpec, MemcpyKind};
use dlrm_perf_model::kernels::{CalibrationEffort, ErrorStats, ModelRegistry};
use dlrm_perf_model::models::DlrmConfig;
use dlrm_perf_model::trace::engine::ExecutionEngine;

/// Off-grid kernel shapes per family, with the family's pinned GMAE
/// threshold.
fn family_zoo() -> Vec<(&'static str, f64, Vec<KernelSpec>)> {
    let gemm = vec![
        KernelSpec::gemm(96, 192, 384),
        KernelSpec::gemm(640, 320, 160),
        KernelSpec::gemm(1100, 1100, 1100),
        KernelSpec::Gemm { m: 48, n: 2000, k: 72, batch: 1 },
        KernelSpec::Gemm { m: 384, n: 384, k: 384, batch: 12 },
        KernelSpec::gemm(3000, 750, 96),
    ];
    let el_f = vec![
        KernelSpec::embedding_forward(384, 120_000, 6, 24, 48),
        KernelSpec::embedding_forward(1536, 900_000, 10, 80, 64),
        KernelSpec::embedding_forward(96, 40_000, 3, 16, 32),
        KernelSpec::embedding_forward(768, 300_000, 12, 48, 96),
    ];
    let el_b = vec![
        KernelSpec::embedding_backward(384, 120_000, 6, 24, 48),
        KernelSpec::embedding_backward(1536, 900_000, 10, 80, 64),
        KernelSpec::embedding_backward(768, 300_000, 12, 48, 96),
    ];
    let memcpy = vec![
        KernelSpec::memcpy_d2d(48 * 1024),
        KernelSpec::memcpy_d2d(7 * 1024 * 1024),
        KernelSpec::memcpy_h2d(640 * 1024),
        KernelSpec::Memcpy { bytes: 3 * 1024 * 1024, kind: MemcpyKind::DeviceToHost },
    ];
    let elementwise = vec![
        KernelSpec::Elementwise { elems: 96_000, flops_per_elem: 1.0, bytes_per_elem: 8.0 },
        KernelSpec::Elementwise { elems: 1_500_000, flops_per_elem: 2.0, bytes_per_elem: 12.0 },
        KernelSpec::Elementwise { elems: 24_000_000, flops_per_elem: 4.0, bytes_per_elem: 8.0 },
    ];
    let shuffle = vec![
        KernelSpec::Concat { bytes: 900 * 1024 },
        KernelSpec::Transpose { batch: 384, rows: 24, cols: 48 },
        KernelSpec::TrilForward { batch: 1536, n: 27 },
        KernelSpec::TrilBackward { batch: 1536, n: 27 },
    ];
    // Pinned 2026-08 from Quick-effort seed-4242 measurements: GEMM 0.096,
    // EL-F 0.022, EL-B 0.002, memcpy 0.028, elementwise 0.031, shuffle
    // 0.026 — thresholds ~1.5–2x those values.
    vec![
        ("GEMM", 0.15, gemm),
        ("EL-F", 0.05, el_f),
        ("EL-B", 0.02, el_b),
        ("memcpy", 0.06, memcpy),
        ("elementwise", 0.06, elementwise),
        ("shuffle", 0.06, shuffle),
    ]
}

#[test]
fn kernel_family_gmae_under_pinned_thresholds() {
    let device = DeviceSpec::v100();
    let registry = ModelRegistry::calibrate(&device, CalibrationEffort::Quick, 4242);
    let gpu = Gpu::noiseless(device);
    let mut report = String::new();
    let mut failed = false;
    for (name, threshold, specs) in family_zoo() {
        let pred: Vec<f64> = specs.iter().map(|k| registry.try_predict(k).unwrap()).collect();
        let actual: Vec<f64> = specs.iter().map(|k| gpu.kernel_time_noiseless(k)).collect();
        let stats = ErrorStats::try_from_pairs(&pred, &actual).expect("positive oracle times");
        report.push_str(&format!(
            "{name}: gmae {:.3} mean {:.3} (threshold {threshold})\n",
            stats.gmae, stats.mean
        ));
        if stats.gmae >= threshold {
            failed = true;
        }
    }
    println!("{report}");
    assert!(!failed, "per-family GMAE over threshold:\n{report}");
}

/// The E2E workload zoo: the paper-flavoured DLRM configs shrunk to test
/// scale, across the batch regimes where host overheads matter most.
fn workload_zoo() -> Vec<dlrm_perf_model::graph::Graph> {
    vec![
        DlrmConfig { rows_per_table: vec![500_000; 4], ..DlrmConfig::default_config(256) }.build(),
        DlrmConfig { rows_per_table: vec![500_000; 4], ..DlrmConfig::default_config(2048) }
            .build(),
        DlrmConfig { rows_per_table: vec![80_000; 6], ..DlrmConfig::ddp_config(512) }.build(),
        DlrmConfig { rows_per_table: vec![100_000; 8], ..DlrmConfig::mlperf_config(1024) }
            .build(),
    ]
}

#[test]
fn e2e_geomean_error_under_pinned_threshold() {
    // Pinned 2026-08: measured geomean 0.030 at these seeds; 2.5x margin.
    const E2E_GEOMEAN_THRESHOLD: f64 = 0.08;
    let device = DeviceSpec::v100();
    let zoo = workload_zoo();
    let pipeline = Pipeline::analyze(&device, &zoo, CalibrationEffort::Quick, 20, 1234);
    let mut errs = Vec::new();
    let mut report = String::new();
    for g in &zoo {
        let mut engine = ExecutionEngine::new(device.clone(), 77);
        engine.set_profiling(false);
        let measured = engine.measure_e2e(g, 12).expect("executes");
        let pred = pipeline.predict_individual(g).expect("lowers").e2e_us;
        let err = ((pred - measured) / measured).abs();
        report.push_str(&format!(
            "{}: pred {pred:.0} vs measured {measured:.0} -> {:.1}%\n",
            g.name,
            err * 100.0
        ));
        errs.push(err.max(1e-6));
    }
    let geomean =
        (errs.iter().map(|e| e.ln()).sum::<f64>() / errs.len() as f64).exp();
    println!("{report}geomean {geomean:.3}");
    assert!(
        geomean < E2E_GEOMEAN_THRESHOLD,
        "E2E geomean {geomean:.3} over pinned {E2E_GEOMEAN_THRESHOLD}:\n{report}"
    );
}

#[test]
fn memoized_prediction_is_differentially_identical() {
    // The accuracy suite pins thresholds against the *uncached* path; this
    // guard makes those numbers transfer to the sweep engine verbatim by
    // checking the memoized path is bitwise the same prediction.
    use dlrm_perf_model::kernels::MemoCache;
    let device = DeviceSpec::v100();
    let zoo = workload_zoo();
    let pipeline = Pipeline::analyze(&device, &zoo, CalibrationEffort::Quick, 8, 55);
    let cache = MemoCache::new();
    for g in &zoo {
        let plain = pipeline.predict(g).expect("lowers");
        let memo = pipeline.predict_memoized(g, &cache).expect("lowers");
        assert_eq!(
            plain.e2e_us.to_bits(),
            memo.e2e_us.to_bits(),
            "{}: cached prediction diverged",
            g.name
        );
        assert_eq!(plain.active_us.to_bits(), memo.active_us.to_bits());
    }
    assert!(cache.stats().hits > 0, "second pass over the zoo should hit");
}
