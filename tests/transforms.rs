//! Integration tests of the co-design transformations against both the
//! engine (simulated measurement) and the predictor.

use dlrm_perf_model::core::codesign::{batch_size_sweep, fusion_whatif};
use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::graph::transform::{
    fuse_embedding_bags, independent_groups, parallelize, resize_batch,
};
use dlrm_perf_model::graph::OpKind;
use dlrm_perf_model::kernels::CalibrationEffort;
use dlrm_perf_model::models::DlrmConfig;
use dlrm_perf_model::trace::engine::ExecutionEngine;

fn small(batch: u64) -> DlrmConfig {
    DlrmConfig { rows_per_table: vec![50_000; 8], ..DlrmConfig::default_config(batch) }
}

#[test]
fn resized_graph_equals_rebuilt_graph() {
    // Resizing a captured batch-512 graph to 2048 must predict the same as
    // building the 2048 graph from scratch (it is a pure metadata rewrite).
    let pipeline = Pipeline::analyze(
        &DeviceSpec::v100(),
        &[small(512).build()],
        CalibrationEffort::Quick,
        10,
        1,
    );
    let mut resized = small(512).build();
    resize_batch(&mut resized, 2048).unwrap();
    let rebuilt = small(2048).build();
    let a = pipeline.predict(&resized).unwrap().e2e_us;
    let b = pipeline.predict(&rebuilt).unwrap().e2e_us;
    assert!((a - b).abs() < 1e-6, "resized {a} vs rebuilt {b}");
}

#[test]
fn fusion_whatif_matches_simulated_outcome_direction() {
    // The predicted fusion speedup and the simulated one must agree in
    // direction and roughly in magnitude (the Fig. 11 use case).
    let device = DeviceSpec::v100();
    let unfused = small(512).with_batched_embedding(false).build();
    let pipeline =
        Pipeline::analyze(&device, std::slice::from_ref(&unfused), CalibrationEffort::Quick, 15, 2);
    let outcome = fusion_whatif(&pipeline, &unfused).unwrap();

    let mut fused = unfused.clone();
    fuse_embedding_bags(&mut fused).unwrap();
    let mut engine = ExecutionEngine::new(device.clone(), 8);
    engine.set_profiling(false);
    let measured_before = engine.measure_e2e(&unfused, 10).unwrap();
    let mut engine = ExecutionEngine::new(device, 8);
    engine.set_profiling(false);
    let measured_after = engine.measure_e2e(&fused, 10).unwrap();
    let measured_speedup = measured_before / measured_after;

    assert!(outcome.speedup() > 1.0, "fusion predicted to pay off");
    assert!(measured_speedup > 1.0, "fusion measured to pay off");
    assert!(
        (outcome.speedup() / measured_speedup - 1.0).abs() < 0.25,
        "predicted {:.3}x vs measured {:.3}x",
        outcome.speedup(),
        measured_speedup
    );
}

#[test]
fn parallelize_speedup_predicted_and_measured() {
    // Assign the per-table embedding branches to separate streams; both the
    // engine and the predictor should see the overlap.
    let device = DeviceSpec::v100();
    let serial = small(2048).with_batched_embedding(false).build();
    let mut streamed = serial.clone();
    let bags: Vec<_> = streamed
        .nodes()
        .iter()
        .filter(|n| n.op == OpKind::EmbeddingBag)
        .map(|n| n.id)
        .collect();
    let groups = independent_groups(&streamed, &bags);
    assert!(groups.len() > 1, "embedding bags should be independent");
    parallelize(&mut streamed, &groups).unwrap();

    let pipeline =
        Pipeline::analyze(&device, std::slice::from_ref(&serial), CalibrationEffort::Quick, 10, 4);
    let p_serial = pipeline.predict(&serial).unwrap();
    let p_streamed = pipeline.predict(&streamed).unwrap();
    assert!(
        p_streamed.gpu_us <= p_serial.gpu_us + 1e-9,
        "streams cannot make the GPU clock worse: {} vs {}",
        p_streamed.gpu_us,
        p_serial.gpu_us
    );
}

#[test]
fn batch_sweep_scales_active_time_superlinearly_vs_overheads() {
    // Per-sample efficiency improves with batch size: us/sample at 4096
    // must be well below us/sample at 128.
    let pipeline = Pipeline::analyze(
        &DeviceSpec::p100(),
        &[small(256).build()],
        CalibrationEffort::Quick,
        10,
        6,
    );
    let sweep = batch_size_sweep(&pipeline, &small(256).build(), &[128, 4096]).unwrap();
    let per_sample_small = sweep[0].1.e2e_us / 128.0;
    let per_sample_big = sweep[1].1.e2e_us / 4096.0;
    assert!(
        per_sample_big < 0.5 * per_sample_small,
        "{per_sample_big:.3} vs {per_sample_small:.3} us/sample"
    );
}
