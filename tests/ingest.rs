//! Fleet-scale trace-ingestion integration tests: the acceptance
//! criteria of the fault-tolerant corpus pipeline.
//!
//! Contracts exercised end to end:
//! 1. **Fidelity** — a clean trace file ingested through the streaming
//!    scanner is bitwise identical to the strict `Trace::from_json` /
//!    `ChromeTraceSink::parse_json` load path.
//! 2. **Robustness** — corpora mangled by the trace fault injector
//!    (truncation, bit rot, duplication, reordering, garbage) always
//!    produce a quarantine entry or intact surviving events; the
//!    scanner never panics and its dynamic buffers never exceed the
//!    configured hard cap, no matter how large the file.
//! 3. **Resumability** — a corpus ingestion SIGKILLed mid-run and
//!    resumed from its snapshot file by a fresh supervisor produces a
//!    bitwise-identical digest, report, and sample set.
//! 4. **Robust calibration** — scale factors fitted from a partly
//!    corrupt corpus match the offline fit over the clean subset within
//!    a pinned tolerance, and thin-sample families come out
//!    `Confidence::Degraded`, never silently applied.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

use dlperf_core::{
    collect_family_samples, CalibrationPolicy, CorpusIngest, CorpusIngestJob,
    TraceCalibration,
};
use dlperf_faults::{FaultInjector, FaultPlan, TraceFaultPlan};
use dlperf_gpusim::KernelFamily;
use dlperf_kernels::Confidence;
use dlperf_runtime::{
    FileStore, JobContext, JobError, ResumableJob, StepOutcome, Supervisor, SupervisorConfig,
    SupervisorError,
};
use dlperf_trace::ingest::{ingest_str, FileReject, FileStatus, IngestLimits};
use dlperf_trace::{ChromeTraceSink, EventCat, Trace, TraceEvent, TraceLoadError};
use proptest::prelude::*;

/// Kernel families the synthetic corpus draws from, with their
/// reference (uncalibrated) durations in microseconds.
const FAMILIES: [(KernelFamily, f64); 4] = [
    (KernelFamily::Gemm, 40.0),
    (KernelFamily::Memcpy, 12.0),
    (KernelFamily::Elementwise, 6.0),
    (KernelFamily::Concat, 9.0),
];

/// Ground-truth scale the synthetic "observed" durations carry over the
/// reference ones — what calibration should recover.
const TRUE_SCALE: f64 = 1.17;

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// A deterministic synthetic iteration trace: Op / Runtime / Kernel
/// events in non-decreasing timestamp order, runtime launches paired
/// with their kernels by correlation id, kernel durations drawn per
/// family at `TRUE_SCALE` times the reference with ±10% noise.
fn synthetic_trace(file: u64, part: u64, n_events: usize) -> Trace {
    let mut rng = file
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(part.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1);
    let mut events = Vec::with_capacity(n_events);
    let mut corr = 0u64;
    for i in 0..n_events {
        let ts = i as f64 * 2.0;
        let ev = match i % 3 {
            0 => TraceEvent {
                name: "addmm".into(),
                cat: EventCat::Op,
                ts_us: ts,
                dur_us: 1.5,
                stream: 0,
                op_index: i / 3,
                correlation: 0,
                op_key: "AddMm".into(),
            },
            1 => {
                corr = (file << 32) | (part << 24) | (i as u64 + 1);
                TraceEvent {
                    name: "cudaLaunchKernel".into(),
                    cat: EventCat::Runtime,
                    ts_us: ts,
                    dur_us: 0.8,
                    stream: 0,
                    op_index: i / 3,
                    correlation: corr,
                    op_key: String::new(),
                }
            }
            _ => {
                let draw = xorshift(&mut rng);
                let (family, base_us) = FAMILIES[(draw % 4) as usize];
                let noise = 0.9 + 0.2 * ((draw >> 16) % 1000) as f64 / 1000.0;
                TraceEvent {
                    name: format!("{family}_kernel"),
                    cat: EventCat::Kernel,
                    ts_us: ts,
                    dur_us: base_us * TRUE_SCALE * noise,
                    stream: 7,
                    op_index: i / 3,
                    correlation: corr,
                    op_key: String::new(),
                }
            }
        };
        events.push(ev);
    }
    Trace {
        workload: format!("synth-{file}-{part}"),
        device: "simdev".into(),
        events,
        span_us: n_events as f64 * 2.0 + 10.0,
    }
}

/// Serialized file contents for corpus slot `file`: every fourth file
/// is a two-trace JSON array (the `ChromeTraceSink::to_json` shape),
/// the rest single trace objects. `extra` events are appended to the
/// last trace. Returns the bytes and the number of events written.
fn corpus_file(file: u64, events_per_file: usize, extra: &[TraceEvent]) -> (String, usize) {
    let written = events_per_file + extra.len();
    if file.is_multiple_of(4) {
        let half = events_per_file / 2;
        let a = synthetic_trace(file, 0, half);
        let mut b = synthetic_trace(file, 1, events_per_file - half);
        b.events.extend_from_slice(extra);
        (format!("[{},{}]", a.to_json(), b.to_json()), written)
    } else {
        let mut t = synthetic_trace(file, 0, events_per_file);
        t.events.extend_from_slice(extra);
        (t.to_json(), written)
    }
}

/// Writes an `n_files`-file corpus under `dir`, mangling files through
/// `injector` when given (file 0 is never mangled so the thin-family
/// samples it carries always survive). Returns the file paths, the
/// per-file written event counts, and the indices that were mangled.
fn write_corpus(
    dir: &Path,
    n_files: usize,
    events_per_file: usize,
    injector: Option<&FaultInjector>,
    corpus_key: u64,
) -> (Vec<PathBuf>, Vec<usize>, Vec<usize>) {
    std::fs::remove_dir_all(dir).ok();
    std::fs::create_dir_all(dir).unwrap();
    let mut paths = Vec::new();
    let mut written = Vec::new();
    let mut mangled = Vec::new();
    // The thin-family carrier: three conv2d kernels corpus-wide (in
    // the never-mangled file 0), far below `CalibrationPolicy::min_samples`.
    let thin: Vec<TraceEvent> = (0..3)
        .map(|k| TraceEvent {
            name: "conv2d_kernel".into(),
            cat: EventCat::Kernel,
            ts_us: 900.0 + k as f64,
            dur_us: 33.0,
            stream: 7,
            op_index: 0,
            correlation: 0,
            op_key: String::new(),
        })
        .collect();
    for file in 0..n_files {
        let extra: &[TraceEvent] = if file == 0 { &thin } else { &[] };
        let (doc, events) = corpus_file(file as u64, events_per_file, extra);
        let mut bytes = doc.into_bytes();
        if file > 0 {
            if let Some(inj) = injector {
                if inj.mangle_trace_bytes(corpus_key, file as u64, &mut bytes).is_some() {
                    mangled.push(file);
                }
            }
        }
        let path = dir.join(format!("iter-{file:03}.trace.json"));
        std::fs::write(&path, &bytes).unwrap();
        paths.push(path);
        written.push(events);
    }
    (paths, written, mangled)
}

/// The mixed-fault mangling plan: every fault kind live, expected
/// mangle rate 40% of files.
fn mixed_fault_plan() -> TraceFaultPlan {
    TraceFaultPlan {
        truncate_prob: 0.08,
        bitflip_prob: 0.08,
        duplicate_prob: 0.08,
        reorder_prob: 0.08,
        garbage_prob: 0.08,
    }
}

fn temp_corpus_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dlperf-ingest-itest-{name}"))
}

/// Wraps a job so that its `kill_step`-th step is killed `kills` times
/// before being allowed through (same harness as the runtime tests).
struct KillAt<J> {
    inner: J,
    kill_step: u64,
    kills: AtomicU32,
}

impl<J> KillAt<J> {
    fn new(inner: J, kill_step: u64, kills: u32) -> Self {
        KillAt { inner, kill_step, kills: AtomicU32::new(kills) }
    }
}

impl<J: ResumableJob> ResumableJob for KillAt<J> {
    type State = J::State;
    type Output = J::Output;

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn initial_state(&self) -> Self::State {
        self.inner.initial_state()
    }

    fn step(&self, state: &mut Self::State, ctx: &JobContext) -> Result<StepOutcome, JobError> {
        if ctx.step == self.kill_step
            && self
                .kills
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |k| k.checked_sub(1))
                .is_ok()
        {
            return Err(JobError::Killed);
        }
        self.inner.step(state, ctx)
    }

    fn finish(&self, state: Self::State) -> Self::Output {
        self.inner.finish(state)
    }
}

/// Everything in a corpus result that must be bitwise-stable across a
/// kill-and-resume: the digest, the per-file reports, and every sample
/// bit.
fn fingerprint(ingest: &CorpusIngest) -> (u64, String, Vec<(String, Vec<u64>)>) {
    let samples = ingest
        .samples
        .iter()
        .map(|(f, durs)| (f.to_string(), durs.iter().map(|d| d.to_bits()).collect()))
        .collect();
    (ingest.digest, ingest.report.to_json(), samples)
}

// ---------------------------------------------------------------------
// 1. Fidelity: streaming scanner == strict load, bit for bit.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn clean_single_trace_ingest_matches_strict_load(file in 0u64..1_000_000, n in 1usize..60) {
        let trace = synthetic_trace(file, 0, n);
        let doc = trace.to_json();
        let strict = Trace::from_json(&doc).expect("synthetic traces are strictly valid");

        let limits = IngestLimits::default();
        let ingest = ingest_str(&doc, "t", &limits);
        prop_assert_eq!(&ingest.report.status, &FileStatus::Clean);
        prop_assert_eq!(ingest.traces.len(), 1);
        prop_assert_eq!(ingest.report.events_accepted, n as u64);
        prop_assert_eq!(ingest.report.skips.total(), 0);
        prop_assert!(ingest.report.peak_buffer_bytes <= limits.scan_buffer_cap() as u64);
        // Bitwise identity, not approximate: the streamed trace
        // re-serializes to the exact strict-load bytes.
        prop_assert_eq!(ingest.traces[0].to_json(), strict.to_json());
    }

    #[test]
    fn clean_trace_array_ingest_matches_parse_json(file in 0u64..1_000_000, n in 2usize..60) {
        let a = synthetic_trace(file, 0, n / 2);
        let b = synthetic_trace(file, 1, n - n / 2);
        let doc = format!("[{},{}]", a.to_json(), b.to_json());
        let parsed = ChromeTraceSink::parse_json(&doc).expect("synthetic array parses");

        let ingest = ingest_str(&doc, "t", &IngestLimits::default());
        prop_assert_eq!(&ingest.report.status, &FileStatus::Clean);
        prop_assert_eq!(ingest.traces.len(), parsed.len());
        for (scanned, strict) in ingest.traces.iter().zip(&parsed) {
            prop_assert_eq!(scanned.to_json(), strict.to_json());
        }
    }
}

// ---------------------------------------------------------------------
// 2. Robustness: mangled input never panics, never over-buffers, and
//    either quarantines or keeps only intact events.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structural faults (no bit rot): any event the scanner accepts
    /// must be byte-identical to one the writer produced — corruption
    /// may only remove or quarantine, never invent or alter.
    #[test]
    fn structurally_mangled_files_quarantine_or_keep_intact_events(
        seed in 0u64..1_000_000,
        file in 1u64..64,
        n in 6usize..40,
    ) {
        let plan = TraceFaultPlan {
            truncate_prob: 0.24,
            bitflip_prob: 0.0,
            duplicate_prob: 0.24,
            reorder_prob: 0.24,
            garbage_prob: 0.24,
        };
        let injector = FaultInjector::new(FaultPlan::healthy(seed).with_trace_faults(plan));
        let original = synthetic_trace(file, 0, n);
        let mut bytes = original.to_json().into_bytes();
        injector.mangle_trace_bytes(0xC0_FFEE, file, &mut bytes);

        let limits = IngestLimits::default();
        let ingest = ingest_str(&String::from_utf8_lossy(&bytes), "t", &limits);
        prop_assert!(ingest.report.peak_buffer_bytes <= limits.scan_buffer_cap() as u64);
        match &ingest.report.status {
            FileStatus::Quarantined(_) => {
                prop_assert_eq!(ingest.traces.len(), 0);
                prop_assert_eq!(ingest.report.events_accepted, 0);
            }
            FileStatus::Clean | FileStatus::Degraded => {
                let accepted: u64 =
                    ingest.traces.iter().map(|t| t.events.len() as u64).sum();
                prop_assert_eq!(accepted, ingest.report.events_accepted);
                for t in &ingest.traces {
                    for ev in &t.events {
                        prop_assert!(
                            original.events.contains(ev),
                            "scanner accepted an event the writer never produced: {:?}",
                            ev
                        );
                    }
                }
            }
        }
    }

    /// Full mixed plan, bit rot included: the only unconditional
    /// guarantees are no panic, bounded buffers, and consistent
    /// accounting between traces and report.
    #[test]
    fn bit_rotted_files_never_panic_and_stay_bounded(
        seed in 0u64..1_000_000,
        file in 1u64..64,
        n in 6usize..40,
    ) {
        let plan = TraceFaultPlan {
            truncate_prob: 0.0,
            bitflip_prob: 1.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            garbage_prob: 0.0,
        };
        let injector = FaultInjector::new(FaultPlan::healthy(seed).with_trace_faults(plan));
        let original = synthetic_trace(file, 0, n);
        let mut bytes = original.to_json().into_bytes();
        injector.mangle_trace_bytes(0xC0_FFEE, file, &mut bytes);

        let limits = IngestLimits::default();
        let ingest = ingest_str(&String::from_utf8_lossy(&bytes), "t", &limits);
        prop_assert!(ingest.report.peak_buffer_bytes <= limits.scan_buffer_cap() as u64);
        let accepted: u64 = ingest.traces.iter().map(|t| t.events.len() as u64).sum();
        prop_assert_eq!(accepted, ingest.report.events_accepted);
        if ingest.report.is_quarantined() {
            prop_assert_eq!(accepted, 0);
        }
        for t in &ingest.traces {
            t.validate().expect("accepted events always carry valid timing");
        }
    }
}

/// The duplicate-correlation contract across the two load paths: the
/// strict loader rejects with a typed error naming both occurrences,
/// the ingest scanner resolves last-wins and counts the drop.
#[test]
fn duplicate_correlations_reject_strictly_and_resolve_leniently() {
    let mut trace = synthetic_trace(3, 0, 9);
    // Re-issue event 1's (Runtime) correlation id on a later Runtime
    // event with a distinguishable name.
    let dup_id = trace.events[1].correlation;
    trace.events[7].cat = EventCat::Runtime;
    trace.events[7].correlation = dup_id;
    trace.events[7].name = "cudaLaunchKernel-replayed".into();
    let doc = trace.to_json();

    match Trace::from_json(&doc) {
        Err(TraceLoadError::DuplicateCorrelation { cat, correlation, first, second }) => {
            assert_eq!(cat, EventCat::Runtime);
            assert_eq!(correlation, dup_id);
            assert_eq!((first, second), (1, 7));
        }
        other => panic!("strict load must reject the duplicate, got {other:?}"),
    }

    let ingest = ingest_str(&doc, "t", &IngestLimits::default());
    assert_eq!(ingest.report.status, FileStatus::Degraded);
    assert_eq!(ingest.report.skips.duplicate_correlation, 1);
    assert_eq!(ingest.report.events_accepted, 8);
    let survivors = &ingest.traces[0].events;
    assert!(
        survivors.iter().any(|e| e.name == "cudaLaunchKernel-replayed"),
        "last occurrence wins"
    );
    assert_eq!(
        survivors.iter().filter(|e| e.correlation == dup_id).count(),
        2,
        "the replayed launch and its kernel (cross-category) both survive"
    );
}

// ---------------------------------------------------------------------
// 3. The acceptance corpus: 10k events, ≥20% of files faulted, injected
//    per-file panics, bounded memory, full accounting, SIGKILL-resume.
// ---------------------------------------------------------------------

const CORPUS_FILES: usize = 40;
const EVENTS_PER_FILE: usize = 250;

/// Builds the acceptance corpus on disk and the job that ingests it
/// (worker panics injected at ~12% of files).
fn acceptance_setup(dir_name: &str) -> (CorpusIngestJob, Vec<usize>, Vec<usize>) {
    let dir = temp_corpus_dir(dir_name);
    let mangler =
        FaultInjector::new(FaultPlan::healthy(0xDEAD_BEEF).with_trace_faults(mixed_fault_plan()));
    let (paths, written, mangled) =
        write_corpus(&dir, CORPUS_FILES, EVENTS_PER_FILE, Some(&mangler), 0xC0_FFEE);
    assert!(
        mangled.len() * 5 >= CORPUS_FILES,
        "acceptance corpus needs ≥20% faulted files, got {}/{CORPUS_FILES}",
        mangled.len()
    );
    let job = CorpusIngestJob::new(paths, IngestLimits::default())
        .with_threads(4)
        .with_chunk(6)
        .with_fault_injector(FaultInjector::new(
            FaultPlan::healthy(0xFEED_F00D).with_worker_faults(0.12, 0.0, 0.0),
        ));
    (job, written, mangled)
}

fn run_uninterrupted(job: &CorpusIngestJob) -> CorpusIngest {
    let mut sup = Supervisor::new(SupervisorConfig::default());
    let (res, _) = sup.run(job);
    res.expect("corpus ingestion completes")
}

#[test]
fn acceptance_corpus_ingests_with_bounded_memory_and_full_accounting() {
    let (job, written, mangled) = acceptance_setup("acceptance");
    let ingest = run_uninterrupted(&job);
    let report = &ingest.report;

    // Every file accounted for, exactly once, in corpus order.
    assert_eq!(report.files.len(), CORPUS_FILES);
    assert_eq!(
        report.clean_files() + report.degraded_files() + report.quarantined_files(),
        CORPUS_FILES
    );

    // Bounded memory, the hard cap: no file's scan buffers ever grew
    // past the configured ceiling — and the high-water mark is a tiny
    // fraction of the ~40 KiB files, so nothing was buffered whole.
    let cap = IngestLimits::default().scan_buffer_cap() as u64;
    assert!(report.peak_buffer_bytes() <= cap);
    assert!(
        report.peak_buffer_bytes() < 4096,
        "streaming scan must not buffer whole files: peak {} B",
        report.peak_buffer_bytes()
    );

    // The worker-fault plan must actually have panicked somewhere, and
    // every panic must be accounted as a quarantined file, not a lost
    // corpus.
    let panicked: Vec<usize> = report
        .files
        .iter()
        .enumerate()
        .filter(|(_, f)| matches!(&f.status, FileStatus::Quarantined(FileReject::Panic(_))))
        .map(|(i, _)| i)
        .collect();
    assert!(!panicked.is_empty(), "panic injection at 12% must hit at least one of 40 files");

    // Full accounting: files that were neither mangled nor panicked
    // ingest clean with every written event accepted; mangled files are
    // quarantined or carry a skip/accept balance that never exceeds
    // what was written (+1 for the duplication fault).
    for (i, file) in report.files.iter().enumerate() {
        let budget = written[i] as u64 + 1;
        assert!(
            file.events_accepted + file.skips.total() <= budget,
            "file {i} accounts {} events against {} written",
            file.events_accepted + file.skips.total(),
            budget
        );
        if panicked.contains(&i) {
            continue;
        }
        if !mangled.contains(&i) {
            assert_eq!(file.status, FileStatus::Clean, "unmangled file {i} must be clean");
            assert_eq!(file.events_accepted, written[i] as u64);
            assert_eq!(file.skips.total(), 0);
        } else if file.is_quarantined() {
            assert_eq!(file.events_accepted, 0);
        }
    }

    // The corpus carried 10k+ events; most must survive the chaos.
    let total_written: u64 = written.iter().map(|&w| w as u64).sum();
    assert!(total_written >= 10_000);
    assert!(
        report.events_accepted() > total_written / 2,
        "chaos at this intensity must not destroy the corpus: {} of {total_written}",
        report.events_accepted()
    );
}

#[test]
fn sigkill_mid_corpus_resumes_bitwise_identically() {
    let (job, _, _) = acceptance_setup("resume");
    let expected = fingerprint(&run_uninterrupted(&job));

    let dir = temp_corpus_dir("resume-ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("corpus.ckpt.json");
    std::fs::remove_file(&ckpt).ok();

    // Run A dies for good (restart budget zero) mid-corpus, leaving a
    // snapshot file — the in-process stand-in for a SIGKILL.
    let cfg = SupervisorConfig { max_restarts: 0, ..SupervisorConfig::default() };
    let mut sup_a = Supervisor::with_store(cfg, Box::new(FileStore::new(&ckpt)));
    let (job_a, _, _) = acceptance_setup("resume");
    let (res_a, report_a) = sup_a.run(&KillAt::new(job_a, 3, 1));
    match res_a {
        Err(SupervisorError::RestartBudgetExhausted { .. }) => {}
        other => panic!("expected RestartBudgetExhausted, got {other:?}"),
    }
    assert_eq!(report_a.steps_completed, 3);
    assert!(ckpt.exists(), "snapshot must survive the dead run");

    // A fresh supervisor — a new process, in effect — picks the
    // snapshot up and finishes the corpus.
    let (job_b, _, _) = acceptance_setup("resume");
    let mut sup_b =
        Supervisor::with_store(SupervisorConfig::default(), Box::new(FileStore::new(&ckpt)));
    let (res_b, report_b) = sup_b.run(&job_b);
    let resumed = fingerprint(&res_b.expect("resumed ingestion completes"));
    assert_eq!(report_b.resumed_from_step, Some(3));
    assert_eq!(resumed, expected, "kill-and-resume must not move a single bit");
    assert!(!ckpt.exists(), "snapshot is cleared after success");
}

// ---------------------------------------------------------------------
// 4. Robust calibration over a partly corrupt corpus.
// ---------------------------------------------------------------------

#[test]
fn corpus_calibration_matches_offline_clean_fit_and_degrades_thin_families() {
    let (job, _, mangled) = acceptance_setup("calibration");
    let ingest = run_uninterrupted(&job);

    // Offline fit: strictly parse the files that were never mangled —
    // the clean subset an operator could audit by hand.
    let mut offline = BTreeMap::new();
    for (i, path) in job.files().iter().enumerate() {
        if mangled.contains(&i) {
            continue;
        }
        let doc = std::fs::read_to_string(path).unwrap();
        let traces = if doc.trim_start().starts_with('[') {
            ChromeTraceSink::parse_json(&doc).unwrap()
        } else {
            vec![Trace::from_json(&doc).unwrap()]
        };
        for t in &traces {
            collect_family_samples(t, &mut offline);
        }
    }

    let reference: BTreeMap<KernelFamily, f64> = FAMILIES.into_iter().collect();
    let policy = CalibrationPolicy::default();
    let corpus_cal = TraceCalibration::fit(&ingest.samples, &reference, &policy);
    let offline_cal = TraceCalibration::fit(&offline, &reference, &policy);

    for (family, _) in FAMILIES {
        let corpus_fit = corpus_cal.fits.iter().find(|f| f.family == family).unwrap();
        let offline_fit = offline_cal.fits.iter().find(|f| f.family == family).unwrap();
        assert_eq!(corpus_fit.confidence, Confidence::Calibrated, "{family}");
        assert_eq!(offline_fit.confidence, Confidence::Calibrated, "{family}");
        // Pinned tolerance: the robust corpus fit may not drift more
        // than 5% from the offline clean fit, and both must recover the
        // ground-truth scale within 10%.
        let drift = (corpus_fit.scale - offline_fit.scale).abs() / offline_fit.scale;
        assert!(
            drift <= 0.05,
            "{family}: corpus fit {} drifted {drift:.3} from offline fit {}",
            corpus_fit.scale,
            offline_fit.scale
        );
        assert!(
            (corpus_fit.scale - TRUE_SCALE).abs() / TRUE_SCALE <= 0.10,
            "{family}: fitted {} vs true {TRUE_SCALE}",
            corpus_fit.scale
        );
    }

    // The three-sample conv2d family must come out degraded and stay
    // out of the applied factors.
    let mut reference_with_thin = reference.clone();
    reference_with_thin.insert(KernelFamily::Conv2d, 30.0);
    let with_thin = TraceCalibration::fit(&ingest.samples, &reference_with_thin, &policy);
    let thin = with_thin.fits.iter().find(|f| f.family == KernelFamily::Conv2d).unwrap();
    assert_eq!(thin.confidence, Confidence::Degraded);
    assert_eq!(thin.scale, 1.0);
    assert!(with_thin
        .scale_factors()
        .iter()
        .all(|(family, _)| *family != KernelFamily::Conv2d));
}
