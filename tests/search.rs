//! Property and planted-optimization tests for the unified optimization
//! search (`dlperf_core::search`).
//!
//! Two contracts are pinned here:
//!
//! * **Determinism** — the report (ranking, scores, bits) is identical at
//!   1, 2, and 8 threads, with the memo cache on or off. The 1-thread
//!   uncached run is the reference; everything else must match it bit
//!   for bit.
//! * **Pruning soundness / planted optimization** — on a graph built with
//!   unfused embedding bags, `FuseEmbeddingBags` is the known-best move;
//!   the search must rank it #1 and its predicted delta must equal, bit
//!   for bit, a full-walk re-prediction of the fused graph (the
//!   incremental splice never changes an answer, only its cost).

use std::sync::OnceLock;

use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::core::search::{
    GraphMoves, NoExtra, OptimizationReport, OptimizationSearch, SearchConfig,
};
use dlrm_perf_model::core::sweep::{prepare_graph, GraphMutation};
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::graph::Graph;
use dlrm_perf_model::kernels::CalibrationEffort;
use dlrm_perf_model::models::DlrmConfig;
use proptest::prelude::*;

/// One shared calibration (the expensive part); each case builds a fresh
/// search over clones.
fn base() -> &'static (Vec<Pipeline>, Graph) {
    static BASE: OnceLock<(Vec<Pipeline>, Graph)> = OnceLock::new();
    BASE.get_or_init(|| {
        // Unbatched embeddings: the graph keeps its individual
        // `EmbeddingBag` ops, so `FuseEmbeddingBags` is a legal (and
        // planted) optimization.
        let g = DlrmConfig {
            rows_per_table: vec![200_000; 4],
            batched_embedding: false,
            ..DlrmConfig::default_config(512)
        }
        .build();
        let pipelines = [DeviceSpec::v100(), DeviceSpec::p100()]
            .iter()
            .map(|d| {
                Pipeline::analyze(d, std::slice::from_ref(&g), CalibrationEffort::Quick, 8, 31)
            })
            .collect();
        (pipelines, g)
    })
}

/// Full bitwise fingerprint of a report: descriptions, score bits, CI
/// bits, eval/prune counts.
#[allow(clippy::type_complexity)]
fn fingerprint(
    r: &OptimizationReport,
) -> (u64, Vec<(String, u64, u64, Option<u64>, Option<u64>)>, usize, usize) {
    (
        r.baseline_e2e_us.to_bits(),
        r.ranked
            .iter()
            .map(|sc| {
                (
                    sc.description.clone(),
                    sc.e2e_us.to_bits(),
                    sc.delta_us.to_bits(),
                    sc.ci_low_us.map(f64::to_bits),
                    sc.ci_high_us.map(f64::to_bits),
                )
            })
            .collect(),
        r.evals,
        r.prunes,
    )
}

fn run_search(config: SearchConfig, batches: Vec<u64>) -> OptimizationReport {
    let (pipelines, g) = base();
    OptimizationSearch::<NoExtra>::new(pipelines)
        .with_config(config)
        .with_graph_moves(GraphMoves { batches, ..GraphMoves::default() })
        .run(g)
        .expect("search runs")
}

#[test]
fn planted_fusion_ranks_first_with_bitwise_exact_delta() {
    let (pipelines, g) = base();
    let report = run_search(SearchConfig::default(), vec![]);

    // The planted optimization: the DLRM graph has unfused embedding
    // bags, and fusing them is the only real win among the baseline-batch
    // moves — it must be rank #1.
    assert!(!report.ranked.is_empty());
    let top = &report.ranked[0];
    assert!(
        top.candidate.mutations.contains(&GraphMutation::FuseEmbeddingBags),
        "top candidate should fuse the embedding bags, got: {}",
        top.description
    );
    assert!(top.delta_us > 0.0, "fusion must be a predicted win: {top:?}");
    assert!(top.speedup > 1.0);

    // The search's predicted delta must be bitwise equal to pricing the
    // mutated graph from scratch with a full walk: the incremental
    // splice path changes evaluation cost, never the answer.
    let full_graph = prepare_graph(g, &top.candidate.mutations).expect("mutations apply");
    let full = pipelines[top.candidate.device].predict(&full_graph).expect("full walk");
    let baseline = pipelines[0].predict(g).expect("baseline walk");
    assert_eq!(top.e2e_us.to_bits(), full.e2e_us.to_bits(), "search score != full walk");
    assert_eq!(
        top.delta_us.to_bits(),
        (baseline.e2e_us - full.e2e_us).to_bits(),
        "search delta != full-walk re-prediction delta"
    );

    // The incremental inner loop actually carried the search.
    assert!(report.evals > 0);
    assert!(
        report.incremental_frac() >= 0.5,
        "incremental path underused: {}/{} evals",
        report.incremental_evals,
        report.incremental_evals + report.full_evals
    );
}

/// Non-empty subsets of the resize-target axis, driven by a bit mask.
fn batch_axis() -> impl Strategy<Value = Vec<u64>> {
    const ALL: [u64; 4] = [128, 256, 1024, 2048];
    (0usize..16).prop_map(|mask| {
        ALL.iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &b)| b)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn report_is_bitwise_identical_across_threads_and_cache(
        batches in batch_axis(),
        beam in 2usize..6,
        depth in 1usize..3,
    ) {
        let make = |threads: usize, use_cache: bool| SearchConfig {
            beam_width: beam,
            max_depth: depth,
            threads,
            use_cache,
            ..SearchConfig::default()
        };
        // Reference: one thread, no cache.
        let reference = fingerprint(&run_search(make(1, false), batches.clone()));
        for threads in [1usize, 2, 8] {
            for use_cache in [false, true] {
                if threads == 1 && !use_cache {
                    continue;
                }
                let got = fingerprint(&run_search(make(threads, use_cache), batches.clone()));
                prop_assert_eq!(
                    &got,
                    &reference,
                    "threads={} cache={} diverged",
                    threads,
                    use_cache
                );
            }
        }
    }
}
