//! Chaos harness for the serving milestone: the server is driven with a
//! 10k-request mixed valid/malformed stream from concurrent clients while
//! a `FaultPlan` injects worker panics, kills, and hangs — and must hold
//! four contracts the whole time:
//!
//! 1. **It stays up** — every request gets exactly one response; panics
//!    never escape; killed workers respawn.
//! 2. **Memory stays bounded** — memo and prepared-graph caches never
//!    exceed their capacity caps, sampled live while the storm runs.
//! 3. **Tail latency stays bounded** — no request outlives its deadline
//!    by more than scheduling slack; sheds are explicit 429s, not queue
//!    growth.
//! 4. **Answers stay exact** — every admitted full-fidelity prediction is
//!    bitwise identical to `Pipeline::predict_memoized` run offline on
//!    the same prepared graph before the server ever started, and every
//!    admitted `Op::Optimize` report is bitwise identical to
//!    `OptimizationSearch` run offline on the same inputs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dlperf_core::pipeline::Pipeline;
use dlperf_core::{
    prepare_graph, GraphMoves, GraphMutation, NoExtra, OptimizationSearch, SearchConfig,
};
use dlperf_faults::FaultPlan;
use dlperf_gpusim::DeviceSpec;
use dlperf_kernels::{CalibrationEffort, MemoCache};
use dlperf_models::zoo;
use dlperf_serve::{
    Body, Op, OptimizeQuery, PredictQuery, Request, Response, Server, ServerConfig,
};

const TOTAL_REQUESTS: u64 = 10_000;
const CLIENTS: u64 = 8;
const MEMO_CAP: usize = 1024;
const PREPARED_CAP: usize = 64;
const DISTINCT_BATCHES: u64 = 200;
const MODEL: &str = "dlrm-default";
const BASE_BATCH: u64 = 512;

fn batch_for(i: u64) -> u64 {
    64 + 8 * (i % DISTINCT_BATCHES)
}

/// Expected Optimize answer: baseline bits plus per-entry
/// (description, e2e bits, delta bits).
type OptExpected = (u64, Vec<(String, u64, u64)>);

const MALFORMED: [&str; 8] = [
    "",
    "garbage that is not json",
    "{\"id\": 1, \"op\": ",
    "{\"id\": \"not a number\", \"op\": \"Ping\"}",
    "{\"id\": 1, \"op\": {\"Launch\": {\"missiles\": true}}}",
    "{\"id\": 1, \"op\": {\"Predict\": {\"model\": \"alexnet\", \"batch\": 64, \"device\": \"v100\"}}}",
    "{\"id\": 1, \"op\": {\"Predict\": {\"model\": \"dlrm-default\", \"batch\": 64, \"device\": \"h200\"}}}",
    "null",
];

#[test]
fn server_survives_chaos_with_bounded_memory_and_exact_answers() {
    let workloads = vec![zoo::build(MODEL, BASE_BATCH).expect("catalog model builds")];
    let device = DeviceSpec::v100();
    let pipeline = Pipeline::analyze(&device, &workloads, CalibrationEffort::Quick, 5, 11);

    // Offline reference, priced before the server exists: the same
    // pipeline, the same prepared graphs, a fresh unbounded cache.
    let base = zoo::build(MODEL, BASE_BATCH).expect("catalog model builds");
    let reference_cache = MemoCache::new();
    let mut expected: HashMap<u64, u64> = HashMap::new();
    for i in 0..DISTINCT_BATCHES {
        let batch = batch_for(i);
        let graph = prepare_graph(&base, &[GraphMutation::ResizeBatch(batch)])
            .expect("resize succeeds");
        let pred = pipeline.predict_memoized(&graph, &reference_cache).expect("offline predict");
        expected.insert(batch, pred.e2e_us.to_bits());
    }
    let expected = Arc::new(expected);

    // Offline optimization-search reference for the `Op::Optimize` lane:
    // same pipeline, same prepared base graph, same knobs the storm's
    // optimize requests carry. Served reports must match this bit for bit.
    const OPT_BATCHES: [u64; 2] = [256, 1024];
    let opt_base = prepare_graph(&base, &[GraphMutation::ResizeBatch(BASE_BATCH)])
        .expect("resize succeeds");
    let opt_reference = OptimizationSearch::<NoExtra>::new(std::slice::from_ref(&pipeline))
        .with_config(SearchConfig { max_depth: 1, ..SearchConfig::default() })
        .with_graph_moves(GraphMoves { batches: OPT_BATCHES.to_vec(), ..GraphMoves::default() })
        .run(&opt_base)
        .expect("offline search");
    let opt_expected: Arc<OptExpected> = Arc::new((
        opt_reference.baseline_e2e_us.to_bits(),
        opt_reference
            .ranked
            .iter()
            .map(|sc| (sc.description.clone(), sc.e2e_us.to_bits(), sc.delta_us.to_bits()))
            .collect(),
    ));

    let cfg = ServerConfig {
        workers: 4,
        queue_capacity: 256,
        default_deadline: Duration::from_secs(5),
        latency_budget_ms: 60_000.0,
        // Never trip to the degraded twin: every successful answer in
        // this run must be comparable to the full-fidelity reference.
        breaker_threshold: u32::MAX,
        breaker_cooldown: 1,
        memo_capacity: MEMO_CAP,
        prepared_capacity: PREPARED_CAP,
        base_batch: BASE_BATCH,
    };
    let plan = FaultPlan::healthy(2024).with_worker_faults(0.01, 0.005, 0.01);
    let server = Arc::new(
        Server::start(vec![pipeline], &[MODEL], cfg, Some(plan)).expect("server boots"),
    );

    // Live cap sampler: caches must be bounded *during* the storm, not
    // just after it.
    let storm_over = Arc::new(AtomicBool::new(false));
    let sampler = {
        let server = Arc::clone(&server);
        let storm_over = Arc::clone(&storm_over);
        std::thread::spawn(move || {
            let mut max_memo = 0u64;
            let mut max_prepared = 0u64;
            while !storm_over.load(Ordering::SeqCst) {
                let stats = server.stats();
                max_memo = max_memo.max(stats.memo_entries);
                max_prepared = max_prepared.max(stats.prepared_entries);
                // Full + degraded cache per device, each individually
                // capped.
                assert!(
                    stats.memo_entries <= 2 * MEMO_CAP as u64,
                    "memo cache over cap mid-storm: {stats:?}"
                );
                assert!(
                    stats.prepared_entries <= PREPARED_CAP as u64,
                    "prepared store over cap mid-storm: {stats:?}"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            (max_memo, max_prepared)
        })
    };

    let per_client = TOTAL_REQUESTS / CLIENTS;
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = Arc::clone(&server);
            let expected = Arc::clone(&expected);
            let opt_expected = Arc::clone(&opt_expected);
            std::thread::spawn(move || {
                let mut responses = 0u64;
                let mut exact = 0u64;
                let mut slowest = Duration::ZERO;
                for i in 0..per_client {
                    let n = c * per_client + i;
                    let started = Instant::now();
                    if n % 7 == 3 {
                        // Malformed / hostile lane, through the wire path.
                        let line = match n % 9 {
                            0 => "[".repeat(512),
                            1 => format!("{{\"s\": \"{}\"}}", "x".repeat(300 * 1024)),
                            2 => "{\"id\": 1, \"op\"\0: \"Ping\"}".to_string(),
                            _ => MALFORMED[(n % 8) as usize].to_string(),
                        };
                        let reply = server.submit_json(&line);
                        let resp: Response =
                            serde_json::from_str(&reply).expect("response is valid JSON");
                        match resp.body {
                            Body::Error(e) => assert!(
                                matches!(e.code, 400 | 404 | 429 | 500 | 504),
                                "malformed input got code {}: {}",
                                e.code,
                                e.message
                            ),
                            other => panic!("malformed input got success: {other:?}"),
                        }
                        responses += 1;
                    } else if n % 7 == 5 {
                        // Optimization-search lane: the served report must
                        // match the offline search bit for bit.
                        let resp = server.submit(Request {
                            id: n,
                            op: Op::Optimize(OptimizeQuery {
                                model: MODEL.into(),
                                batch: BASE_BATCH,
                                devices: Some(vec!["v100".into()]),
                                batches: Some(OPT_BATCHES.to_vec()),
                                beam_width: None,
                                max_depth: Some(1),
                                top_k: None,
                                deadline_ms: Some(5_000.0),
                            }),
                        });
                        assert_eq!(resp.id, n);
                        match resp.body {
                            Body::Optimization(o) => {
                                let (baseline_bits, ranked) = &*opt_expected;
                                assert_eq!(
                                    o.baseline_e2e_us.to_bits(),
                                    *baseline_bits,
                                    "optimize baseline drifted from offline"
                                );
                                assert_eq!(o.ranked.len(), ranked.len());
                                for (served, (desc, e2e_bits, delta_bits)) in
                                    o.ranked.iter().zip(ranked)
                                {
                                    assert_eq!(&served.description, desc);
                                    assert_eq!(served.e2e_us.to_bits(), *e2e_bits);
                                    assert_eq!(served.delta_us.to_bits(), *delta_bits);
                                }
                                exact += 1;
                            }
                            Body::Error(e) => assert!(
                                matches!(e.code, 429 | 500 | 504),
                                "optimize request got code {}: {}",
                                e.code,
                                e.message
                            ),
                            other => panic!("unexpected body: {other:?}"),
                        }
                        responses += 1;
                    } else {
                        let batch = batch_for(n);
                        let resp = server.submit(Request {
                            id: n,
                            op: Op::Predict(PredictQuery {
                                model: MODEL.into(),
                                batch,
                                device: "v100".into(),
                                deadline_ms: Some(500.0),
                            }),
                        });
                        assert_eq!(resp.id, n);
                        match resp.body {
                            Body::Prediction(p) => {
                                assert_eq!(
                                    p.confidence, "calibrated",
                                    "breaker must never degrade in this run"
                                );
                                assert_eq!(
                                    p.e2e_us.to_bits(),
                                    expected[&batch],
                                    "batch {batch}: served answer drifted from offline"
                                );
                                exact += 1;
                            }
                            Body::Error(e) => assert!(
                                matches!(e.code, 429 | 500 | 504),
                                "valid request got code {}: {}",
                                e.code,
                                e.message
                            ),
                            other => panic!("unexpected body: {other:?}"),
                        }
                        responses += 1;
                    }
                    slowest = slowest.max(started.elapsed());
                }
                (responses, exact, slowest)
            })
        })
        .collect();

    let mut responses = 0u64;
    let mut exact = 0u64;
    let mut slowest = Duration::ZERO;
    for c in clients {
        let (r, e, s) = c.join().expect("client thread must not panic");
        responses += r;
        exact += e;
        slowest = slowest.max(s);
    }
    storm_over.store(true, Ordering::SeqCst);
    let (max_memo, max_prepared) = sampler.join().expect("sampler thread must not panic");

    // 1. It stayed up: every request answered, and it still answers.
    assert_eq!(responses, TOTAL_REQUESTS);
    let resp = server.submit(Request { id: u64::MAX, op: Op::Ping });
    assert!(matches!(resp.body, Body::Pong), "server dead after storm: {resp:?}");

    // 4. Exactness had real coverage: the overwhelming majority of valid
    // requests must have completed (faults touch ~2.5% of them).
    assert!(
        exact > TOTAL_REQUESTS / 2,
        "too few exact answers to trust the storm: {exact}/{TOTAL_REQUESTS}"
    );

    // 3. Tail latency: deadline 500 ms + deep-queue slack, nowhere near
    // an unbounded hang.
    assert!(slowest < Duration::from_secs(30), "unbounded tail: {slowest:?}");

    // 2. Bounded memory, and the bounds actually bit: the batch churn
    // (200 distinct) must have evicted from the 64-entry prepared store.
    let stats = server.stats();
    assert!(stats.memo_entries <= 2 * MEMO_CAP as u64, "memo over cap after storm: {stats:?}");
    assert!(max_memo <= 2 * MEMO_CAP as u64);
    assert!(max_prepared <= PREPARED_CAP as u64);
    assert!(
        stats.prepared_evictions > 0,
        "batch churn should have evicted prepared graphs: {stats:?}"
    );
    assert_eq!(stats.queue_depth, 0, "queue must drain: {stats:?}");
    assert_eq!(
        stats.degraded_answers, 0,
        "breaker must not have degraded any answer: {stats:?}"
    );
    assert!(stats.completed >= TOTAL_REQUESTS, "stats lost requests: {stats:?}");

    // The fault plan really fired: contained panics and injected
    // kill/hang failures are visible in the counters, not in crashes.
    assert!(stats.panics > 0, "panic injection never fired: {stats:?}");
    assert!(stats.deadline_expired > 0, "hang injection never fired: {stats:?}");
}
