//! Fault-injection and graceful-degradation integration tests: the chaos
//! harness of the robustness milestone.
//!
//! Three contracts are exercised end to end:
//! 1. **Determinism** — the same seed and the same [`FaultPlan`] produce a
//!    bitwise-identical [`DistributedRunResult`], because every fault
//!    decision is keyed by a stateless site hash, not a shared RNG.
//! 2. **Smooth degradation** — sweeping chaos intensity from 0 to 1 never
//!    panics, never yields a non-finite or non-positive time, and strictly
//!    hurts at full intensity.
//! 3. **Isolation** — one malformed workload or one missing kernel model
//!    degrades that prediction, not the process.

use dlperf_core::pipeline::{Pipeline, PipelineError};
use dlperf_distrib::{DistributedDlrm, DistributedPredictor, MultiGpuEngine, ShardingPlan};
use dlperf_faults::FaultPlan;
use dlperf_gpusim::DeviceSpec;
use dlperf_graph::{Graph, OpKind, TensorMeta};
use dlperf_kernels::{CalibrationEffort, ModelRegistry};
use dlperf_models::DlrmConfig;

fn job(world: usize, batch: u64) -> DistributedDlrm {
    let cfg = DlrmConfig::default_config(batch);
    let plan = ShardingPlan::round_robin(cfg.rows_per_table.len(), world);
    DistributedDlrm::new(cfg, plan).expect("valid job")
}

/// A graph whose only op cannot lower (AddMm with a single input).
fn malformed(name: &str) -> Graph {
    let mut g = Graph::new(name);
    let x = g.add_tensor(TensorMeta::activation(&[16, 16]));
    let y = g.add_tensor(TensorMeta::activation(&[16, 16]));
    g.add_op(OpKind::AddMm, vec![x], vec![y]);
    g
}

#[test]
fn fault_runs_are_bitwise_deterministic() {
    let plan = FaultPlan::chaos(0xfa57, 0.7);
    let j = job(4, 1024);
    let run = |plan: FaultPlan| {
        let mut e = MultiGpuEngine::with_faults(DeviceSpec::v100(), 21, plan);
        e.run(&j).expect("fault run succeeds")
    };
    let a = run(plan.clone());
    let b = run(plan.clone());
    // Full-struct equality: e2e, segments, comms, per-rank times, retry
    // bookkeeping, and degradation notes must all match bit for bit.
    assert_eq!(a, b);

    // And a serde round trip of the plan must not change a single bit.
    let json = serde_json::to_string(&plan).expect("plan serializes");
    let replayed: FaultPlan = serde_json::from_str(&json).expect("plan deserializes");
    assert_eq!(a, run(replayed));
}

#[test]
fn chaos_sweep_degrades_smoothly_without_panics() {
    let j = job(4, 1024);
    let mut prev_healthy_e2e = None;
    for intensity in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let plan = FaultPlan::chaos(7, intensity);
        let mut engine = MultiGpuEngine::with_faults(DeviceSpec::v100(), 13, plan);
        for _ in 0..3 {
            let r = engine.run(&j).expect("chaos run returns Ok at every intensity");
            assert!(
                r.e2e_us.is_finite() && r.e2e_us > 0.0,
                "intensity {intensity}: bad e2e {}",
                r.e2e_us
            );
            for s in r.segment_us.iter().chain(r.comm_us.iter()) {
                assert!(s.is_finite() && *s >= 0.0, "intensity {intensity}: bad part {s}");
            }
            let parts: f64 = r.segment_us.iter().sum::<f64>() + r.comm_us.iter().sum::<f64>();
            assert!((r.e2e_us - parts).abs() < 1e-9, "timeline inconsistent at {intensity}");
            assert!(r.retry_added_us.is_finite() && r.retry_added_us >= 0.0);

            if intensity == 0.0 {
                assert!(r.degradation.is_empty(), "healthy run reported degradation");
                assert_eq!(r.collective_retries, 0);
                prev_healthy_e2e.get_or_insert(r.e2e_us);
            } else {
                // The straggler note is deterministic on the first
                // iteration; the report must not be empty once faults bite.
                assert!(
                    r.e2e_us > prev_healthy_e2e.expect("intensity 0.0 runs first") * 0.9,
                    "faults should not make the run faster"
                );
            }
        }
        if intensity == 1.0 {
            // Re-run the first iteration to inspect the populated report.
            let mut engine = MultiGpuEngine::with_faults(
                DeviceSpec::v100(),
                13,
                FaultPlan::chaos(7, 1.0),
            );
            let r = engine.run(&j).expect("full-chaos run succeeds");
            assert!(
                r.degradation.iter().any(|d| d.contains("straggling")),
                "full chaos must report the straggler: {:?}",
                r.degradation
            );
        }
    }

    // Full chaos must be measurably slower than healthy.
    let healthy = MultiGpuEngine::with_faults(DeviceSpec::v100(), 13, FaultPlan::chaos(7, 0.0))
        .run(&j)
        .expect("healthy run");
    let wild = MultiGpuEngine::with_faults(DeviceSpec::v100(), 13, FaultPlan::chaos(7, 1.0))
        .run(&j)
        .expect("chaos run");
    assert!(
        wild.e2e_us > 1.2 * healthy.e2e_us,
        "full chaos should hurt: {} vs {}",
        wild.e2e_us,
        healthy.e2e_us
    );
}

#[test]
fn dropped_collectives_degrade_instead_of_hanging() {
    let plan = FaultPlan::healthy(3).with_collective_faults(1.0, 700.0, 2, 30.0);
    let mut engine = MultiGpuEngine::with_faults(DeviceSpec::v100(), 17, plan);
    let r = engine.run(&job(4, 1024)).expect("dropped collectives still return Ok");
    assert_eq!(r.dropped_collectives, [true; 3], "p=1.0 must drop every collective");
    assert_eq!(r.collective_retries, 3 * 2, "each collective retries max_retries times");
    assert!(r.retry_added_us > 0.0);
    assert!(r.e2e_us.is_finite() && r.e2e_us > 0.0);
    assert!(
        r.degradation.iter().any(|d| d.contains("dropped")),
        "drops must be reported: {:?}",
        r.degradation
    );
}

#[test]
fn link_degradation_is_deterministic_and_names_affected_collectives() {
    // Halved bandwidth on every link, no flapping: every payload-bearing
    // collective must reprice slower, deterministically, with the affected
    // collectives named in the degradation report — the link-fault
    // counterpart of `dropped_collectives_degrade_instead_of_hanging`.
    let j = job(4, 1024);
    let plan = FaultPlan::healthy(11).with_link_faults(0.5, 0.0, 1.0);
    let run = |plan: FaultPlan| {
        let mut e = MultiGpuEngine::with_faults(DeviceSpec::v100(), 19, plan);
        e.run(&j).expect("link-faulted run succeeds")
    };
    let a = run(plan.clone());
    assert_eq!(a, run(plan.clone()), "link faults must be bitwise deterministic");

    let healthy = {
        let mut e = MultiGpuEngine::with_faults(DeviceSpec::v100(), 19, FaultPlan::healthy(11));
        e.run(&j).expect("healthy run succeeds")
    };
    assert!(
        a.e2e_us > healthy.e2e_us,
        "halved link bandwidth should hurt: {} vs {}",
        a.e2e_us,
        healthy.e2e_us
    );
    // Same seed, same jitter stream: the slowdown is exactly the comms.
    for (i, (f, h)) in a.comm_us.iter().zip(&healthy.comm_us).enumerate() {
        assert!(f >= h, "C{i}: faulted {f} faster than healthy {h}");
    }
    let named: Vec<&String> =
        a.degradation.iter().filter(|d| d.contains("link degraded")).collect();
    assert!(
        !named.is_empty(),
        "link faults must name affected collectives: {:?}",
        a.degradation
    );
    assert!(
        named.iter().any(|d| d.contains("all_to_all") || d.contains("all_reduce")),
        "report should say which collective degraded: {named:?}"
    );

    // The analytic predictor degrades under the same plan, the same way:
    // deterministic, slower, with the same style of report.
    let cfg = DlrmConfig::default_config(1024);
    let probe = DistributedDlrm::new(
        cfg.clone(),
        ShardingPlan::round_robin(cfg.rows_per_table.len(), 2),
    )
    .expect("probe job");
    let device = DeviceSpec::v100();
    let pipe = Pipeline::analyze(&device, &probe.segments(0), CalibrationEffort::Quick, 5, 31);
    let predictor = DistributedPredictor::new(pipe.predictor().clone(), device);
    let (p1, notes1) = predictor.predict_with_faults(&j, &plan).expect("faulted predict");
    let (p2, notes2) = predictor.predict_with_faults(&j, &plan).expect("faulted predict");
    assert_eq!(p1.e2e_us.to_bits(), p2.e2e_us.to_bits());
    assert_eq!(notes1, notes2);
    let clean = predictor.predict(&j).expect("clean predict");
    assert!(p1.e2e_us > clean.e2e_us, "predictor must also slow down");
    assert!(
        notes1.iter().any(|n| n.contains("link degraded")),
        "predictor must report affected collectives: {notes1:?}"
    );

    // Flapping links stay deterministic too: same plan, same bits.
    let flappy = FaultPlan::healthy(12).with_link_faults(0.9, 0.5, 0.5);
    let f1 = {
        let mut e = MultiGpuEngine::with_faults(DeviceSpec::v100(), 23, flappy.clone());
        e.run(&j).expect("flapping run succeeds")
    };
    let f2 = {
        let mut e = MultiGpuEngine::with_faults(DeviceSpec::v100(), 23, flappy);
        e.run(&j).expect("flapping run succeeds")
    };
    assert_eq!(f1, f2, "flapping must be seeded, not sampled from shared state");
}

#[test]
fn missing_kernel_model_degrades_prediction_not_process() {
    let dev = DeviceSpec::v100();
    let workloads = vec![DlrmConfig::default_config(256).build()];
    // An empty registry: every kernel family lookup misses and must fall
    // back to the datasheet roofline with a Degraded tag.
    let (pipe, report) = Pipeline::analyze_resilient_with_registry(
        &dev,
        &workloads,
        ModelRegistry::empty(dev.clone()),
        5,
        9,
    )
    .expect("analysis succeeds with an empty registry");
    assert!(report.is_clean());
    let p = pipe.predict(&workloads[0]).expect("prediction succeeds");
    assert!(p.e2e_us.is_finite() && p.e2e_us > 0.0);
    assert!(p.degraded_kernels > 0, "empty registry must mark kernels degraded");
    assert!(!p.is_fully_calibrated());

    // A calibrated registry on the same workload is fully calibrated.
    let (pipe, _) = Pipeline::analyze_resilient_with_registry(
        &dev,
        &workloads,
        ModelRegistry::calibrate(&dev, CalibrationEffort::Quick, 1),
        5,
        9,
    )
    .expect("analysis succeeds");
    let p = pipe.predict(&workloads[0]).expect("prediction succeeds");
    assert_eq!(p.degraded_kernels, 0);
    assert!(p.is_fully_calibrated());
}

#[test]
fn malformed_workload_is_skipped_and_named() {
    let dev = DeviceSpec::v100();
    let workloads = vec![
        DlrmConfig::default_config(128).build(),
        malformed("poisoned"),
        DlrmConfig::ddp_config(128).build(),
    ];
    let (pipe, report) =
        Pipeline::analyze_resilient(&dev, &workloads, CalibrationEffort::Quick, 5, 2)
            .expect("two healthy workloads survive");
    assert_eq!(pipe.workloads().len(), 2);
    assert_eq!(report.skipped.len(), 1);
    assert_eq!(report.skipped[0].0, "poisoned");
    assert!(report.summary().contains("poisoned"));

    // All workloads malformed → a typed error naming each, not a panic.
    match Pipeline::analyze_resilient(
        &dev,
        &[malformed("a"), malformed("b")],
        CalibrationEffort::Quick,
        3,
        2,
    ) {
        Err(PipelineError::AllWorkloadsFailed(fails)) => {
            let names: Vec<&str> = fails.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(names, ["a", "b"]);
        }
        other => panic!("expected AllWorkloadsFailed, got {other:?}"),
    }
}
