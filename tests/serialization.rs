//! Serialization integration: the two JSON artifacts the pipeline persists
//! (execution graphs and overhead databases) round-trip faithfully.

use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::graph::Graph;
use dlrm_perf_model::kernels::{CalibrationEffort, ModelRegistry};
use dlrm_perf_model::models::DlrmConfig;
use dlrm_perf_model::trace::{OverheadStats, OverheadType};

#[test]
fn execution_graph_round_trips_through_json() {
    let g = DlrmConfig {
        rows_per_table: vec![10_000; 4],
        ..DlrmConfig::mlperf_config(512)
    }
    .build();
    let json = g.to_json();
    let back = Graph::from_json(&json).expect("valid graph JSON");
    assert_eq!(back.node_count(), g.node_count());
    assert_eq!(back.tensor_count(), g.tensor_count());
    for (a, b) in g.nodes().iter().zip(back.nodes()) {
        assert_eq!(a.op, b.op);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.outputs, b.outputs);
    }
}

#[test]
fn reloaded_graph_predicts_identically() {
    let device = DeviceSpec::v100();
    let g = DlrmConfig {
        rows_per_table: vec![10_000; 4],
        ..DlrmConfig::default_config(256)
    }
    .build();
    let pipe = Pipeline::analyze(&device, std::slice::from_ref(&g), CalibrationEffort::Quick, 8, 1);
    let reloaded = Graph::from_json(&g.to_json()).unwrap();
    assert_eq!(
        pipe.predict(&g).unwrap().e2e_us,
        pipe.predict(&reloaded).unwrap().e2e_us
    );
}

#[test]
fn overhead_db_json_preserves_all_cells() {
    let device = DeviceSpec::p100();
    let g = DlrmConfig {
        rows_per_table: vec![10_000; 4],
        ..DlrmConfig::default_config(256)
    }
    .build();
    let pipe = Pipeline::analyze(&device, std::slice::from_ref(&g), CalibrationEffort::Quick, 8, 2);
    let json = pipe.shared_overheads_json();
    let back = OverheadStats::from_json(&json).expect("valid DB JSON");
    for ty in OverheadType::ALL {
        let orig = pipe.predictor();
        // Compare a few representative op keys.
        for key in ["aten::addmm", "aten::relu", "batched_embedding"] {
            let _ = orig; // predictor holds the same merged stats
            assert!(
                back.mean_us(key, ty) > 0.0,
                "cell ({key}, {ty}) lost in round trip"
            );
        }
    }
}

#[test]
fn pipeline_rebuilds_from_persisted_assets() {
    // The large-scale-prediction workflow: persist the overhead DB, rebuild
    // a pipeline from it plus a fresh registry, and predict.
    let device = DeviceSpec::v100();
    let g = DlrmConfig {
        rows_per_table: vec![10_000; 4],
        ..DlrmConfig::default_config(256)
    }
    .build();
    let pipe = Pipeline::analyze(&device, std::slice::from_ref(&g), CalibrationEffort::Quick, 8, 3);
    let json = pipe.shared_overheads_json();

    let stats = OverheadStats::from_json(&json).unwrap();
    let registry = ModelRegistry::calibrate(&device, CalibrationEffort::Quick, 0xabcd ^ 3);
    let rebuilt = Pipeline::from_assets(device, registry, stats);
    let a = pipe.predict(&g).unwrap().e2e_us;
    let b = rebuilt.predict(&g).unwrap().e2e_us;
    assert!(
        (a - b).abs() / a < 1e-9,
        "rebuilt pipeline diverged: {a} vs {b}"
    );
}
