//! End-to-end integration: analysis track → prediction track → error bands,
//! spanning every crate in the workspace.

use dlrm_perf_model::core::baselines;
use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::core::report::{ErrorSummary, PredictionRow};
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::kernels::CalibrationEffort;
use dlrm_perf_model::models::DlrmConfig;
use dlrm_perf_model::trace::engine::ExecutionEngine;

/// Shrunk DLRM configs so the test finishes quickly while exercising every
/// kernel family.
fn small_configs(batch: u64) -> Vec<DlrmConfig> {
    // Table-size regimes matching the paper's workloads (1M-row default,
    // 80k-row DDP) with fewer tables so the test stays fast.
    vec![
        DlrmConfig { rows_per_table: vec![1_000_000; 4], ..DlrmConfig::default_config(batch) },
        DlrmConfig { rows_per_table: vec![80_000; 6], ..DlrmConfig::ddp_config(batch) },
    ]
}

fn measure(device: &DeviceSpec, graph: &dlrm_perf_model::graph::Graph, seed: u64) -> (f64, f64) {
    let mut engine = ExecutionEngine::new(device.clone(), seed);
    engine.set_profiling(false);
    let runs = engine.run_iterations(graph, 15).expect("executes");
    let e2e = runs.iter().map(|r| r.e2e_us).sum::<f64>() / runs.len() as f64;
    let active = runs.iter().map(|r| r.active_us()).sum::<f64>() / runs.len() as f64;
    (e2e, active)
}

#[test]
fn full_pipeline_reproduces_paper_error_bands() {
    let device = DeviceSpec::v100();
    let mut rows = Vec::new();
    for batch in [256u64, 1024] {
        let graphs: Vec<_> = small_configs(batch).iter().map(|c| c.build()).collect();
        let pipeline = Pipeline::analyze(&device, &graphs, CalibrationEffort::Quick, 20, batch);
        for g in &graphs {
            let (measured_e2e, measured_active) = measure(&device, g, batch ^ 0x77);
            let individual = pipeline.predict_individual(g).expect("lowers");
            let shared = pipeline.predict(g).expect("lowers");
            let kernel_only =
                baselines::kernel_only(g, pipeline.predictor().registry()).expect("lowers");
            rows.push(PredictionRow {
                workload: g.name.clone(),
                device: device.name.clone(),
                batch,
                measured_e2e_us: measured_e2e,
                measured_active_us: measured_active,
                pred_e2e_us: individual.e2e_us,
                pred_shared_e2e_us: shared.e2e_us,
                pred_active_us: individual.active_us,
                kernel_only_us: kernel_only,
            });
        }
    }

    let active = ErrorSummary::over(&rows, None, PredictionRow::active_error).unwrap();
    let e2e = ErrorSummary::over(&rows, None, PredictionRow::e2e_error).unwrap();
    let shared = ErrorSummary::over(&rows, None, PredictionRow::shared_e2e_error).unwrap();
    let ko = ErrorSummary::over(&rows, None, PredictionRow::kernel_only_error).unwrap();

    // Quick calibration is looser than the paper's full runs (the bench
    // harness runs Full); the *shape* must hold: active and E2E errors in a
    // low band, kernel_only far worse.
    assert!(active.geomean < 0.22, "active geomean {:.3}", active.geomean);
    assert!(e2e.geomean < 0.22, "e2e geomean {:.3}", e2e.geomean);
    assert!(shared.geomean < 0.28, "shared geomean {:.3}", shared.geomean);
    assert!(
        ko.geomean > e2e.geomean,
        "kernel_only {:.3} must be worse than E2E {:.3}",
        ko.geomean,
        e2e.geomean
    );
}

#[test]
fn e2e_prediction_underestimates_like_the_paper() {
    // "The E2E time predictions have a clear trend of underestimation" —
    // trimmed means of long-tailed overheads lose the tail mass.
    let device = DeviceSpec::v100();
    let graphs: Vec<_> = small_configs(512).iter().map(|c| c.build()).collect();
    let pipeline = Pipeline::analyze(&device, &graphs, CalibrationEffort::Quick, 25, 9);
    let mut signed = Vec::new();
    for g in &graphs {
        let (measured, _) = measure(&device, g, 5);
        let pred = pipeline.predict_individual(g).unwrap().e2e_us;
        signed.push((pred - measured) / measured);
    }
    let mean_signed = signed.iter().sum::<f64>() / signed.len() as f64;
    assert!(
        mean_signed < 0.02,
        "expected under- (or at most tiny over-) estimation, got {mean_signed:+.3}"
    );
}

#[test]
fn kernel_only_gap_shrinks_with_batch_size() {
    // The Fig. 9 trend: as batch size grows, utilization rises and the
    // kernel_only baseline converges toward the E2E prediction.
    let device = DeviceSpec::v100();
    let cfg = DlrmConfig { rows_per_table: vec![100_000; 4], ..DlrmConfig::default_config(128) };
    let small = cfg.build();
    let big = DlrmConfig { batch_size: 4096, ..cfg }.build();
    let pipeline =
        Pipeline::analyze(&device, std::slice::from_ref(&small), CalibrationEffort::Quick, 15, 3);

    let gap = |g| {
        let p = pipeline.predict(g).unwrap();
        let ko = baselines::kernel_only(g, pipeline.predictor().registry()).unwrap();
        (p.e2e_us - ko) / p.e2e_us
    };
    let gap_small = gap(&small);
    let gap_big = gap(&big);
    assert!(
        gap_big < gap_small,
        "gap at batch 4096 ({gap_big:.3}) should be below batch 128 ({gap_small:.3})"
    );
}

#[test]
fn predictions_transfer_across_devices() {
    // A pipeline calibrated per device must rank the devices correctly on a
    // compute-heavy workload.
    let graph = DlrmConfig {
        rows_per_table: vec![50_000; 4],
        ..DlrmConfig::default_config(4096)
    }
    .build();
    let mut preds = Vec::new();
    for dev in DeviceSpec::paper_devices() {
        let pipe =
            Pipeline::analyze(&dev, std::slice::from_ref(&graph), CalibrationEffort::Quick, 10, 21);
        preds.push((dev.name.clone(), pipe.predict(&graph).unwrap().e2e_us));
    }
    let v100 = preds.iter().find(|(n, _)| n.contains("V100")).unwrap().1;
    let p100 = preds.iter().find(|(n, _)| n.contains("P100")).unwrap().1;
    assert!(v100 < p100, "V100 ({v100}) must beat P100 ({p100}) at batch 4096");
}
