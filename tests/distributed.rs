//! Multi-GPU integration: the distributed predictor against the lockstep
//! cluster engine, through the facade crate.

use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::distrib::{
    DistributedDlrm, DistributedPredictor, MultiGpuEngine, ShardingPlan,
};
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::kernels::CalibrationEffort;
use dlrm_perf_model::models::DlrmConfig;

fn setup(device: &DeviceSpec) -> DistributedPredictor {
    let cfg = DlrmConfig::default_config(2048);
    let probe = DistributedDlrm::new(cfg, ShardingPlan::round_robin(8, 1)).unwrap();
    let pipe = Pipeline::analyze(device, &probe.segments(0), CalibrationEffort::Quick, 10, 77);
    DistributedPredictor::new(pipe.predictor().clone(), device.clone())
}

#[test]
fn scaling_curve_has_diminishing_returns() {
    let device = DeviceSpec::v100();
    let predictor = setup(&device);
    let cfg = DlrmConfig::default_config(4096);
    let mut times = Vec::new();
    for world in [1usize, 2, 4, 8] {
        let job = DistributedDlrm::new(cfg.clone(), ShardingPlan::round_robin(8, world)).unwrap();
        times.push(predictor.predict(&job).unwrap().e2e_us);
    }
    // Monotone improvement...
    assert!(times[1] < times[0]);
    assert!(times[2] < times[1]);
    // ...with diminishing returns: 1->2 speedup exceeds 4->8 speedup.
    let s12 = times[0] / times[1];
    let s48 = times[2] / times[3];
    assert!(s12 > s48, "1->2 speedup {s12:.2} should exceed 4->8 speedup {s48:.2}");
}

#[test]
fn predicted_e2e_tracks_cluster_engine_across_worlds() {
    let device = DeviceSpec::v100();
    let predictor = setup(&device);
    let cfg = DlrmConfig::default_config(2048);
    for world in [2usize, 4] {
        let job = DistributedDlrm::new(cfg.clone(), ShardingPlan::round_robin(8, world)).unwrap();
        let pred = predictor.predict(&job).unwrap().e2e_us;
        let mut engine = MultiGpuEngine::new(device.clone(), 3);
        let measured = engine.measure_e2e(&job, 6).unwrap();
        let err = ((pred - measured) / measured).abs();
        assert!(err < 0.25, "world {world}: err {:.1}%", err * 100.0);
    }
}

#[test]
fn pcie_cluster_scales_worse_than_nvlink() {
    let cfg = DlrmConfig::default_config(4096);
    let job4 = DistributedDlrm::new(cfg, ShardingPlan::round_robin(8, 4)).unwrap();
    let v100 = setup(&DeviceSpec::v100());
    let xp = setup(&DeviceSpec::titan_xp());
    let pv = v100.predict(&job4).unwrap();
    let pxp = xp.predict(&job4).unwrap();
    assert!(
        pxp.comm_share() > pv.comm_share(),
        "PCIe comm share {:.2} should exceed NVLink {:.2}",
        pxp.comm_share(),
        pv.comm_share()
    );
}

#[test]
fn memory_pressure_drops_with_model_parallel_sharding() {
    // Each rank holds only its table shard: the per-rank weight bytes of a
    // 4-way sharded MLPerf model are about a quarter of the single-GPU one.
    use dlrm_perf_model::graph::memory;
    let cfg = DlrmConfig::mlperf_config(2048);
    let single = DistributedDlrm::new(cfg.clone(), ShardingPlan::round_robin(26, 1)).unwrap();
    let sharded = DistributedDlrm::new(cfg, ShardingPlan::round_robin(26, 4)).unwrap();
    let weight = |job: &DistributedDlrm, rank: usize| -> u64 {
        job.segments(rank).iter().map(|s| memory::estimate(s).weight_bytes).sum()
    };
    let w1 = weight(&single, 0);
    let w4 = (0..4).map(|r| weight(&sharded, r)).max().unwrap();
    assert!(
        (w4 as f64) < 0.5 * w1 as f64,
        "sharded per-rank weights {w4} should be well below single-GPU {w1}"
    );
}
