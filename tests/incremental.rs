//! Property tests for incremental re-prediction and batched inference.
//!
//! Two bitwise contracts pinned here:
//!
//! * `IncrementalPredictor::repredict` is bit-for-bit identical to a fresh
//!   full Algorithm 1 walk on **every** `Prediction` field, across random
//!   mutation sequences (resize / fuse / replace / reorder) — whatever mix
//!   of prefix reuse, dirty recompute, suffix splice, or full fallback the
//!   diff produces.
//! * Batched kernel-model evaluation (one packed MLP forward pass per
//!   family) matches per-kernel scalar evaluation bit for bit, for every
//!   kernel family the registry knows.

use std::sync::OnceLock;

use dlrm_perf_model::core::incremental::IncrementalPredictor;
use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::core::predictor::{Prediction, WalkScratch};
use dlrm_perf_model::gpusim::{DeviceSpec, KernelSpec};
use dlrm_perf_model::graph::transform::{
    fuse_embedding_bags, hoist_earliest, replace_op, resize_batch,
};
use dlrm_perf_model::graph::{Graph, NodeId, OpKind};
use dlrm_perf_model::kernels::{CalibrationEffort, MemoCache, ModelRegistry};
use dlrm_perf_model::models::DlrmConfig;
use proptest::prelude::*;

/// One shared calibration + checkpointed baseline (the expensive part).
fn base() -> &'static (Pipeline, Graph, IncrementalPredictor) {
    static BASE: OnceLock<(Pipeline, Graph, IncrementalPredictor)> = OnceLock::new();
    BASE.get_or_init(|| {
        let g = DlrmConfig {
            rows_per_table: vec![150_000; 4],
            ..DlrmConfig::default_config(512)
        }
        .build();
        let pipe = Pipeline::analyze(
            &DeviceSpec::v100(),
            std::slice::from_ref(&g),
            CalibrationEffort::Quick,
            8,
            37,
        );
        let inc = IncrementalPredictor::new(pipe.predictor().clone(), g.clone())
            .expect("baseline graph lowers");
        (pipe, g, inc)
    })
}

/// All observable bits of a prediction.
fn bits(p: &Prediction) -> [u64; 5] {
    [
        p.e2e_us.to_bits(),
        p.active_us.to_bits(),
        p.cpu_us.to_bits(),
        p.gpu_us.to_bits(),
        p.degraded_kernels as u64,
    ]
}

/// Applies one encoded mutation; infeasible ones (immovable node, repeated
/// fuse) are no-ops, like the sweep engine's lenient hoist path.
fn apply(g: &mut Graph, kind: u8, idx: usize) {
    let n = g.node_count();
    match kind % 4 {
        0 => {
            const BATCHES: [u64; 6] = [64, 128, 256, 512, 1024, 2048];
            let _ = resize_batch(g, BATCHES[idx % BATCHES.len()]);
        }
        1 => {
            let _ = fuse_embedding_bags(g);
        }
        2 => {
            let id = g.nodes()[idx % n].id;
            let _ = hoist_earliest(g, id);
        }
        _ => {
            let op = if idx.is_multiple_of(2) { OpKind::Sigmoid } else { OpKind::Relu };
            let _ = replace_op(g, NodeId(idx % n), op, "prop-swap");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole contract: after ANY mutation sequence, incremental
    /// re-prediction from the fixed baseline equals a fresh full walk on
    /// every field's bit pattern — with and without a memo cache.
    #[test]
    fn repredict_is_bitwise_identical_to_full_walk(
        muts in proptest::collection::vec((0u8..4, 0usize..4096), 1..5),
    ) {
        let (pipe, g, inc) = base();
        let mut mutated = g.clone();
        // One scratch reused across every mutation in the sequence — the
        // sweep engine's steady-state shape, so splice-back, dirty walks,
        // and full fallbacks all run on recycled buffers here.
        let mut scratch = WalkScratch::new();
        for &(kind, idx) in &muts {
            apply(&mut mutated, kind, idx);

            let full = pipe.predictor().predict(&mutated).expect("full walk lowers");
            let (fast, stats) = inc.repredict(&mutated, None).expect("repredict lowers");
            prop_assert_eq!(bits(&fast), bits(&full), "uncached diverged: {:?}", stats);

            let cache = MemoCache::new();
            let (memo, _) = inc.repredict(&mutated, Some(&cache)).expect("repredict lowers");
            prop_assert_eq!(bits(&memo), bits(&full), "memoized diverged");

            let (scratched, _) = inc
                .repredict_scratch(&mutated, None, &mut scratch)
                .expect("repredict lowers");
            prop_assert_eq!(bits(&scratched), bits(&full), "scratch-backed diverged");
        }
    }

    /// An arena-backed splice-back (mutate, undo, repredict on a reused
    /// scratch) returns the baseline's exact bits, and repeating it in
    /// steady state never allocates.
    #[test]
    fn scratch_splice_back_is_bitwise_and_allocation_free(node_seed in 0usize..4096) {
        let (pipe, g, inc) = base();
        let mid = NodeId(node_seed % g.node_count());
        let original = g.node(mid).expect("node exists").op;
        let swapped = if original == OpKind::Relu { OpKind::Sigmoid } else { OpKind::Relu };

        let mut mutated = g.clone();
        replace_op(&mut mutated, mid, swapped, "swap").expect("replace");

        let mut scratch = WalkScratch::new();
        // Warm the scratch on the dirty graph, then splice back.
        let full = pipe.predictor().predict(&mutated).expect("full walk lowers");
        let (dirty, _) = inc
            .repredict_scratch(&mutated, None, &mut scratch)
            .expect("repredict lowers");
        prop_assert_eq!(bits(&dirty), bits(&full));

        let (back, stats) = inc.repredict_scratch(g, None, &mut scratch).expect("repredict");
        prop_assert!(stats.spliced, "identical graph must splice: {:?}", stats);
        prop_assert_eq!(bits(&back), bits(&inc.baseline_prediction()));

        let warm = scratch.arena_stats();
        for _ in 0..3 {
            let (again, _) =
                inc.repredict_scratch(&mutated, None, &mut scratch).expect("repredict");
            prop_assert_eq!(bits(&again), bits(&full));
        }
        let steady = scratch.arena_stats();
        prop_assert_eq!(steady.misses, warm.misses, "steady state must not allocate");
        prop_assert!(steady.takes > warm.takes);
    }

    /// Mutating and then exactly undoing a replacement reconverges to the
    /// baseline via the splice path, not merely to equal bits.
    #[test]
    fn undone_mutation_splices_back_to_baseline(node_seed in 0usize..4096) {
        let (_, g, inc) = base();
        let mid = NodeId(node_seed % g.node_count());
        let original = g.node(mid).expect("node exists").op;
        let swapped = if original == OpKind::Relu { OpKind::Sigmoid } else { OpKind::Relu };
        let name = g.node(mid).expect("node exists").name.clone();

        let mut mutated = g.clone();
        replace_op(&mut mutated, mid, swapped, "swap").expect("replace");
        replace_op(&mut mutated, mid, original, name).expect("restore");
        let (p, stats) = inc.repredict(&mutated, None).expect("repredict lowers");
        prop_assert!(stats.spliced, "identical graph must splice: {:?}", stats);
        prop_assert_eq!(bits(&p), bits(&inc.baseline_prediction()));
    }
}

/// One representative spec list per kernel family (duplicates included to
/// exercise in-batch memo behaviour upstream).
fn family_specs() -> Vec<Vec<KernelSpec>> {
    vec![
        vec![
            KernelSpec::gemm(512, 256, 128),
            KernelSpec::Gemm { m: 64, n: 2048, k: 64, batch: 8 },
            KernelSpec::gemm(512, 256, 128),
            KernelSpec::Gemm { m: 31, n: 33, k: 7, batch: 1 },
        ],
        vec![
            KernelSpec::EmbeddingForward { b: 512, e: 100_000, t: 4, l: 32, d: 64, rows_per_block: 32 },
            KernelSpec::EmbeddingForward { b: 128, e: 50_000, t: 8, l: 1, d: 128, rows_per_block: 16 },
        ],
        vec![
            KernelSpec::EmbeddingBackward { b: 512, e: 100_000, t: 4, l: 32, d: 64, rows_per_block: 32 },
        ],
        vec![KernelSpec::Concat { bytes: 1 << 20 }, KernelSpec::Concat { bytes: 77 }],
        vec![KernelSpec::memcpy_d2d(1 << 22), KernelSpec::memcpy_d2d(4096)],
        vec![
            KernelSpec::Transpose { batch: 8, rows: 64, cols: 64 },
            KernelSpec::Transpose { batch: 8, rows: 64, cols: 63 },
        ],
        vec![KernelSpec::TrilForward { batch: 256, n: 27 }],
        vec![KernelSpec::TrilBackward { batch: 256, n: 27 }],
        vec![
            KernelSpec::Elementwise { elems: 1 << 20, flops_per_elem: 2.0, bytes_per_elem: 8.0 },
            KernelSpec::Elementwise { elems: 333, flops_per_elem: 1.0, bytes_per_elem: 12.0 },
        ],
        vec![KernelSpec::Conv2d {
            batch: 8,
            c_in: 16,
            h: 32,
            w: 32,
            c_out: 32,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        }],
    ]
}

/// Batched family evaluation is bitwise identical to scalar evaluation for
/// every family, including a mixed-family batch in arbitrary order.
#[test]
fn batched_inference_matches_scalar_on_all_kernel_families() {
    let registry = ModelRegistry::calibrate(&DeviceSpec::v100(), CalibrationEffort::Quick, 11);
    let mut mixed: Vec<KernelSpec> = Vec::new();
    for specs in family_specs() {
        let scalar: Vec<(u64, _)> = specs
            .iter()
            .map(|k| {
                let (t, c) = registry.predict_with_confidence(k);
                (t.to_bits(), c)
            })
            .collect();
        let batched: Vec<(u64, _)> = registry
            .predict_batch_with_confidence(&specs)
            .into_iter()
            .map(|(t, c)| (t.to_bits(), c))
            .collect();
        assert_eq!(scalar, batched, "family of {:?} diverged", specs[0]);
        // Interleave: families alternate so the grouped evaluation must
        // re-scatter results into input order.
        for (i, s) in specs.into_iter().enumerate() {
            mixed.insert((i * 7) % (mixed.len() + 1), s);
        }
    }
    let scalar: Vec<u64> =
        mixed.iter().map(|k| registry.predict_with_confidence(k).0.to_bits()).collect();
    let batched: Vec<u64> = registry
        .predict_batch_with_confidence(&mixed)
        .into_iter()
        .map(|(t, _)| t.to_bits())
        .collect();
    assert_eq!(scalar, batched, "mixed-family batch diverged");
}
