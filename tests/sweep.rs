//! Property tests for the sweep engine's determinism contract.
//!
//! The engine's promises (see `dlperf_core::sweep`): the parallel sweep is
//! bitwise identical to the sequential one at any thread count, with the
//! memo cache on or off; and predicted step time is monotone in batch
//! size. Scenario axes are randomized, results compared by f64 bit
//! pattern — any nondeterminism (shared-state mutation, float reassociation,
//! result misordering) fails the suite.

use std::sync::OnceLock;

use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::core::sweep::{GraphMutation, ScenarioMatrix, SweepEngine, SweepOutcome};
use dlrm_perf_model::distrib::{
    enumerate_matrix, sweep_shardings, DistributedDlrm, DistributedPredictor,
    ParallelismStrategy, ShardingPlan, ShardingSweepOutcome,
};
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::graph::Graph;
use dlrm_perf_model::kernels::CalibrationEffort;
use dlrm_perf_model::models::DlrmConfig;
use dlrm_perf_model::runtime::CancellationToken;
use proptest::prelude::*;

/// One shared calibration (the expensive part); each case clones the
/// pipeline into a fresh engine.
fn base() -> &'static (Pipeline, Graph) {
    static BASE: OnceLock<(Pipeline, Graph)> = OnceLock::new();
    BASE.get_or_init(|| {
        let g = DlrmConfig {
            rows_per_table: vec![200_000; 4],
            ..DlrmConfig::default_config(512)
        }
        .build();
        let pipe = Pipeline::analyze(
            &DeviceSpec::v100(),
            std::slice::from_ref(&g),
            CalibrationEffort::Quick,
            8,
            31,
        );
        (pipe, g)
    })
}

fn engine() -> SweepEngine {
    SweepEngine::new(vec![base().0.clone()])
}

/// Full bitwise fingerprint of an outcome: labels, prediction bits, errors.
fn fingerprint(o: &SweepOutcome) -> Vec<(String, Option<u64>, Option<String>)> {
    o.results
        .iter()
        .map(|r| {
            let r = r.as_ref().expect("complete run");
            (
                r.label.clone(),
                r.prediction.as_ref().map(|p| p.e2e_us.to_bits()),
                r.error.clone(),
            )
        })
        .collect()
}

/// Non-empty subsets of the batch axis, driven by a 6-bit mask (the
/// vendored proptest has no `sample::subsequence`).
fn batch_axis() -> impl Strategy<Value = Vec<u64>> {
    const ALL: [u64; 6] = [64, 128, 256, 512, 1024, 2048];
    (1usize..64).prop_map(|mask| {
        ALL.iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &b)| b)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_matches_sequential_bitwise_at_1_2_8_threads(
        batches in batch_axis(),
        hoist in (0u8..2).prop_map(|b| b == 1),
    ) {
        let (_, g) = base();
        let mut m = ScenarioMatrix::new().device("V100", 0).batches(&batches)
            .variant("base", vec![]);
        if hoist {
            m = m.variant("hoisted", vec![GraphMutation::HoistAll]);
        }
        let scenarios = m.build();
        let reference = fingerprint(&engine().with_threads_exact(1).run(g, &scenarios));
        for threads in [2usize, 8] {
            let par = fingerprint(&engine().with_threads_exact(threads).run(g, &scenarios));
            prop_assert_eq!(&par, &reference, "{} threads diverged", threads);
        }
    }

    #[test]
    fn cache_on_equals_cache_off_bitwise(batches in batch_axis()) {
        let (_, g) = base();
        let scenarios = ScenarioMatrix::new()
            .device("V100", 0)
            .batches(&batches)
            .variant("base", vec![])
            .variant("fused", vec![GraphMutation::FuseEmbeddingBags])
            .build();
        let cached = engine().with_cache(true).with_threads_exact(4).run(g, &scenarios);
        let uncached = engine().with_cache(false).with_threads_exact(4).run(g, &scenarios);
        prop_assert_eq!(fingerprint(&cached), fingerprint(&uncached));
    }

    #[test]
    fn step_time_is_monotone_in_batch(start in 0usize..2) {
        let all = [64u64, 128, 256, 512, 1024, 2048];
        let batches = &all[start..];
        let (_, g) = base();
        let scenarios =
            ScenarioMatrix::new().device("V100", 0).batches(batches).build();
        let out = engine().run(g, &scenarios);
        let times: Vec<f64> = out
            .expect_complete()
            .iter()
            .map(|r| r.expect_prediction().e2e_us)
            .collect();
        for w in times.windows(2) {
            prop_assert!(
                w[1] >= w[0],
                "step time decreased with batch: {:?} (batches {:?})",
                times,
                batches
            );
        }
    }

    #[test]
    fn cancelled_runs_agree_with_sequential_on_completed_slots(
        batches in batch_axis(),
    ) {
        let (_, g) = base();
        let scenarios =
            ScenarioMatrix::new().device("V100", 0).batches(&batches).build();
        let reference = engine().run_sequential(g, &scenarios);
        let token = CancellationToken::new();
        token.cancel();
        let cancelled =
            engine().with_cancellation(token).with_threads_exact(2).run(g, &scenarios);
        prop_assert!(cancelled.cancelled);
        for (i, slot) in cancelled.results.iter().enumerate() {
            if let Some(r) = slot {
                let want = reference.results[i].as_ref().unwrap();
                prop_assert_eq!(
                    r.prediction.as_ref().map(|p| p.e2e_us.to_bits()),
                    want.prediction.as_ref().map(|p| p.e2e_us.to_bits())
                );
            }
        }
    }
}

/// One shared distributed predictor for the topology-axis properties.
fn distrib_base() -> &'static (DistributedPredictor, DlrmConfig) {
    static BASE: OnceLock<(DistributedPredictor, DlrmConfig)> = OnceLock::new();
    BASE.get_or_init(|| {
        let cfg = DlrmConfig::default_config(512);
        let probe = DistributedDlrm::new(
            cfg.clone(),
            ShardingPlan::round_robin(cfg.rows_per_table.len(), 2),
        )
        .unwrap();
        let device = DeviceSpec::v100();
        let pipe =
            Pipeline::analyze(&device, &probe.segments(0), CalibrationEffort::Quick, 6, 23);
        (DistributedPredictor::new(pipe.predictor().clone(), device), cfg)
    })
}

/// Full bitwise fingerprint of a sharding sweep: labels, prediction bits,
/// errors, degradation notes.
#[allow(clippy::type_complexity)]
fn distrib_fingerprint(
    o: &ShardingSweepOutcome,
) -> Vec<(String, Option<u64>, Option<String>, Option<String>)> {
    o.results
        .iter()
        .map(|r| {
            let r = r.as_ref().expect("complete run");
            (
                r.label.clone(),
                r.prediction.as_ref().map(|p| p.e2e_us.to_bits()),
                r.error.clone(),
                r.degraded.clone(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The full `(topology × strategy × world × plan)` matrix prices
    /// bitwise identically at 1, 2, and 8 threads — including the
    /// degraded cells unknown topology names produce — and the shared
    /// memo cache plus incremental baselines change nothing against the
    /// plain uncached predictor.
    #[test]
    fn topology_axis_sweep_is_bitwise_stable_across_threads_and_cache(
        topo_mask in 1usize..16,
        strategy_mask in 1usize..16,
    ) {
        const TOPOLOGIES: [&str; 4] = ["auto", "nvlink", "ib2x2", "quantum-fabric"];
        let topologies: Vec<&str> = TOPOLOGIES
            .iter()
            .enumerate()
            .filter(|(i, _)| topo_mask & (1 << i) != 0)
            .map(|(_, &t)| t)
            .collect();
        let strategies: Vec<ParallelismStrategy> = ParallelismStrategy::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| strategy_mask & (1 << i) != 0)
            .map(|(_, &s)| s)
            .collect();
        let (predictor, cfg) = distrib_base();
        let scenarios = enumerate_matrix(
            cfg.rows_per_table.len(),
            &[2, 4],
            &strategies,
            &topologies,
            &DeviceSpec::v100(),
        );
        let token = CancellationToken::new();
        let reference =
            distrib_fingerprint(&sweep_shardings(predictor, cfg, &scenarios, 1, &token));
        for threads in [2usize, 8] {
            let par = distrib_fingerprint(&sweep_shardings(
                predictor, cfg, &scenarios, threads, &token,
            ));
            prop_assert_eq!(&par, &reference, "{} threads diverged", threads);
        }
        // Cache off: price each buildable cell alone through the plain
        // (uncached, non-incremental) predictor. Bitwise identical.
        for (scenario, got) in scenarios.iter().zip(&reference) {
            let Ok(plan) = &scenario.plan else { continue };
            let Ok(job) = DistributedDlrm::new(cfg.clone(), plan.clone())
                .map(|j| j.with_strategy(scenario.strategy))
            else {
                continue;
            };
            let cell = match &scenario.topology {
                Some(t) => predictor.clone().with_topology(t.clone()),
                None => predictor.clone(),
            };
            let plain = cell.predict(&job).ok().map(|p| p.e2e_us.to_bits());
            prop_assert_eq!(
                plain, got.1,
                "cache/incremental path diverged from plain predict on {}", got.0
            );
        }
    }
}

#[test]
fn cache_hit_rate_climbs_across_repeated_runs() {
    let (_, g) = base();
    let eng = engine();
    let scenarios = ScenarioMatrix::new()
        .device("V100", 0)
        .batches(&[256, 512])
        .variant("base", vec![])
        .build();
    let first = eng.run(g, &scenarios);
    let second = eng.run(g, &scenarios);
    let s1 = first.cache.unwrap();
    let s2 = second.cache.unwrap();
    assert!(s2.hits > s1.hits, "second run must hit: {s1} then {s2}");
    assert_eq!(s2.misses, s1.misses, "second run must add no misses");
}
