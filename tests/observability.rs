//! The observability contract, end to end:
//!
//! * **Self-trace round-trip** — a sweep recorded through
//!   [`ChromeTraceSink`] serializes to the same JSON dialect the `trace`
//!   crate parses; re-parsing and rebuilding the event tree recovers the
//!   sweep's own phase/work structure with durations intact. The model
//!   profiles itself with its own trace-mining machinery.
//! * **Recorder transparency** — enabling the recorder (spans buffered,
//!   sink installed) changes no prediction bit anywhere in the stack:
//!   full Algorithm 1 walk, incremental re-prediction, and the 8-thread
//!   memoized sweep all produce bitwise-identical results recorder-on vs
//!   recorder-off, across randomized scenario axes.
//!
//! The recorder is process-global, so every test serializes on one lock
//! and drains the span buffer before releasing it.

use std::sync::{Mutex, MutexGuard, OnceLock};

use dlrm_perf_model::core::incremental::IncrementalPredictor;
use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::core::predictor::Prediction;
use dlrm_perf_model::core::sweep::{ScenarioMatrix, SweepEngine, SweepOutcome};
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::graph::Graph;
use dlrm_perf_model::kernels::CalibrationEffort;
use dlrm_perf_model::models::DlrmConfig;
use dlrm_perf_model::obs;
use dlrm_perf_model::trace::event_tree::EventTree;
use dlrm_perf_model::trace::{ChromeTraceSink, EventCat, Trace};
use proptest::prelude::*;

/// Serializes recorder-touching tests (the recorder is process-global).
fn recorder_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Resets global recorder state between tests: spans drained, sinks gone.
fn reset_recorder() {
    obs::disable();
    obs::clear_sinks();
    obs::flush();
}

/// One shared calibration (the expensive part).
fn base() -> &'static (Pipeline, Graph) {
    static BASE: OnceLock<(Pipeline, Graph)> = OnceLock::new();
    BASE.get_or_init(|| {
        let g = DlrmConfig {
            rows_per_table: vec![150_000; 4],
            ..DlrmConfig::default_config(512)
        }
        .build();
        let pipe = Pipeline::analyze(
            &DeviceSpec::v100(),
            std::slice::from_ref(&g),
            CalibrationEffort::Quick,
            8,
            43,
        );
        (pipe, g)
    })
}

fn scenarios() -> Vec<dlrm_perf_model::core::sweep::Scenario> {
    ScenarioMatrix::new()
        .device("v100", 0)
        .batches(&[256, 512, 1024])
        .variant("base", Vec::new())
        .variant(
            "fused",
            vec![dlrm_perf_model::core::sweep::GraphMutation::FuseEmbeddingBags],
        )
        .build()
}

/// Full bitwise fingerprint of an outcome: labels, prediction bits, errors.
fn fingerprint(o: &SweepOutcome) -> Vec<(String, Option<u64>, Option<String>)> {
    o.results
        .iter()
        .map(|r| {
            let r = r.as_ref().expect("complete run");
            (
                r.label.clone(),
                r.prediction.as_ref().map(|p| p.e2e_us.to_bits()),
                r.error.clone(),
            )
        })
        .collect()
}

/// All observable bits of a prediction.
fn bits(p: &Prediction) -> [u64; 5] {
    [
        p.e2e_us.to_bits(),
        p.active_us.to_bits(),
        p.cpu_us.to_bits(),
        p.gpu_us.to_bits(),
        p.degraded_kernels as u64,
    ]
}

#[test]
fn self_trace_round_trips_through_the_trace_pipeline() {
    let _guard = recorder_lock();
    reset_recorder();
    let (pipe, g) = base();
    let engine = SweepEngine::new(vec![pipe.clone()]).with_threads(2);

    let sink = ChromeTraceSink::install("self-sweep", "host");
    obs::enable();
    let outcome = engine.run(g, &scenarios());
    obs::disable();
    obs::flush();
    obs::clear_sinks();
    assert!(!outcome.cancelled);

    // The sink's traces survive a full JSON round-trip through the same
    // parser that reads external profiler traces.
    let json = sink.to_json();
    let reparsed = ChromeTraceSink::parse_json(&json).expect("self-trace JSON parses");
    let originals = sink.traces();
    assert!(!originals.is_empty(), "sweep must record at least one thread");
    assert_eq!(reparsed.len(), originals.len());

    for (orig, back) in originals.iter().zip(&reparsed) {
        assert_eq!(orig.events.len(), back.events.len());
        for (a, b) in orig.events.iter().zip(&back.events) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.cat, b.cat);
            let tol = 1e-6 * a.dur_us.abs().max(1.0);
            assert!((a.dur_us - b.dur_us).abs() <= tol, "duration drifted: {a:?} vs {b:?}");
            assert!((a.ts_us - b.ts_us).abs() <= 1e-6 * a.ts_us.abs().max(1.0));
        }
    }

    // The event tree recovers the sweep's structure: the coordinating
    // thread carries the `sweep.run` phase, worker threads carry one
    // scenario op per priced scenario, and every scenario op attributes
    // device (work) time from its nested walk spans.
    let all_ops: Vec<String> = reparsed
        .iter()
        .flat_map(|t| t.of_cat(EventCat::Op))
        .map(|e| e.op_key.clone())
        .collect();
    assert!(
        all_ops.iter().any(|k| k == "sweep.run"),
        "missing sweep.run phase in {all_ops:?}"
    );
    // A scenario priced on the coordinating thread nests under `sweep.run`
    // (a Runtime event); one priced on a worker thread is a top-level op.
    // Either way every scenario label must appear exactly once.
    let mut scenario_labels: Vec<String> = reparsed
        .iter()
        .flat_map(|t| t.events.iter())
        .filter(|e| e.cat != EventCat::Kernel && e.name.starts_with("scenario:"))
        .map(|e| e.name.clone())
        .collect();
    scenario_labels.sort();
    scenario_labels.dedup();
    assert_eq!(scenario_labels.len(), scenarios().len(), "one span per priced scenario");

    let mut device_time = 0.0;
    for t in &reparsed {
        let tree = EventTree::build(t);
        assert!(!tree.ops.is_empty());
        for op in &tree.ops {
            if op.op.op_key.starts_with("scenario:") {
                assert!(
                    !op.launches.is_empty(),
                    "scenario op `{}` lost its nested spans",
                    op.op.op_key
                );
                // Nesting survives: every launch lies inside its op's span.
                for l in &op.launches {
                    assert!(l.runtime.ts_us >= op.op.ts_us - 1e-9);
                    assert!(l.runtime.end_us() <= op.op.end_us() + 1e-9);
                }
            }
        }
        device_time += tree.total_device_time_us();
    }
    assert!(device_time > 0.0, "work spans must attribute device time");
}

#[test]
fn self_trace_files_round_trip_from_disk() {
    let _guard = recorder_lock();
    reset_recorder();
    let (pipe, g) = base();
    let engine = SweepEngine::new(vec![pipe.clone()]).with_threads(1);

    let sink = ChromeTraceSink::install("self-sweep", "host");
    obs::enable();
    let _ = engine.run_sequential(g, &scenarios());
    obs::disable();
    obs::flush();
    obs::clear_sinks();

    let dir = std::env::temp_dir().join("dlperf-selftrace-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("selftrace.json");
    sink.write_json(&path).unwrap();
    let loaded = ChromeTraceSink::parse_json(&std::fs::read_to_string(&path).unwrap())
        .expect("file round-trips");
    assert_eq!(loaded.len(), sink.traces().len());
    // Each element is individually a valid Trace document too.
    for t in &loaded {
        let again = Trace::from_json(&t.to_json()).expect("single-trace parse");
        assert_eq!(again.events.len(), t.events.len());
    }
    std::fs::remove_file(path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Enabling the recorder (spans + sink) flips no prediction bit in the
    /// full walk, the incremental walk, or the 8-thread memoized sweep.
    #[test]
    fn recorder_never_changes_prediction_bits(
        batch in (0usize..4).prop_map(|i| [128u64, 256, 512, 1024][i]),
        fuse in (0u8..2).prop_map(|b| b == 1),
    ) {
        let _guard = recorder_lock();
        reset_recorder();
        let (pipe, g) = base();

        let mut variant = g.clone();
        dlrm_perf_model::graph::transform::resize_batch(&mut variant, batch).unwrap();
        if fuse {
            let _ = dlrm_perf_model::graph::transform::fuse_embedding_bags(&mut variant);
        }

        let inc = IncrementalPredictor::new(pipe.predictor().clone(), g.clone()).unwrap();
        let matrix = ScenarioMatrix::new()
            .device("v100", 0)
            .batches(&[batch, 2 * batch])
            .build();

        // Recorder off: the reference bits.
        let full_off = bits(&pipe.predict(&variant).unwrap());
        let (inc_p, _) = inc.repredict(&variant, None).unwrap();
        let inc_off = bits(&inc_p);
        let sweep_off = fingerprint(
            &SweepEngine::new(vec![pipe.clone()]).with_threads_exact(8).run(g, &matrix),
        );

        // Recorder on, sink installed: same bits, exactly.
        let _sink = ChromeTraceSink::install("invariance", "host");
        obs::enable();
        let full_on = bits(&pipe.predict(&variant).unwrap());
        let (inc_p, _) = inc.repredict(&variant, None).unwrap();
        let inc_on = bits(&inc_p);
        let sweep_on = fingerprint(
            &SweepEngine::new(vec![pipe.clone()]).with_threads_exact(8).run(g, &matrix),
        );
        obs::disable();
        obs::flush();
        obs::clear_sinks();

        prop_assert_eq!(full_off, full_on);
        prop_assert_eq!(inc_off, inc_on);
        prop_assert_eq!(sweep_off, sweep_on);
    }
}
