//! Golden snapshot tests: bitwise-pinned predictions for the two
//! documented entry points (the README quickstart and the
//! `whatif_batch_and_device` sweep).
//!
//! Every f64 is stored as the 16-hex-digit big-endian bit pattern of
//! `f64::to_bits` — not as a decimal — so the comparison is exact and
//! immune to the vendored JSON writer's number formatting. A golden
//! mismatch therefore means the prediction pipeline changed *bitwise*:
//! either an intended model change (regenerate, review the diff, commit)
//! or an accidental nondeterminism/reordering bug (fix it).
//!
//! Regenerate with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_snapshots
//! git diff tests/golden/   # review before committing
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;

use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::core::sweep::{GraphMutation, ScenarioMatrix, SweepEngine};
use dlrm_perf_model::distrib::{
    enumerate_plans, sweep_shardings, DistributedDlrm, DistributedPredictor,
    ParallelismStrategy, ShardingPlan, Topology,
};
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::kernels::CalibrationEffort;
use dlrm_perf_model::models::DlrmConfig;
use dlrm_perf_model::runtime::CancellationToken;

fn hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compares `actual` against the stored snapshot, or rewrites the
/// snapshot when `UPDATE_GOLDEN=1`.
fn check_golden(name: &str, actual: &BTreeMap<String, String>) {
    let path = golden_path(name);
    let rendered = serde_json::to_string(actual).expect("serializable snapshot");
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir tests/golden");
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with UPDATE_GOLDEN=1 cargo test --test golden_snapshots",
            path.display()
        )
    });
    let expected: BTreeMap<String, String> =
        serde_json::from_str(&stored).expect("golden parses");
    assert_eq!(
        actual, &expected,
        "golden {name} mismatch — if the model change is intended, regenerate \
         with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn quickstart_prediction_is_bitwise_stable() {
    // The README quickstart, pinned: V100, default DLRM config, batch 1024.
    let workloads = vec![DlrmConfig::default_config(1024).build()];
    let pipeline =
        Pipeline::analyze(&DeviceSpec::v100(), &workloads, CalibrationEffort::Quick, 20, 7);
    let pred = pipeline.predict(&workloads[0]).expect("lowers");
    let mut snap = BTreeMap::new();
    snap.insert("e2e_us".to_string(), hex(pred.e2e_us));
    snap.insert("active_us".to_string(), hex(pred.active_us));
    snap.insert("cpu_us".to_string(), hex(pred.cpu_us));
    snap.insert("gpu_us".to_string(), hex(pred.gpu_us));
    snap.insert("degraded_kernels".to_string(), pred.degraded_kernels.to_string());
    check_golden("quickstart.json", &snap);
}

#[test]
fn whatif_batch_and_device_sweep_is_bitwise_stable() {
    // The `whatif_batch_and_device` example's matrix, shrunk to test scale
    // and pinned per scenario label.
    // Per-table embedding bags (not the pre-fused batched op) so the
    // `fused` variant has something to fuse.
    let base = DlrmConfig {
        rows_per_table: vec![200_000; 4],
        batched_embedding: false,
        ..DlrmConfig::default_config(512)
    }
    .build();
    let pipelines: Vec<Pipeline> = [DeviceSpec::v100(), DeviceSpec::p100()]
        .iter()
        .map(|d| {
            Pipeline::analyze(d, std::slice::from_ref(&base), CalibrationEffort::Quick, 8, 13)
        })
        .collect();
    let engine = SweepEngine::new(pipelines).with_threads(4);
    let scenarios = ScenarioMatrix::new()
        .device("V100", 0)
        .device("P100", 1)
        .batches(&[256, 1024])
        .variant("base", vec![])
        .variant("fused", vec![GraphMutation::FuseEmbeddingBags])
        .build();
    let out = engine.run(&base, &scenarios);
    let mut snap = BTreeMap::new();
    for r in out.expect_complete() {
        let p = r.expect_prediction();
        snap.insert(r.label.clone(), hex(p.e2e_us));
    }
    check_golden("whatif_batch_and_device.json", &snap);
}

#[test]
fn hierarchical_ib_heterogeneous_sweep_is_bitwise_stable() {
    // A heterogeneous fleet on a multi-node IB hierarchy — two V100s and
    // two P100s, two per node — swept over every parallelism strategy and
    // the three candidate sharding plans, pinned per cell. This is the
    // deepest path through the α–β communication model: hierarchical
    // allreduce selection, uplink-bounded crossings, and the slow card
    // dragging the fleet's launch and bandwidth.
    let cfg = DlrmConfig::default_config(512);
    let tables = cfg.rows_per_table.len();
    let probe = DistributedDlrm::new(cfg.clone(), ShardingPlan::round_robin(tables, 2))
        .expect("probe job");
    let device = DeviceSpec::v100();
    let pipe = Pipeline::analyze(&device, &probe.segments(0), CalibrationEffort::Quick, 6, 29);
    let predictor = DistributedPredictor::new(pipe.predictor().clone(), device);
    let fleet = vec![
        DeviceSpec::v100(),
        DeviceSpec::v100(),
        DeviceSpec::p100(),
        DeviceSpec::p100(),
    ];
    let topology = Topology::multi_node_ib_heterogeneous(fleet, 2);
    let mut scenarios = Vec::new();
    for strategy in ParallelismStrategy::ALL {
        for cell in enumerate_plans(tables, &[4]) {
            scenarios.push(dlrm_perf_model::distrib::ShardingScenario {
                label: format!("{}/{strategy}/{}", topology.label(), cell.label),
                plan: cell.plan,
                strategy,
                topology: Some(topology.clone()),
            });
        }
    }
    let out = sweep_shardings(&predictor, &cfg, &scenarios, 4, &CancellationToken::new());
    let mut snap = BTreeMap::new();
    for r in out.results.iter().flatten() {
        let p = r.prediction.as_ref().expect("every cell prices");
        snap.insert(r.label.clone(), hex(p.e2e_us));
    }
    check_golden("distrib_hierarchical_ib.json", &snap);
}
