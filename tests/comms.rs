//! Differential-accuracy suite for the α–β communication model.
//!
//! `CommModel` prices collectives with closed-form α–β (latency–bandwidth)
//! expressions; `Topology::oracle_time_algo` runs the same schedule through
//! the `gpusim` link-level simulator (BFS routing, per-link congestion
//! sharing). This suite diffs the two over the full topology catalog and a
//! message-size ladder, pinning the per-collective GMAE — the paper's
//! accuracy metric — under fixed thresholds, so any drift in either layer
//! (a changed schedule, a broken congestion model, a misplaced launch
//! overhead) fails loudly with the offending cells printed.
//!
//! The property layer checks the shape of the model rather than its
//! values: collective time is monotone in message size, never improved by
//! losing link bandwidth, and finite/positive on every catalog topology.

use dlrm_perf_model::distrib::{CommModel, Topology};
use dlrm_perf_model::gpusim::{CollectiveKind, CollectiveSpec};
use proptest::prelude::*;

/// Message-size ladder: latency-bound 4 KiB up to bandwidth-bound 64 MiB.
const SIZES: [u64; 6] = [4 << 10, 64 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20];

/// World sizes the catalog is diffed at.
const WORLDS: [usize; 3] = [2, 4, 8];

const KINDS: [CollectiveKind; 3] =
    [CollectiveKind::AllReduce, CollectiveKind::AllToAll, CollectiveKind::AllGather];

fn spec(kind: CollectiveKind, bytes: u64, world: usize) -> CollectiveSpec {
    CollectiveSpec { kind, bytes_per_rank: bytes, world: world as u32 }
}

/// Geometric mean absolute error of `(model, oracle)` pairs: the
/// exponential of the mean |log ratio|, minus one. 0.10 reads "10% off on
/// a typical cell".
fn gmae(pairs: &[(f64, f64)]) -> f64 {
    assert!(!pairs.is_empty());
    let sum: f64 = pairs.iter().map(|(m, o)| (m / o).ln().abs()).sum();
    (sum / pairs.len() as f64).exp() - 1.0
}

/// All `(model, oracle)` pairs for one collective kind across the catalog
/// and the size ladder. The oracle simulates the same algorithm the model
/// selected, so the diff isolates the α–β approximation itself.
fn diff_pairs(kind: CollectiveKind) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    for world in WORLDS {
        for topo in Topology::catalog(world) {
            let model = CommModel::new(topo.clone());
            for bytes in SIZES {
                let s = spec(kind, bytes, world);
                let est = model.estimate(&s);
                let oracle = topo.oracle_time_algo(&s, est.algo);
                assert!(
                    est.time_us.is_finite() && est.time_us > 0.0,
                    "{}/{kind}/{bytes}B: non-finite model time",
                    topo.label()
                );
                assert!(oracle.is_finite() && oracle > 0.0);
                out.push((format!("{}/{bytes}B", topo.label()), est.time_us, oracle));
            }
        }
    }
    out
}

/// Pins the GMAE of one collective under `bound`, printing every cell on
/// failure so the offending topology is identifiable from the test log.
fn assert_gmae(kind: CollectiveKind, bound: f64) {
    let cells = diff_pairs(kind);
    let pairs: Vec<(f64, f64)> = cells.iter().map(|(_, m, o)| (*m, *o)).collect();
    let err = gmae(&pairs);
    assert!(
        err < bound,
        "{kind} GMAE {err:.4} breached the pinned bound {bound}; cells:\n{}",
        cells
            .iter()
            .map(|(l, m, o)| format!("  {l}: model {m:.2}us oracle {o:.2}us ({:+.1}%)",
                (m / o - 1.0) * 100.0))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

// The pinned bounds. Measured GMAE at pin time (see `print_gmae_table`,
// run with `--nocapture`) was < 0.0001 on every collective — the closed
// forms reproduce the oracle's schedules near-exactly on the whole
// catalog. The pins sit at 5%, far above measurement but far below any
// structural disagreement (a changed schedule or a broken congestion
// model lands at tens of percent).

#[test]
fn all_reduce_gmae_is_pinned() {
    assert_gmae(CollectiveKind::AllReduce, 0.05);
}

#[test]
fn all_to_all_gmae_is_pinned() {
    assert_gmae(CollectiveKind::AllToAll, 0.05);
}

#[test]
fn all_gather_gmae_is_pinned() {
    assert_gmae(CollectiveKind::AllGather, 0.05);
}

/// Not an assertion: prints the per-collective GMAE table so bounds can be
/// re-measured when the model legitimately changes.
#[test]
fn print_gmae_table() {
    for kind in KINDS {
        let cells = diff_pairs(kind);
        let pairs: Vec<(f64, f64)> = cells.iter().map(|(_, m, o)| (*m, *o)).collect();
        let worst = cells
            .iter()
            .max_by(|a, b| {
                let ra = (a.1 / a.2).ln().abs();
                let rb = (b.1 / b.2).ln().abs();
                ra.partial_cmp(&rb).unwrap()
            })
            .unwrap();
        println!(
            "{kind}: GMAE {:.4} over {} cells; worst {} ({:+.1}%)",
            gmae(&pairs),
            pairs.len(),
            worst.0,
            (worst.1 / worst.2 - 1.0) * 100.0
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// More bytes never finish sooner, on any catalog topology.
    #[test]
    fn collective_time_is_monotone_in_message_size(
        world_idx in 0usize..WORLDS.len(),
        topo_idx in 0usize..4,
        kind_idx in 0usize..KINDS.len(),
        lo in 1u64..(1 << 24),
        extra in 0u64..(1 << 24),
    ) {
        let world = WORLDS[world_idx];
        let catalog = Topology::catalog(world);
        let topo = &catalog[topo_idx % catalog.len()];
        let kind = KINDS[kind_idx];
        let model = CommModel::new(topo.clone());
        let t_lo = model.collective_time(&spec(kind, lo, world));
        let t_hi = model.collective_time(&spec(kind, lo + extra, world));
        prop_assert!(
            t_hi >= t_lo,
            "{}/{kind}: {lo}B -> {:.3}us but {}B -> {:.3}us",
            topo.label(), t_lo, lo + extra, t_hi
        );
    }

    /// Losing link bandwidth never speeds a collective up.
    #[test]
    fn collective_time_is_non_increasing_in_bandwidth(
        world_idx in 0usize..WORLDS.len(),
        topo_idx in 0usize..4,
        kind_idx in 0usize..KINDS.len(),
        bytes in 1u64..(1 << 26),
        factor in 0.05f64..1.0,
    ) {
        let world = WORLDS[world_idx];
        let catalog = Topology::catalog(world);
        let topo = &catalog[topo_idx % catalog.len()];
        let kind = KINDS[kind_idx];
        let s = spec(kind, bytes, world);
        let full = CommModel::new(topo.clone()).collective_time(&s);
        let cut = CommModel::new(topo.scaled_bandwidth(factor)).collective_time(&s);
        prop_assert!(
            cut >= full,
            "{}/{kind}/{bytes}B: x{factor:.2} bandwidth {:.3}us < full {:.3}us",
            topo.label(), cut, full
        );
    }

    /// Every catalog topology prices every collective finitely, and the
    /// oracle agrees within an order of magnitude — the coarse containment
    /// that keeps the GMAE pins meaningful (a pin over a set that silently
    /// lost a topology would still pass).
    #[test]
    fn every_catalog_topology_stays_near_its_oracle(
        world in 2usize..=8,
        kind_idx in 0usize..KINDS.len(),
        size_idx in 0usize..SIZES.len(),
    ) {
        let kind = KINDS[kind_idx];
        let s = spec(kind, SIZES[size_idx], world);
        for topo in Topology::catalog(world) {
            let model = CommModel::new(topo.clone());
            let est = model.estimate(&s);
            let oracle = topo.oracle_time_algo(&s, est.algo);
            prop_assert!(est.time_us.is_finite() && est.time_us > 0.0);
            let ratio = est.time_us / oracle;
            prop_assert!(
                (0.1..=10.0).contains(&ratio),
                "{}/{kind}/{}B: model {:.3}us vs oracle {:.3}us",
                topo.label(), SIZES[size_idx], est.time_us, oracle
            );
        }
    }
}
