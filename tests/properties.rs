//! Property-based tests on the simulator, graph, and predictor invariants.

use dlrm_perf_model::gpusim::{DeviceSpec, Gpu, KernelSpec};
use dlrm_perf_model::graph::transform::resize_batch;
use dlrm_perf_model::models::DlrmConfig;
use dlrm_perf_model::trace::engine::ExecutionEngine;
use proptest::prelude::*;

fn devices() -> impl Strategy<Value = DeviceSpec> {
    prop_oneof![
        Just(DeviceSpec::v100()),
        Just(DeviceSpec::p100()),
        Just(DeviceSpec::titan_xp()),
    ]
}

fn kernels() -> impl Strategy<Value = KernelSpec> {
    prop_oneof![
        (1u64..4096, 1u64..4096, 1u64..4096).prop_map(|(m, n, k)| KernelSpec::gemm(m, n, k)),
        (1u64..64, 1u64..512, 1u64..512, 1u64..512)
            .prop_map(|(b, m, n, k)| KernelSpec::bmm(b, m, n, k)),
        (1u64..4096, 1u64..5_000_000, 1u64..32, 1u64..100, 1u64..256)
            .prop_map(|(b, e, t, l, d)| KernelSpec::embedding_forward(b, e, t, l, d)),
        (1u64..4096, 1u64..5_000_000, 1u64..32, 1u64..100, 1u64..256)
            .prop_map(|(b, e, t, l, d)| KernelSpec::embedding_backward(b, e, t, l, d)),
        (1u64..(1 << 28)).prop_map(KernelSpec::memcpy_d2d),
        (1u64..(1 << 28)).prop_map(|b| KernelSpec::Concat { bytes: b }),
        (1u64..2048, 1u64..512, 1u64..512)
            .prop_map(|(b, r, c)| KernelSpec::Transpose { batch: b, rows: r, cols: c }),
        (1u64..4096, 2u64..128).prop_map(|(b, n)| KernelSpec::TrilForward { batch: b, n }),
        (1u64..4096, 2u64..128).prop_map(|(b, n)| KernelSpec::TrilBackward { batch: b, n }),
        (1u64..(1 << 24), 0u32..16, 1u32..5).prop_map(|(e, f, by)| KernelSpec::Elementwise {
            elems: e,
            flops_per_elem: f as f64,
            bytes_per_elem: by as f64 * 4.0,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every kernel on every device has a finite, positive, deterministic
    /// simulated time.
    #[test]
    fn kernel_times_positive_and_deterministic(dev in devices(), k in kernels()) {
        let gpu = Gpu::noiseless(dev);
        let t1 = gpu.kernel_time_noiseless(&k);
        let t2 = gpu.kernel_time_noiseless(&k);
        prop_assert!(t1.is_finite() && t1 > 0.0);
        prop_assert_eq!(t1, t2);
    }

    /// Measurement noise is bounded: 100 noisy samples stay within a
    /// generous band of the analytic time.
    #[test]
    fn noise_stays_bounded(k in kernels()) {
        let dev = DeviceSpec::v100();
        let noiseless = Gpu::noiseless(dev.clone()).kernel_time_noiseless(&k);
        let mut gpu = Gpu::with_seed(dev, 9);
        for _ in 0..100 {
            let t = gpu.kernel_time(&k);
            prop_assert!(t > 0.0);
            prop_assert!((t - noiseless).abs() < 0.25 * noiseless + 2.0,
                "sample {} vs analytic {}", t, noiseless);
        }
    }

    /// GEMM time is monotone (within a tolerance for tile-quantization
    /// cliffs) when all dimensions double.
    #[test]
    fn gemm_doubling_never_speeds_up(m in 16u64..1024, n in 16u64..1024, k in 16u64..1024) {
        let gpu = Gpu::noiseless(DeviceSpec::v100());
        let t1 = gpu.kernel_time_noiseless(&KernelSpec::gemm(m, n, k));
        let t2 = gpu.kernel_time_noiseless(&KernelSpec::gemm(2 * m, 2 * n, 2 * k));
        prop_assert!(t2 > t1, "doubling all dims must cost more: {} -> {}", t1, t2);
    }

    /// Resize round-trips: resizing to B' and back to B restores shapes.
    #[test]
    fn resize_round_trip(b1 in 1u64..4096, b2 in 1u64..4096) {
        let mut g = DlrmConfig {
            rows_per_table: vec![10_000; 2],
            ..DlrmConfig::default_config(b1)
        }.build();
        let snapshot: Vec<Vec<u64>> = g.tensors().map(|(_, t)| t.shape.clone()).collect();
        resize_batch(&mut g, b2).unwrap();
        resize_batch(&mut g, b1).unwrap();
        let restored: Vec<Vec<u64>> = g.tensors().map(|(_, t)| t.shape.clone()).collect();
        prop_assert_eq!(snapshot, restored);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Engine invariants hold for arbitrary batch sizes and seeds: E2E ≥
    /// max(cpu, gpu-last), active ≤ span, utilization in (0, 1].
    #[test]
    fn engine_invariants(batch in 16u64..1024, seed in 0u64..1000) {
        let g = DlrmConfig {
            rows_per_table: vec![20_000; 2],
            ..DlrmConfig::default_config(batch)
        }.build();
        let mut engine = ExecutionEngine::new(DeviceSpec::titan_xp(), seed);
        let r = engine.run(&g).unwrap();
        prop_assert!(r.e2e_us >= r.cpu_us);
        prop_assert!(r.e2e_us >= r.gpu_last_us);
        prop_assert!(r.active_us() <= r.e2e_us + 1e-9);
        let u = r.utilization();
        prop_assert!(u > 0.0 && u <= 1.0);
        // Trace events are consistent: kernels lie within the span.
        for ev in &r.trace.events {
            prop_assert!(ev.ts_us >= 0.0);
            prop_assert!(ev.end_us() <= r.e2e_us + 1e-6);
        }
    }
}
