//! Memory-footprint integration: reproduce the paper's experimental-setup
//! decision — *DLRM_MLPerf* with sparse feature size 128 does NOT fit the
//! TITAN Xp / P100, so the paper reduced it to 32.

use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::graph::memory;
use dlrm_perf_model::models::DlrmConfig;

/// The MLPerf config at its original sparse feature size of 128 (bottom MLP
/// widened back accordingly).
fn mlperf_dim128(batch: u64) -> DlrmConfig {
    DlrmConfig {
        bottom_mlp: vec![13, 512, 256, 128],
        embedding_dim: 128,
        ..DlrmConfig::mlperf_config(batch)
    }
}

#[test]
fn mlperf_dim128_does_not_fit_titan_xp() {
    let report = memory::estimate(&mlperf_dim128(2048).build());
    let titan = DeviceSpec::titan_xp();
    // 26 Criteo tables ~34M rows x 128 floats ≈ 17 GB of embeddings alone.
    assert!(report.weight_bytes > 12 * (1 << 30), "weights {} B", report.weight_bytes);
    assert!(!report.fits(titan.memory_bytes, 0.1), "dim-128 MLPerf must NOT fit 12 GB");
}

#[test]
fn mlperf_dim32_fits_all_paper_devices() {
    let report = memory::estimate(&DlrmConfig::mlperf_config(2048).build());
    for dev in DeviceSpec::paper_devices() {
        assert!(
            report.fits(dev.memory_bytes, 0.1),
            "dim-32 MLPerf should fit {} ({} B peak)",
            dev.name,
            report.peak_bytes()
        );
    }
}

#[test]
fn activation_memory_scales_with_batch() {
    let small = memory::estimate(&DlrmConfig::default_config(256).build());
    let large = memory::estimate(&DlrmConfig::default_config(4096).build());
    // Weights identical; activations ~16x.
    assert_eq!(small.weight_bytes, large.weight_bytes);
    let ratio = large.peak_activation_bytes as f64 / small.peak_activation_bytes as f64;
    assert!(
        (8.0..=24.0).contains(&ratio),
        "activation scaling ratio {ratio} out of expected band"
    );
}

#[test]
fn occupancy_curve_covers_every_node() {
    let g = DlrmConfig::default_config(512).build();
    let r = memory::estimate(&g);
    assert_eq!(r.occupancy.len(), g.node_count());
    assert_eq!(
        r.occupancy.iter().copied().max(),
        Some(r.peak_activation_bytes)
    );
}
