//! Supervised-runtime integration tests: the checkpoint/resume and
//! panic-isolation contracts of the robustness milestone.
//!
//! Three contracts are exercised end to end:
//! 1. **Kill-and-resume equivalence** — a supervised job killed after any
//!    number of completed steps and restarted from its checkpoint produces
//!    a bitwise-identical result, whether the restart happens inside one
//!    supervisor (in-run retry) or across two (a fresh process resuming a
//!    dead one's snapshot file).
//! 2. **Panic containment** — a worker that panics repeatedly never takes
//!    the supervisor down; the run either completes (within the restart
//!    budget) with an unchanged result, or fails with a typed error that
//!    names the panic.
//! 3. **Determinism under chaos** — injected worker faults (kill/panic)
//!    from a [`FaultPlan`] change the run report, never the result bits.

use std::sync::atomic::{AtomicU32, Ordering};

use dlperf_faults::{FaultInjector, FaultPlan};
use dlperf_gpusim::DeviceSpec;
use dlperf_kernels::microbench::{gemm_specs, MicrobenchHarness};
use dlperf_nn::gridsearch::{grid_search_supervised, GridSearchJob, SearchSpace};
use dlperf_nn::Dataset;
use dlperf_runtime::{
    open, seal, FileStore, JobContext, JobError, ResumableJob, SnapshotError, StepOutcome,
    Supervisor, SupervisorConfig, SupervisorError,
};
use proptest::prelude::*;

/// Wraps a job so that its `kill_step`-th step is killed `kills` times
/// before being allowed through — simulating a worker death at an exact,
/// test-chosen point.
struct KillAt<J> {
    inner: J,
    kill_step: u64,
    kills: AtomicU32,
}

impl<J> KillAt<J> {
    fn new(inner: J, kill_step: u64, kills: u32) -> Self {
        KillAt { inner, kill_step, kills: AtomicU32::new(kills) }
    }
}

impl<J: ResumableJob> ResumableJob for KillAt<J> {
    type State = J::State;
    type Output = J::Output;

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn initial_state(&self) -> Self::State {
        self.inner.initial_state()
    }

    fn step(&self, state: &mut Self::State, ctx: &JobContext) -> Result<StepOutcome, JobError> {
        if ctx.step == self.kill_step
            && self
                .kills
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |k| k.checked_sub(1))
                .is_ok()
        {
            return Err(JobError::Killed);
        }
        self.inner.step(state, ctx)
    }

    fn finish(&self, state: Self::State) -> Self::Output {
        self.inner.finish(state)
    }
}

/// Wraps a job so that its `panic_step`-th step panics `panics` times
/// before being allowed through.
struct PanicAt<J> {
    inner: J,
    panic_step: u64,
    panics: AtomicU32,
}

impl<J> PanicAt<J> {
    fn new(inner: J, panic_step: u64, panics: u32) -> Self {
        PanicAt { inner, panic_step, panics: AtomicU32::new(panics) }
    }
}

impl<J: ResumableJob> ResumableJob for PanicAt<J> {
    type State = J::State;
    type Output = J::Output;

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn initial_state(&self) -> Self::State {
        self.inner.initial_state()
    }

    fn step(&self, state: &mut Self::State, ctx: &JobContext) -> Result<StepOutcome, JobError> {
        if ctx.step == self.panic_step
            && self
                .panics
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |k| k.checked_sub(1))
                .is_ok()
        {
            panic!("deliberate worker panic at step {}", ctx.step);
        }
        self.inner.step(state, ctx)
    }

    fn finish(&self, state: Self::State) -> Self::Output {
        self.inner.finish(state)
    }
}

fn synthetic() -> Dataset {
    let mut rows = Vec::new();
    let mut ys = Vec::new();
    for i in 3..10 {
        for j in 3..10 {
            let (x0, x1) = ((1u64 << i) as f64, (1u64 << j) as f64);
            rows.push(vec![x0, x1]);
            ys.push(1.0 + 2e-4 * x0 * x1);
        }
    }
    Dataset::from_rows(&rows, &ys).unwrap()
}

fn small_space() -> SearchSpace {
    SearchSpace::reduced()
}

/// Reference val-MAPE bits of the uninterrupted reduced grid search,
/// computed once — every kill/panic/chaos variant must reproduce these
/// exact bits.
fn reference_trials(data: &Dataset) -> &'static [u64] {
    static REF: std::sync::OnceLock<Vec<u64>> = std::sync::OnceLock::new();
    REF.get_or_init(|| {
        let mut sup = Supervisor::new(SupervisorConfig::default());
        let (res, _) = grid_search_supervised(data, &small_space(), 15, 11, &mut sup);
        res.unwrap().trials.iter().map(|(_, m)| m.to_bits()).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A grid search killed after any number of completed configurations
    /// and restarted from its checkpoint produces bitwise-identical trial
    /// errors.
    #[test]
    fn killed_grid_search_resumes_bitwise_identical(kill_step in 0u64..8) {
        let data = synthetic();
        let expected = reference_trials(&data);

        let mut sup = Supervisor::new(SupervisorConfig::default());
        let job = KillAt::new(GridSearchJob::new(&data, &small_space(), 15, 11), kill_step, 1);
        let (res, report) = sup.run(&job);
        let got: Vec<u64> =
            res.unwrap().trials.iter().map(|(_, m)| m.to_bits()).collect();
        prop_assert_eq!(&got[..], expected);
        prop_assert_eq!(report.attempts, 2);
        prop_assert_eq!(report.restarts.len(), 1);
        prop_assert_eq!(report.restarts[0].at_step, kill_step);
    }

    /// Corrupting a sealed checkpoint envelope — byte flips, truncation,
    /// or both — always yields either the original payload (when the
    /// mutations cancel out) or a typed [`SnapshotError`]; never a panic.
    /// This is the contract [`FileStore::open_snapshot`] builds on: a
    /// damaged checkpoint file degrades to "start fresh", not a crash.
    #[test]
    fn corrupted_envelope_always_types_never_panics(
        seed in 0u64..u64::MAX,
        flips in 1usize..8,
    ) {
        let truncate = seed & 1 == 0;
        let payload: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let sealed = seal("t.chaos", 3, &payload).expect("seal");
        let mut bytes = sealed.clone().into_bytes();

        // Deterministic xorshift stream from the proptest-chosen seed.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        if truncate {
            bytes.truncate((next() as usize) % bytes.len());
        }
        for _ in 0..flips {
            if bytes.is_empty() {
                break;
            }
            let pos = (next() as usize) % bytes.len();
            bytes[pos] ^= (next() % 255) as u8 + 1;
        }

        let mangled = String::from_utf8_lossy(&bytes).into_owned();
        match open::<Vec<u64>>("t.chaos", 3, &mangled) {
            // Lossy re-encoding can normalise a flip away; opening cleanly
            // is only acceptable if the payload survived bit-for-bit.
            Ok(back) => prop_assert_eq!(back, payload),
            Err(e) => {
                prop_assert!(matches!(
                    e,
                    SnapshotError::Parse(_)
                        | SnapshotError::SchemaMismatch { .. }
                        | SnapshotError::VersionMismatch { .. }
                        | SnapshotError::ChecksumMismatch { .. }
                ), "unexpected variant: {}", e);
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// Same property for the chunked microbenchmark sweep.
    #[test]
    fn killed_microbench_sweep_resumes_bitwise_identical(kill_step in 0u64..6) {
        let harness = MicrobenchHarness::new(&DeviceSpec::v100(), 5, 9, 4);
        let specs = gemm_specs(24, 3);
        let expected: Vec<u64> =
            harness.measure(&specs).iter().map(|s| s.time_us.to_bits()).collect();

        let mut sup = Supervisor::new(SupervisorConfig::default());
        let (res, report) = sup.run(&KillAt::new(harness.job(&specs), kill_step, 1));
        let got: Vec<u64> =
            res.unwrap().iter().map(|s| s.time_us.to_bits()).collect();
        prop_assert_eq!(&got[..], expected);
        prop_assert_eq!(report.restarts.len(), 1);
    }
}

/// The cross-supervisor variant: run A dies for good (restart budget zero)
/// leaving a snapshot file; a fresh supervisor — a new process, in effect —
/// picks the file up and finishes with bitwise-identical results.
#[test]
fn dead_run_resumes_across_supervisors_from_snapshot_file() {
    let data = synthetic();
    let expected = reference_trials(&data);

    let dir = std::env::temp_dir().join("dlperf-runtime-itest");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("grid.ckpt.json");
    std::fs::remove_file(&path).ok();

    let cfg = SupervisorConfig { max_restarts: 0, ..SupervisorConfig::default() };
    let mut sup_a = Supervisor::with_store(cfg, Box::new(FileStore::new(&path)));
    let job = KillAt::new(GridSearchJob::new(&data, &small_space(), 15, 11), 3, 1);
    let (res_a, report_a) = sup_a.run(&job);
    match res_a {
        Err(SupervisorError::RestartBudgetExhausted { .. }) => {}
        other => panic!("expected RestartBudgetExhausted, got {other:?}"),
    }
    assert_eq!(report_a.steps_completed, 3);
    assert!(path.exists(), "snapshot must survive the dead run");

    let mut sup_b =
        Supervisor::with_store(SupervisorConfig::default(), Box::new(FileStore::new(&path)));
    let (res_b, report_b) =
        grid_search_supervised(&data, &small_space(), 15, 11, &mut sup_b);
    let got: Vec<u64> = res_b.unwrap().trials.iter().map(|(_, m)| m.to_bits()).collect();
    assert_eq!(got, expected);
    assert_eq!(report_b.resumed_from_step, Some(3));
    assert!(!path.exists(), "snapshot is cleared after success");
}

/// A worker that panics repeatedly within the restart budget never takes
/// the supervisor down, and the result is unchanged.
#[test]
fn repeated_worker_panics_are_contained_and_reported() {
    let data = synthetic();
    let expected = reference_trials(&data);

    let mut sup = Supervisor::new(SupervisorConfig::default());
    let job = PanicAt::new(GridSearchJob::new(&data, &small_space(), 15, 11), 2, 3);
    let (res, report) = sup.run(&job);
    let got: Vec<u64> = res.unwrap().trials.iter().map(|(_, m)| m.to_bits()).collect();
    assert_eq!(got, expected, "three contained panics must not change a bit");
    assert_eq!(report.attempts, 4);
    assert_eq!(report.restarts.len(), 3);
    for r in &report.restarts {
        assert!(r.cause.contains("deliberate worker panic"), "cause: {}", r.cause);
    }
}

/// One panic past the budget fails the run with a typed error naming the
/// panic — it still never aborts the supervisor's thread.
#[test]
fn panics_past_the_budget_fail_typed_not_fatal() {
    let data = synthetic();
    let mut sup = Supervisor::new(SupervisorConfig::default());
    let job = PanicAt::new(GridSearchJob::new(&data, &small_space(), 15, 11), 1, 4);
    let (res, report) = sup.run(&job);
    match res {
        Err(SupervisorError::RestartBudgetExhausted { attempts, last_failure, .. }) => {
            assert_eq!(attempts, 4);
            assert!(last_failure.contains("deliberate worker panic"), "got: {last_failure}");
        }
        other => panic!("expected RestartBudgetExhausted, got {other:?}"),
    }
    assert_eq!(report.steps_completed, 1, "progress up to the panic is kept");
}

/// Chaos from the PR 1 fault plan (worker kills/panics) composes with the
/// supervisor: faults land, restarts happen, results do not move.
#[test]
fn injected_worker_chaos_never_changes_result_bits() {
    let harness = MicrobenchHarness::new(&DeviceSpec::v100(), 5, 9, 4);
    let specs = gemm_specs(24, 3);
    let expected: Vec<u64> =
        harness.measure(&specs).iter().map(|s| s.time_us.to_bits()).collect();

    let mut injected_total = 0;
    for plan_seed in 0..6u64 {
        let cfg = SupervisorConfig { max_restarts: 10, ..SupervisorConfig::default() };
        let mut sup = Supervisor::with_store(cfg, Box::new(dlperf_runtime::MemoryStore::new()));
        sup.set_fault_injector(FaultInjector::new(
            FaultPlan::healthy(plan_seed).with_worker_faults(0.1, 0.1, 0.0),
        ));
        let (res, report) = harness.measure_supervised(&specs, &mut sup);
        let got: Vec<u64> = res.unwrap().iter().map(|s| s.time_us.to_bits()).collect();
        assert_eq!(got, expected, "plan seed {plan_seed} changed the sweep");
        injected_total += report.injected_faults;
    }
    assert!(injected_total > 0, "at least one plan seed must inject a fault");
}
