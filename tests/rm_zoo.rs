//! RM-zoo integration: DCN and Wide & Deep go through the exact same
//! pipeline as DLRM — no new kernel models, comparable accuracy (the
//! paper's claim that the embedding+MLP paradigm generalizes to RM design).

use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::kernels::CalibrationEffort;
use dlrm_perf_model::models::rm_zoo::{dcn, wide_deep, RmConfig};
use dlrm_perf_model::trace::engine::ExecutionEngine;

#[test]
fn pipeline_prices_dcn_and_wide_deep_within_band() {
    let device = DeviceSpec::v100();
    let workloads = vec![dcn(&RmConfig::ctr_default(512)), wide_deep(&RmConfig::ctr_default(512))];
    let pipeline = Pipeline::analyze(&device, &workloads, CalibrationEffort::Quick, 15, 91);
    for g in &workloads {
        let mut engine = ExecutionEngine::new(device.clone(), 92);
        engine.set_profiling(false);
        let measured = engine.measure_e2e(g, 12).unwrap();
        let pred = pipeline.predict_individual(g).unwrap();
        let err = ((pred.e2e_us - measured) / measured).abs();
        assert!(
            err < 0.25,
            "{}: error {:.1}% (pred {} vs measured {measured})",
            g.name,
            err * 100.0,
            pred.e2e_us
        );
    }
}

#[test]
fn rm_zoo_is_low_utilization_like_dlrm() {
    // These CTR models are overhead-dominated at serving-ish batch sizes,
    // just like DLRM — the class the paper's model exists for.
    let device = DeviceSpec::v100();
    for g in [dcn(&RmConfig::ctr_default(256)), wide_deep(&RmConfig::ctr_default(256))] {
        let mut engine = ExecutionEngine::new(device.clone(), 93);
        engine.set_profiling(false);
        let run = engine.run(&g).unwrap();
        assert!(
            run.utilization() < 0.6,
            "{} utilization {:.2} unexpectedly high",
            g.name,
            run.utilization()
        );
    }
}

#[test]
fn batch_sweep_works_on_zoo_models() {
    use dlrm_perf_model::core::codesign::batch_size_sweep;
    let device = DeviceSpec::v100();
    let g = dcn(&RmConfig::ctr_default(256));
    let pipeline =
        Pipeline::analyze(&device, std::slice::from_ref(&g), CalibrationEffort::Quick, 8, 94);
    let sweep = batch_size_sweep(&pipeline, &g, &[128, 1024, 4096]).unwrap();
    assert!(sweep[2].1.utilization() > sweep[0].1.utilization());
}
