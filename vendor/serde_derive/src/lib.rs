//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde stand-in. No `syn`/`quote` (unavailable offline): the item
//! is parsed directly from the `proc_macro::TokenStream` and the impl is
//! generated as a string.
//!
//! Supported shapes — everything this workspace derives on:
//! * structs with named fields (honouring `#[serde(skip)]` via `Default`);
//! * tuple structs (newtypes serialize transparently, wider ones as arrays);
//! * enums with unit, tuple, and struct variants, in serde's
//!   externally-tagged JSON layout (`"Variant"` / `{"Variant": ...}`).
//!
//! Generics are not supported; no type in this workspace needs them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    payload: Payload,
}

#[derive(Debug)]
enum Payload {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skips one attribute (`#[...]`) if present; returns whether it contained
/// `serde(... skip ...)`.
fn take_attr(tokens: &[TokenTree], pos: &mut usize) -> Option<bool> {
    if let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() == '#' {
            if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
                if g.delimiter() == Delimiter::Bracket {
                    *pos += 2;
                    let text = g.stream().to_string();
                    return Some(text.contains("serde") && text.contains("skip"));
                }
            }
        }
    }
    None
}

fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut skip = false;
    while let Some(s) = take_attr(tokens, pos) {
        skip |= s;
    }
    skip
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Advances past a type (or expression) until a top-level `,`, tracking
/// angle-bracket depth so `HashMap<K, V>` commas don't split fields.
fn skip_until_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(t) = tokens.get(*pos) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *pos += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let skip = skip_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => panic!("serde_derive: expected `:` after field `{name}`"),
        }
        skip_until_comma(&tokens, &mut pos);
        pos += 1; // consume the comma (or run off the end)
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_until_comma(&tokens, &mut pos);
        pos += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        pos += 1;
        let payload = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                pos += 1;
                Payload::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                pos += 1;
                Payload::Tuple(n)
            }
            _ => Payload::Unit,
        };
        // Skip an explicit discriminant (`= 0`) and the trailing comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == '=' {
                pos += 1;
                skip_until_comma(&tokens, &mut pos);
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        variants.push(Variant { name, payload });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported (type `{name}`)");
        }
    }
    let shape = match (kind.as_str(), tokens.get(pos)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_tuple_fields(g.stream()))
        }
        ("struct", _) => Shape::TupleStruct(0),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_variants(g.stream()))
        }
        _ => panic!("serde_derive: cannot parse `{kind} {name}`"),
    };
    Item { name, shape }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Obj(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.payload {
                        Payload::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        Payload::Tuple(1) => format!(
                            "{name}::{vn}(__a0) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__a0))]),"
                        ),
                        Payload::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__a{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__a{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Value::Arr(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Payload::Named(fields) => {
                            let binds: Vec<String> = fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| {
                                    format!(
                                        "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Value::Obj(vec![{}]))]),",
                                binds.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse().expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::core::default::Default::default()", f.name)
                    } else {
                        format!("{0}: ::serde::__from_field(__entries, \"{0}\")?", f.name)
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Obj(__entries) => Ok({name} {{ {} }}),\n\
                     __other => Err(::serde::DeError::new(format!(\
                         \"expected object for `{name}`, found {{}}\", __other.kind()))),\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(__items.get({i}).ok_or_else(|| \
                         ::serde::DeError::new(\"tuple struct too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Arr(__items) => Ok({name}({})),\n\
                     __other => Err(::serde::DeError::new(format!(\
                         \"expected array for `{name}`, found {{}}\", __other.kind()))),\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.payload, Payload::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.payload {
                        Payload::Unit => None,
                        Payload::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        Payload::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(__items.get({i}).ok_or_else(|| \
                                         ::serde::DeError::new(\"variant tuple too short\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match __inner {{\n\
                                     ::serde::Value::Arr(__items) => Ok({name}::{vn}({})),\n\
                                     _ => Err(::serde::DeError::new(\"expected array payload for `{vn}`\")),\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                        Payload::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    if f.skip {
                                        format!("{}: ::core::default::Default::default()", f.name)
                                    } else {
                                        format!(
                                            "{0}: ::serde::__from_field(__entries, \"{0}\")?",
                                            f.name
                                        )
                                    }
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match __inner {{\n\
                                     ::serde::Value::Obj(__entries) => Ok({name}::{vn} {{ {} }}),\n\
                                     _ => Err(::serde::DeError::new(\"expected object payload for `{vn}`\")),\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit}\n\
                         __other => Err(::serde::DeError::new(format!(\
                             \"unknown variant `{{__other}}` of `{name}`\"))),\n\
                     }},\n\
                     ::serde::Value::Obj(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {data}\n\
                             __other => Err(::serde::DeError::new(format!(\
                                 \"unknown variant `{{__other}}` of `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err(::serde::DeError::new(format!(\
                         \"expected variant of `{name}`, found {{}}\", __other.kind()))),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    );
    out.parse().expect("serde_derive: generated Deserialize impl parses")
}
