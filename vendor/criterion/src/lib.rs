//! Offline stand-in for `criterion`: a minimal wall-clock benchmark
//! harness with the same surface (`Criterion::bench_function`,
//! `criterion_group!`/`criterion_main!`, `black_box`). No statistical
//! analysis or HTML reports — each benchmark prints its mean time over
//! `sample_size` timed samples.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its mean sample time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        // Warm-up and per-sample iteration calibration: aim for samples of
        // at least ~1 ms so Instant resolution doesn't dominate.
        f(&mut b);
        let mut per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        if per_iter <= 0.0 {
            per_iter = 1e-9;
        }
        let iters = ((1e-3 / per_iter).ceil() as u64).clamp(1, 1_000_000);

        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            total += b.elapsed;
            total_iters += b.iters;
        }
        let mean_ns = total.as_secs_f64() * 1e9 / total_iters.max(1) as f64;
        println!("{id:<40} {mean_ns:>12.1} ns/iter ({total_iters} iters)");
        self
    }
}

/// Passed to the benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[allow(dead_code)]
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        #[allow(dead_code)]
        fn main() {
            $($group();)+
        }
    };
}
