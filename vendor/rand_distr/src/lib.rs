//! Offline stand-in for `rand_distr` with the distributions this
//! workspace uses: [`Normal`], [`LogNormal`] (both via Box–Muller, so the
//! moments are exact, which the workspace's statistical tests rely on)
//! and [`Zipf`] (Hörmann–Derflinger rejection-inversion).

use rand::RngCore;
use std::fmt;

/// Types that can generate samples of `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error {
    what: &'static str,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.what)
    }
}

impl std::error::Error for Error {}

/// Error alias matching upstream's per-distribution error types.
pub type NormalError = Error;
/// Error alias matching upstream's per-distribution error types.
pub type ZipfError = Error;

/// A standard-normal draw via Box–Muller (one of the pair is discarded;
/// distributions here are stateless, and exactness beats speed for this
/// workspace's sample sizes).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1 = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
    let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Mean `mean`, standard deviation `std_dev >= 0`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if std_dev.is_finite() && std_dev >= 0.0 && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(Error { what: "Normal requires finite mean and std_dev >= 0" })
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Location `mu` and scale `sigma >= 0` of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if sigma.is_finite() && sigma >= 0.0 && mu.is_finite() {
            Ok(LogNormal { mu, sigma })
        } else {
            Err(Error { what: "LogNormal requires finite mu and sigma >= 0" })
        }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Zipf distribution on `{1, .., n}` with exponent `s > 0`:
/// `P(k) ∝ k^-s`. Samples are returned as `f64` like upstream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: f64,
    s: f64,
    /// Precomputed rejection-inversion constants.
    h_x1: f64,
    h_n: f64,
    threshold: f64,
}

impl Zipf {
    /// `n >= 1` elements, exponent `s > 0`.
    pub fn new(n: u64, s: f64) -> Result<Self, Error> {
        if n < 1 || !(s > 0.0) || !s.is_finite() {
            return Err(Error { what: "Zipf requires n >= 1 and finite s > 0" });
        }
        let nf = n as f64;
        let h_x1 = harmonic_int(1.5, s) - 1.0;
        let h_n = harmonic_int(nf + 0.5, s);
        let threshold = 2.0 - harmonic_inv(harmonic_int(2.5, s) - 2f64.powf(-s), s);
        Ok(Zipf { n: nf, s, h_x1, h_n, threshold })
    }
}

/// Antiderivative of `x^-s` (shifted so it is finite at `s == 1`).
fn harmonic_int(x: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-12 {
        x.ln()
    } else {
        (x.powf(1.0 - s) - 1.0) / (1.0 - s)
    }
}

fn harmonic_inv(v: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-12 {
        v.exp()
    } else {
        (1.0 + v * (1.0 - s)).powf(1.0 / (1.0 - s))
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.n < 1.5 {
            return 1.0;
        }
        loop {
            let u = self.h_n + rand::Rng::gen_range(rng, 0.0..1.0) * (self.h_x1 - self.h_n);
            let x = harmonic_inv(u, self.s);
            let k = (x + 0.5).floor().clamp(1.0, self.n);
            if k - x <= self.threshold
                || u >= harmonic_int(k + 0.5, self.s) - k.powf(-self.s)
            {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_mean_is_exact() {
        // E[LogNormal(mu, sigma)] = exp(mu + sigma^2 / 2).
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let expect = (1.0f64 + 0.125).exp();
        assert!((mean - expect).abs() / expect < 0.01, "mean {mean} vs {expect}");
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() / 4.0 < 0.02, "var {var}");
    }

    #[test]
    fn zipf_in_range_and_skewed() {
        let d = Zipf::new(1000, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut ones = 0usize;
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&x), "out of range: {x}");
            assert_eq!(x.fract(), 0.0);
            if x == 1.0 {
                ones += 1;
            }
        }
        // With s = 1.2, P(1) ≈ 1/ζ(1.2, truncated) ≳ 0.2 — far above uniform.
        assert!(ones > 1000, "rank 1 drawn only {ones}/10000 times");
    }

    #[test]
    fn zipf_handles_exponent_one() {
        let d = Zipf::new(100, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=100.0).contains(&x));
        }
    }
}
