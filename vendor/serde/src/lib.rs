//! Offline stand-in for the `serde` crate.
//!
//! This vendored crate exists because the build environment has no network
//! access to crates.io. It implements the subset of serde's API this
//! workspace uses — `Serialize`/`Deserialize` traits, the derive macros,
//! and a JSON-oriented value model — with the same externally-tagged data
//! layout real serde produces for JSON, so serialized artifacts look the
//! same (`{"field": ...}` objects, unit enum variants as strings,
//! data-carrying variants as single-key objects).
//!
//! The design deviates from real serde in one deliberate way: instead of
//! the `Serializer`/`Deserializer` visitor machinery, both traits go
//! through an owned [`value::Value`] tree. That is dramatically simpler,
//! and every consumer in this workspace ultimately serializes to JSON
//! through `serde_json`, for which a value tree is sufficient.

pub mod value;

/// Compatibility shim for `serde::de` paths: the value-model
/// `Deserialize` is already owned, so `DeserializeOwned` is the same
/// trait.
pub mod de {
    pub use crate::Deserialize as DeserializeOwned;
}

pub use serde_derive::{Deserialize, Serialize};
pub use value::{DeError, Value};

/// Serialize into the JSON-oriented [`Value`] model.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialize from the JSON-oriented [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    _ => Err(DeError::new(format!(
                        "expected number, found {}", v.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new(format!("expected bool, found {}", v.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new(format!("expected string, found {}", v.kind()))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::new(format!("expected array, found {}", v.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for &[T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items.try_into().map_err(|_| {
            DeError::new(format!("expected array of length {N}, found {len}"))
        })
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

/// Map keys must serialize to strings (JSON's only key type). Unit enum
/// variants and strings qualify; anything else is rendered via its value
/// form (numbers become their decimal text, matching serde_json).
fn key_string<K: Serialize>(k: &K) -> String {
    match k.to_value() {
        Value::Str(s) => s,
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                format!("{}", n as i64)
            } else {
                format!("{n}")
            }
        }
        other => panic!("map key must serialize to a string, got {}", other.kind()),
    }
}

fn key_from_str<K: Deserialize>(s: &str) -> Result<K, DeError> {
    // Try string first (covers String and unit-variant enums), then number.
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<f64>() {
        return K::from_value(&Value::Num(n));
    }
    Err(DeError::new(format!("cannot parse map key `{s}`")))
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (key_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, val)| Ok((key_from_str(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(DeError::new(format!("expected object, found {}", v.kind()))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (key_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, val)| Ok((key_from_str(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(DeError::new(format!("expected object, found {}", v.kind()))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            {
                                let slot = it.next().ok_or_else(|| {
                                    DeError::new("tuple too short")
                                })?;
                                $name::from_value(slot)?
                            },
                        )+))
                    }
                    _ => Err(DeError::new(format!("expected array, found {}", v.kind()))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Support used by the derive macro
// ---------------------------------------------------------------------------

/// Implementation detail of `#[derive(Deserialize)]`: looks a field up in an
/// object and deserializes it, treating a missing field as `Null` (so
/// `Option` fields default to `None`, as serde does with
/// `#[serde(default)]`-free optionals absent from JSON only when `Option`).
#[doc(hidden)]
pub fn __from_field<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::new(format!("field `{name}`: {e}")))
        }
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError::new(format!("missing field `{name}`"))),
    }
}
