//! The JSON value model, its renderer, and its parser.
//!
//! Lives in `serde` (rather than `serde_json`) so the `Serialize` /
//! `Deserialize` traits can be defined against it without a circular
//! dependency; `serde_json` re-exports it.

use std::fmt;

/// A JSON value. Object entries keep insertion order, so struct fields
/// serialize in declaration order like real serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric content as an integer, if whole.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean content, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field access; `Null` when absent or not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders compact JSON.
    pub fn render(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => render_num(*n, out),
            Value::Str(s) => render_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render(out);
                }
                out.push(']');
            }
            Value::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders pretty-printed JSON with two-space indentation.
    pub fn render_pretty(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| {
            for _ in 0..n {
                out.push_str("  ");
            }
        };
        match self {
            Value::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, indent + 1);
                    v.render_pretty(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Value::Obj(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, indent + 1);
                    render_str(k, out);
                    out.push_str(": ");
                    v.render_pretty(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
            other => other.render(out),
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_value_num_eq {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other.as_f64() == Some(*self as f64)
            }
        }
    )*};
}

impl_value_num_eq!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Object field access like `v["key"]`; `Null` when absent (matching
    /// serde_json's forgiving indexing).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Auto-vivifying mutable access: `Null` becomes an object, missing
    /// keys are inserted as `Null` — so `v["a"]["b"] = x` works on a fresh
    /// value, as with serde_json.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if matches!(self, Value::Null) {
            *self = Value::Obj(Vec::new());
        }
        match self {
            Value::Obj(entries) => {
                if let Some(i) = entries.iter().position(|(k, _)| k == key) {
                    &mut entries[i].1
                } else {
                    entries.push((key.to_string(), Value::Null));
                    &mut entries.last_mut().expect("just pushed").1
                }
            }
            other => panic!("cannot index {} with a string key", other.kind()),
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Arr(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

fn render_num(n: f64, out: &mut String) {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 9.0e15 {
            out.push_str(&format!("{}", n as i64));
        } else {
            // Shortest round-trippable representation, like serde_json.
            out.push_str(&format!("{n}"));
        }
    } else {
        // JSON has no Inf/NaN; serde_json errors, we emit null.
        out.push_str("null");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent JSON parser.
pub fn parse(input: &str) -> Result<Value, DeError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(DeError::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn lit(&mut self, text: &str, v: Value) -> Result<Value, DeError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(DeError::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| DeError::new(format!("invalid number at byte {start}")))
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(DeError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| DeError::new("bad \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| DeError::new("bad \\u escape"))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(DeError::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or escape
                    // in one slice: validating per-chunk instead of
                    // re-validating the full remaining input per character
                    // keeps large embedded strings (checkpoint payloads)
                    // linear. Multi-byte UTF-8 units are all >= 0x80, so
                    // scanning for the two ASCII delimiters is safe.
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| DeError::new("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(DeError::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(DeError::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}
