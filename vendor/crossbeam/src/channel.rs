//! Unbounded MPMC channel over `Mutex<VecDeque>` + `Condvar`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    queue: Mutex<State<T>>,
    ready: Condvar,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Sending half; cloneable for fan-in.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; cloneable for fan-out (each item goes to one receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// The channel is closed: every receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a closed channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// The channel is empty and every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, closed channel")
    }
}

impl std::error::Error for RecvError {}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
        ready: Condvar::new(),
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Enqueues an item; fails only if all receivers have been dropped.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.queue.lock().expect("channel lock poisoned");
        if state.receivers == 0 {
            return Err(SendError(item));
        }
        state.items.push_back(item);
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().expect("channel lock poisoned").senders += 1;
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("channel lock poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake blocked receivers so they observe disconnection.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks for the next item; `Err` once the channel is empty and all
    /// senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.queue.lock().expect("channel lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.ready.wait(state).expect("channel lock poisoned");
        }
    }

    /// Non-blocking receive of whatever is currently queued.
    pub fn try_recv(&self) -> Result<T, RecvError> {
        self.shared
            .queue
            .lock()
            .expect("channel lock poisoned")
            .items
            .pop_front()
            .ok_or(RecvError)
    }

    /// Blocking iterator that ends when the channel closes.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().expect("channel lock poisoned").receivers += 1;
        Receiver { shared: self.shared.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.queue.lock().expect("channel lock poisoned").receivers -= 1;
    }
}

/// Blocking iterator over received items.
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}
