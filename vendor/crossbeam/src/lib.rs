//! Offline stand-in for the `crossbeam` facade crate, built on std:
//! `channel::unbounded` MPMC channels (Mutex + Condvar) and [`scope`]
//! (std scoped threads plus `catch_unwind`, so worker panics surface as
//! an `Err` like crossbeam's).

pub mod channel;

use std::panic::{catch_unwind, AssertUnwindSafe};

/// A scope handle passed to [`scope`]'s closure; `spawn` launches workers
/// that must finish before `scope` returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped worker. The closure receives a scope handle (by
    /// value here, `()`-like in spirit: crossbeam passes `&Scope` for
    /// nested spawns, which this workspace never uses — the argument
    /// exists so `|_| { .. }` closures keep working).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned;
/// returns `Err` with the panic payload if any worker (or `f`) panicked.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_workers_drain_a_channel() {
        let (tx, rx) = channel::unbounded::<u32>();
        let (out_tx, out_rx) = channel::unbounded::<u32>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let out_tx = out_tx.clone();
                s.spawn(move |_| {
                    while let Ok(x) = rx.recv() {
                        out_tx.send(x * 2).unwrap();
                    }
                });
            }
            drop(out_tx);
        })
        .unwrap();
        let mut got: Vec<u32> = out_rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_is_an_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
