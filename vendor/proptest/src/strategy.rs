//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// Generates random values of `Self::Value`. Unlike the real proptest
/// there is no value tree / shrinking: a strategy is just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Filters generated values; panics if `pred` keeps rejecting.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, whence, pred }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 consecutive samples", self.whence)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
