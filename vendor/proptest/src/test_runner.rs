//! Test-runner support: configuration, the case RNG, and failure type.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG driving case generation — deterministic (fixed seed) so runs
/// are reproducible; there is no shrinking to rediscover failures.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The fixed-seed generator used by `proptest!`.
    pub fn deterministic() -> Self {
        TestRng { inner: StdRng::seed_from_u64(0x70726f70_74657374) }
    }

    /// A generator with an explicit seed (for reproducing a variant run).
    pub fn with_seed(seed: u64) -> Self {
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A failed property case (from `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TestCaseError {}
