//! Offline stand-in for `proptest`.
//!
//! Implements the property-testing subset this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`/`boxed`,
//! ranges and tuples as strategies, `Just`, `prop_oneof!`,
//! `collection::vec`, and the [`proptest!`]/[`prop_assert!`] macros.
//!
//! Two deliberate simplifications versus the real crate: cases are drawn
//! from a fixed-seed deterministic RNG (fully reproducible runs), and
//! failing inputs are *not* shrunk — the panic reports the case number
//! and assertion message only.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with $config; $($rest)*);
    };
    (@with $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case_idx in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                    let __result = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = __result {
                        panic!(
                            "proptest case {}/{} failed: {}",
                            __case_idx + 1,
                            __config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// A strategy choosing uniformly among the given same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts within a property body; failure rejects the case with a
/// message instead of panicking directly (the runner panics with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(v in (1usize..5, 1usize..5).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..=16).contains(&v));
        }

        #[test]
        fn oneof_picks_each_arm(x in prop_oneof![Just(1u32), Just(2u32), Just(3u32)]) {
            prop_assert!(x >= 1 && x <= 3);
        }

        #[test]
        fn flat_map_chains(pair in (2usize..6).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, i) = pair;
            prop_assert!(i < n);
        }

        #[test]
        fn collection_vec_has_requested_len(v in crate::collection::vec(0u8..=255, 7)) {
            prop_assert_eq!(v.len(), 7);
        }
    }
}
