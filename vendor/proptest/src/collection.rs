//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Length specification for [`vec`]: a fixed size or a range of sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements are drawn
/// from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { elem, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.hi - self.size.lo <= 1 {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.elem.new_value(rng)).collect()
    }
}
