//! Offline stand-in for `serde_json`, layered on the vendored `serde`
//! value model: `to_string`/`to_string_pretty` render [`Value`] trees,
//! `from_str` parses JSON and reconstructs types via
//! [`serde::Deserialize`], and [`json!`] builds `Value` literals with the
//! same syntax as the real macro (string keys, expression values, nested
//! objects/arrays, trailing commas).

pub use serde::value::parse;
pub use serde::{DeError, Value};

/// Serialization/deserialization error (shared with the serde stand-in).
pub type Error = DeError;

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().render(&mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().render_pretty(&mut out, 0);
    Ok(out)
}

/// Parses JSON text and deserializes it into `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from a JSON literal with interpolated expressions.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Implementation detail of [`json!`]: a tt-muncher in the style of the
/// real serde_json macro, trimmed to the shapes this workspace uses
/// (string-literal keys, arbitrary expression values, nesting).
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // ----- array elements: @array [built elems] remaining-tts -----
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null),] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true),] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false),] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*]),] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*}),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last),])
    };
    (@array [$($elems:expr,)*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ----- object entries: @object $map (key tts) (remaining) (copy) -----
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((($($key)+).to_string(), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((($($key)+).to_string(), $value));
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($arr:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($arr)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ----- primary forms -----
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Arr(vec![]) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Arr($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Obj(vec![]) };
    ({ $($tt:tt)+ }) => {{
        let mut object: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
        $crate::Value::Obj(object)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_objects() {
        let n = 7u64;
        let v = json!({
            "name": "x", "ph": "M", "pid": 0,
            "args": {"flow": n, "list": [1, 2, 3]},
        });
        assert_eq!(v["name"].as_str(), Some("x"));
        assert_eq!(v["args"]["flow"].as_u64(), Some(7));
        assert_eq!(v["args"]["list"].as_array().map(Vec::len), Some(3));
    }

    #[test]
    fn round_trip() {
        let v = json!({"a": [1.5, true, null], "b": {"c": "d\ne"}});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn index_mut_auto_vivifies() {
        let mut v = json!({"args": {}});
        v["args"]["flow"] = json!(42u32);
        assert_eq!(v["args"]["flow"].as_u64(), Some(42));
    }
}
