//! Sequence-related sampling.

use crate::{uniform_u64, Rng};

/// Random operations on slices.
pub trait SliceRandom {
    type Item;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_u64(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input in order");
    }
}
