//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses: the [`RngCore`]/[`Rng`] and
//! [`SeedableRng`] traits, `rngs::StdRng`, uniform `gen_range` over
//! integer and float ranges, and `seq::SliceRandom::shuffle`.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — *not* bit-compatible
//! with upstream's ChaCha12 `StdRng`, but the workspace only relies on
//! determinism-given-seed and sound statistical quality, both of which
//! xoshiro256++ provides.

pub mod rngs;
pub mod seq;

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }

    /// A uniformly random value of a primitive type (`f64` in `[0, 1)`,
    /// integers over their full domain).
    fn r#gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform integer in `[0, span)` via Lemire's widening-multiply
/// rejection method.
pub(crate) fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low >= span {
            return (m >> 64) as u64;
        }
        // Rejection zone: accept unless `low` falls below the bias threshold.
        let threshold = span.wrapping_neg() % span;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full u64 domain
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64 —
    /// distinct small seeds give decorrelated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: i32 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&y));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| unit_f64(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
